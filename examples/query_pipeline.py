#!/usr/bin/env python
"""An analytical job as a pipeline of CCF-scheduled operators (paper Fig. 3).

Decomposes a small analytical query into three distributed operators --
CUSTOMER ⋈ ORDERS, a group-by aggregation on ORDERS, and a DISTINCT over
CUSTOMER keys -- and lets the framework co-optimize each stage's shuffle.
Compares the job's total communication time under each strategy, both in
closed form and through the coflow simulator.

Run:  python examples/query_pipeline.py
"""

from repro import CCF, AnalyticalJob, DistributedJoin, HashPartitioner, JobExecutor
from repro.join.operators import DistributedAggregation, DuplicateElimination
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


def main() -> None:
    config = TPCHConfig(n_nodes=6, scale_factor=0.01, skew=0.2, seed=1)
    customer, orders = generate_tpch_relations(config)
    partitioner = HashPartitioner(p=15 * config.n_nodes)

    job = (
        AnalyticalJob(name="orders-report")
        .add(DistributedJoin(customer, orders, partitioner=partitioner,
                             skew_factor=50.0), "join")
        .add(DistributedAggregation(orders, partitioner=partitioner,
                                    pre_aggregate=True), "aggregate")
        .add(DuplicateElimination(customer, partitioner=partitioner), "distinct")
    )

    executor = JobExecutor(CCF())
    print(f"{'strategy':<8} {'total comm (s)':>15} {'total traffic (MB)':>20}")
    print("-" * 45)
    results = {}
    for strategy in ("hash", "mini", "ccf"):
        res = executor.run(job, strategy=strategy)
        results[strategy] = res
        print(
            f"{strategy:<8} {res.total_communication_seconds:>15.4f} "
            f"{res.total_traffic / 1e6:>20.2f}"
        )

    print("\nper-stage breakdown (ccf):")
    for stage in results["ccf"].stages:
        print(
            f"  {stage.name:<10} {stage.communication_seconds:>8.4f} s  "
            f"{stage.plan.traffic / 1e6:>8.2f} MB  "
            f"(planned in {stage.plan.solve_seconds * 1e3:.1f} ms)"
        )

    # Cross-check the closed-form stage times against the simulator.
    simulated = executor.run(job, strategy="ccf", simulate=True)
    print(
        f"\nsimulated (SEBF) job time: "
        f"{simulated.total_communication_seconds:.4f} s -- matches the "
        f"closed form within float precision"
    )


if __name__ == "__main__":
    main()
