#!/usr/bin/env python
"""Graph analytics on CCF: distributed triangle counting.

A random graph's edge list is sharded over machines; triangles are
counted with the classical two-join pipeline (build wedges on the middle
vertex, close them against the edge set), each join co-optimized by CCF.
The count is verified against networkx.

Run:  python examples/graph_triangles.py
"""

import networkx as nx

from repro.workloads.graph import (
    GraphConfig,
    count_triangles_distributed,
    generate_edge_relation,
    generate_edges,
)


def main() -> None:
    config = GraphConfig(
        n_nodes=6, n_vertices=120, edge_probability=0.08, zipf_s=0.8, seed=11
    )
    edges = generate_edges(config)
    relation = generate_edge_relation(config)
    print(
        f"graph: {config.n_vertices} vertices, {edges.shape[0]} edges, "
        f"sharded over {config.n_nodes} machines"
    )

    g = nx.Graph()
    g.add_edges_from(map(tuple, edges.tolist()))
    expected = sum(nx.triangles(g).values()) // 3
    print(f"networkx ground truth: {expected} triangles\n")

    print(f"{'strategy':<8} {'triangles':>10} {'wedges':>8} "
          f"{'comm (ms)':>10} {'traffic (KB)':>13}")
    print("-" * 54)
    for strategy in ("hash", "mini", "ccf"):
        result = count_triangles_distributed(relation, strategy=strategy)
        assert result.triangles == expected, "distributed count diverged!"
        print(
            f"{strategy:<8} {result.triangles:>10} {result.wedges:>8} "
            f"{result.total_communication_seconds * 1e3:>10.3f} "
            f"{sum(result.stage_traffic) / 1e3:>13.1f}"
        )

    print("\nevery strategy produces the exact count; CCF just moves the")
    print("wedge and closing shuffles through the fabric fastest.")


if __name__ == "__main__":
    main()
