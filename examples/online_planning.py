#!/usr/bin/env python
"""Online co-optimization: plan new operators around in-flight shuffles.

A burst of small operators arrives faster than their shuffles drain.  An
oblivious planner places every job on the same (in-isolation optimal)
receive ports, so the jobs pile up; OnlineCCF tracks the residual bytes
of earlier shuffles and steers each newcomer to idle ports.  Both plans
are executed through the coflow simulator under SEBF.

Run:  python examples/online_planning.py
"""

import numpy as np

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.online import OnlineCCF
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def make_jobs(n_nodes: int, n_jobs: int, seed: int = 0) -> list[ShuffleModel]:
    """Small symmetric shuffles: every destination looks equally good."""
    rng = np.random.default_rng(seed)
    jobs = []
    for _ in range(n_jobs):
        size = float(rng.integers(8, 12)) * 1e6
        jobs.append(ShuffleModel(h=np.full((n_nodes, n_nodes // 4), size)))
    return jobs


def main() -> None:
    n_nodes, n_jobs, gap = 16, 6, 0.5
    jobs = make_jobs(n_nodes, n_jobs)
    fabric = Fabric(n_ports=n_nodes)

    def execute(planner: str) -> None:
        online = OnlineCCF(n_nodes=n_nodes)
        coflows = []
        for j, model in enumerate(jobs):
            t = j * gap
            if planner == "online":
                plan = online.submit(model, time=t)
            else:
                plan = CCF().plan(model, "ccf")
            recv_ports = sorted(set(plan.dest.tolist()))
            print(f"  job {j} @ t={t:.1f}s -> receive ports {recv_ports}")
            coflows.append(plan.to_coflow(arrival_time=t))
        res = CoflowSimulator(fabric, make_scheduler("sebf")).run(coflows)
        print(
            f"  avg CCT {res.average_cct:.2f}s, "
            f"max {res.max_cct:.2f}s, makespan {res.makespan:.2f}s\n"
        )

    print("oblivious planner (each job planned as if the fabric were idle):")
    execute("oblivious")
    print("online planner (sees residual loads of in-flight shuffles):")
    execute("online")


if __name__ == "__main__":
    main()
