#!/usr/bin/env python
"""Deadline-aware coflow scheduling on a Facebook-style trace.

Generates a synthetic coflow mix (the workload class Varys and Aalo were
evaluated on), tags a third of the coflows with deadlines, and compares
the disciplines on completion time, slowdown, fairness and deadline hit
rate -- including Varys' deadline mode with admission control.

Run:  python examples/deadline_coflows.py
"""

from repro.network.analysis import analyze
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix


def main() -> None:
    config = CoflowMixConfig(
        n_ports=32,
        n_coflows=80,
        arrival_rate=2.0,
        deadline_fraction=0.33,
        seed=7,
    )
    coflows = generate_coflow_mix(config)
    tagged = sum(1 for c in coflows if c.deadline is not None)
    print(
        f"{len(coflows)} coflows over {config.n_ports} ports, "
        f"{tagged} with deadlines\n"
    )

    fabric = Fabric(n_ports=config.n_ports)
    print(f"{'discipline':<10} | report")
    print("-" * 80)
    for name in ("fair", "fifo", "sebf", "dclas", "deadline"):
        sim = CoflowSimulator(fabric, make_scheduler(name))
        result = sim.run(coflows)
        report = analyze(result, coflows, fabric)
        print(f"{name:<10} | {report.summary()}")

    print("\nthe 'deadline' discipline trades average CCT for guarantees:")
    print("admitted coflows always finish on time, at just-in-time rates,")
    print("while best-effort traffic takes the leftover bandwidth.")


if __name__ == "__main__":
    main()
