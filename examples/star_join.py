#!/usr/bin/env python
"""A chained multi-key join: CUSTOMER ⋈ ORDERS ⋈ LINEITEM.

The paper evaluates one join on one key; real queries chain joins on
*different* keys.  This example runs the classic TPC-H spine -- customer
joined to orders on ``custkey``, the result joined to lineitem on
``orderkey`` -- with each stage co-optimized by CCF, and verifies the final
cardinality against a centralized computation.

Run:  python examples/star_join.py
"""

import numpy as np

from repro.core.framework import CCF
from repro.join.multikey import KeyedEquiJoin
from repro.workloads.tpch import TPCHConfig, generate_tpch_keyed


def main() -> None:
    schema = generate_tpch_keyed(
        TPCHConfig(n_nodes=6, scale_factor=0.004, skew=0.2, seed=12)
    )
    for name, rel in schema.items():
        print(f"{name:<9} {rel.total_tuples:>6} rows, "
              f"columns {rel.column_names}")

    framework = CCF(skew_handling=False)
    print(f"\n{'strategy':<8} {'stage1 (s)':>11} {'stage2 (s)':>11} "
          f"{'total traffic (MB)':>19} {'rows':>8}")
    print("-" * 62)
    for strategy in ("hash", "mini", "ccf"):
        stage1 = KeyedEquiJoin(
            schema["customer"], schema["orders"], on="custkey"
        )
        plan1 = framework.plan(stage1, strategy)
        mid = stage1.execute(plan1)

        stage2 = KeyedEquiJoin(
            mid.result, schema["lineitem"], on="orderkey"
        )
        plan2 = framework.plan(stage2, strategy)
        final = stage2.execute(plan2)

        traffic = (mid.realized_traffic + final.realized_traffic) / 1e6
        print(
            f"{strategy:<8} {plan1.cct:>11.4f} {plan2.cct:>11.4f} "
            f"{traffic:>19.2f} {final.cardinality:>8}"
        )

    # Centralized cross-check.
    cust = set(np.concatenate(schema["customer"].columns["custkey"]).tolist())
    ord_ck = np.concatenate(schema["orders"].columns["custkey"])
    ord_ok = np.concatenate(schema["orders"].columns["orderkey"])
    li_ok = np.concatenate(schema["lineitem"].columns["orderkey"])
    keys, counts = np.unique(li_ok, return_counts=True)
    li = dict(zip(keys.tolist(), counts.tolist()))
    expected = sum(
        li.get(ok, 0) for ck, ok in zip(ord_ck.tolist(), ord_ok.tolist())
        if ck in cust
    )
    print(f"\ncentralized ground truth: {expected} rows "
          "(every strategy above must match)")


if __name__ == "__main__":
    main()
