#!/usr/bin/env python
"""A DAG-shaped job on the coflow simulator, with a Gantt chart.

Two independent shuffles (a join and an aggregation) run concurrently,
and a final distinct stage starts only when both finish -- the
diamond-ish shape real engines produce.  Stage coflows are injected into
the running simulation the moment their parents complete, so concurrent
stages genuinely contend for the fabric under SEBF.

Run:  python examples/dag_pipeline.py
"""

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.join.operators import (
    DistributedAggregation,
    DistributedJoin,
    DuplicateElimination,
)
from repro.join.partitioner import HashPartitioner
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


def main() -> None:
    config = TPCHConfig(n_nodes=6, scale_factor=0.01, skew=0.2, seed=4)
    customer, orders = generate_tpch_relations(config)
    part = HashPartitioner(p=15 * config.n_nodes)

    dag = (
        JobDAG("report")
        .add("join", DistributedJoin(customer, orders, partitioner=part,
                                     skew_factor=50.0))
        .add("aggregate", DistributedAggregation(orders, partitioner=part,
                                                 pre_aggregate=True))
        .add("distinct", DuplicateElimination(customer, partitioner=part),
             parents=("join", "aggregate"))
    )

    for strategy in ("hash", "ccf"):
        result = DAGExecutor(scheduler="sebf").run(dag, strategy=strategy)
        print(f"strategy={strategy}: makespan {result.makespan:.4f}s")
        for name, stage in sorted(
            result.stages.items(), key=lambda kv: kv[1].start_time
        ):
            print(
                f"  {name:<10} start {stage.start_time:.4f}s  "
                f"end {stage.completion_time:.4f}s  "
                f"({stage.plan.traffic / 1e6:.2f} MB)"
            )
        print()

    # Visual: re-run the CCF version through the simulator with a timeline.
    from repro.core.framework import CCF
    from repro.network.fabric import Fabric
    from repro.network.schedulers import make_scheduler
    from repro.network.simulator import CoflowSimulator
    from repro.network.visualize import gantt

    ccf = CCF()
    plans = {
        "join": ccf.plan(dag.stage("join").workload, "ccf"),
        "aggregate": ccf.plan(dag.stage("aggregate").workload, "ccf"),
        "distinct": ccf.plan(dag.stage("distinct").workload, "ccf"),
    }
    result = DAGExecutor().run(dag, strategy="ccf")
    coflows = []
    names = {}
    for i, (name, stage) in enumerate(result.stages.items()):
        cf = plans[name].to_coflow(arrival_time=stage.start_time)
        from repro.network.flow import Coflow

        coflows.append(
            Coflow(flows=list(cf.flows), arrival_time=stage.start_time,
                   coflow_id=i, name=name)
        )
        names[i] = name
    sim = CoflowSimulator(
        Fabric(n_ports=config.n_nodes, rate=plans["join"].model.rate),
        make_scheduler("sebf"),
    )
    res = sim.run(coflows)
    print(gantt(res, names=names, width=50))


if __name__ == "__main__":
    main()
