#!/usr/bin/env python
"""A full analytical query, compiled and co-optimized stage by stage.

Builds ``SELECT custkey, count(*) FROM customer JOIN orders GROUP BY
custkey`` as a logical plan, lets the optimizer order the join inputs by
estimated cardinality, lowers each network-crossing operator to a CCF
stage, and executes everything at the tuple level -- then compares the
query's total communication time across strategies.

This exercises the paper's future-work direction: "extending our
framework model to more complex workloads (e.g., analytical queries)".

Run:  python examples/analytical_query.py
"""

from repro.analytics.compile import QueryExecutor, estimate, optimize_joins
from repro.analytics.queries import (
    active_customer_orders,
    build_tpch_catalog,
    orders_per_customer,
)
from repro.workloads.tpch import TPCHConfig


def main() -> None:
    catalog = build_tpch_catalog(
        TPCHConfig(n_nodes=6, scale_factor=0.005, skew=0.2, seed=3)
    )
    for table in catalog.tables():
        s = catalog.stats(table)
        print(f"{table:<9} rows={s.rows:<6} distinct={s.distinct_keys:<6} "
              f"bytes={s.bytes / 1e6:.1f} MB")

    plan = orders_per_customer()
    print("\nlogical plan:")
    print(plan.describe())
    opt = optimize_joins(plan, catalog)
    print("\nafter join ordering (smaller input first):")
    print(opt.describe())
    print(f"\nestimated result rows: {estimate(plan, catalog).rows}")

    executor = QueryExecutor(catalog, skew_factor=50.0)
    print(f"\n{'strategy':<8} {'comm (s)':>10} {'traffic (MB)':>13} {'rows':>8}")
    print("-" * 43)
    for strategy in ("hash", "mini", "ccf"):
        result = executor.execute(plan, strategy=strategy)
        print(
            f"{strategy:<8} {result.total_communication_seconds:>10.4f} "
            f"{result.total_traffic / 1e6:>13.2f} {result.rows:>8}"
        )

    # A second query with a pushed-down filter: only the join ships bytes.
    result = executor.execute(active_customer_orders(key_modulus=4))
    print(
        f"\nfiltered join: stages={[s.name for s in result.stages]}, "
        f"rows={result.rows} (filter ran node-locally, zero network cost)"
    )


if __name__ == "__main__":
    main()
