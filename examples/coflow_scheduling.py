#!/usr/bin/env python
"""The network side: coflow scheduling disciplines head to head.

Runs the same stream of shuffle coflows (CCF plans of four join jobs,
arriving online) through the event-driven simulator under every
discipline -- per-flow fair sharing, FIFO, SCF, NCF, Varys' SEBF, Aalo's
D-CLAS and the uncoordinated sequential worst case -- and reports average
and worst CCT.

Run:  python examples/coflow_scheduling.py
"""

from repro import CCF, AnalyticJoinWorkload, CoflowSimulator, Fabric
from repro.network.schedulers import make_scheduler


def main() -> None:
    n_nodes = 16
    workload = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=0.4, partitions=4 * n_nodes
    )
    plan = CCF().plan(workload, "ccf")
    fabric = Fabric(n_ports=n_nodes, rate=plan.model.rate)

    # Four identical join shuffles arriving 1.5 s apart (online coflows).
    coflows = [plan.to_coflow(arrival_time=1.5 * j) for j in range(4)]
    isolated = coflows[0].bottleneck(n_nodes, plan.model.rate)
    print(f"each coflow: {coflows[0].width} flows, "
          f"{coflows[0].total_volume / 1e9:.2f} GB, "
          f"{isolated:.2f} s alone on the fabric\n")

    print(f"{'discipline':<12} {'avg CCT (s)':>12} {'max CCT (s)':>12}")
    print("-" * 38)
    for name in ("fair", "fifo", "scf", "ncf", "sebf", "dclas", "sequential"):
        sim = CoflowSimulator(fabric, make_scheduler(name))
        res = sim.run(coflows)
        print(f"{name:<12} {res.average_cct:>12.2f} {res.max_cct:>12.2f}")

    print("\ncoflow-aware disciplines (sebf, scf, fifo) finish each job sooner")
    print("than TCP-like per-flow fairness; Aalo's dclas gets close without")
    print("knowing flow sizes; the sequential strawman shows why coordination")
    print("matters at all (paper Fig. 2(a)).")


if __name__ == "__main__":
    main()
