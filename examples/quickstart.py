#!/usr/bin/env python
"""Quickstart: co-optimize one distributed join with CCF.

Builds the paper's TPC-H-derived join workload at laptop scale, plans it
with the three strategies of the evaluation (Hash, Mini, CCF) and prints
the trade-off the paper is about: Mini moves the fewest bytes but CCF
finishes the communication fastest.

Run:  python examples/quickstart.py
"""

from repro import CCF, AnalyticJoinWorkload


def main() -> None:
    # 50 nodes, ~5 GB of input (SF 3), zipf-placed chunks, 20% skew --
    # a laptop-sized slice of the paper's SF-600 setup.
    workload = AnalyticJoinWorkload(n_nodes=50, scale_factor=3.0,
                                    zipf_s=0.8, skew=0.2)
    print(f"workload: {workload.total_bytes / 1e9:.1f} GB over "
          f"{workload.n_nodes} nodes, {workload.partitions} partitions\n")

    framework = CCF()  # skew handling on, Algorithm 1 with defaults
    comparison = framework.compare(workload)  # hash, mini, ccf

    header = f"{'strategy':<8} {'traffic':>10} {'comm. time':>12} {'plan time':>10}"
    print(header)
    print("-" * len(header))
    for strategy in comparison.strategies:
        plan = comparison[strategy]
        print(
            f"{strategy:<8} {plan.traffic / 1e9:>8.2f} GB "
            f"{plan.cct:>10.2f} s {plan.solve_seconds * 1e3:>8.1f} ms"
        )

    print()
    print(f"CCF speedup over Mini: {comparison.speedup('mini', 'ccf'):.1f}x")
    print(f"CCF speedup over Hash: {comparison.speedup('hash', 'ccf'):.1f}x")

    # The winning plan is an ordinary partition->node assignment; hand its
    # coflow to any coflow-enabled data plane.
    coflow = comparison["ccf"].to_coflow()
    print(f"\nCCF plan emits a coflow of {coflow.width} flows, "
          f"{coflow.total_volume / 1e9:.2f} GB total")


if __name__ == "__main__":
    main()
