#!/usr/bin/env python
"""Skew handling in action: partial duplication vs hash hotspots.

Reproduces the Figure 7 story at laptop scale: as more ORDERS tuples pile
onto one hot CUSTKEY, the hash-based join melts down (every skewed tuple
is shipped to the same node) while Mini and CCF keep skewed tuples local
and broadcast the handful of matching CUSTOMER rows instead.

Run:  python examples/skewed_analytics.py
"""

from repro import CCF, AnalyticJoinWorkload


def main() -> None:
    n_nodes = 50
    framework = CCF()

    print(f"{'skew':>6} {'hash (s)':>10} {'mini (s)':>10} {'ccf (s)':>10} "
          f"{'ccf local (GB)':>15}")
    for skew in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        workload = AnalyticJoinWorkload(
            n_nodes=n_nodes, scale_factor=3.0, zipf_s=0.8, skew=skew
        )
        cmp = framework.compare(workload)
        local = cmp["ccf"].metrics.local_bytes / 1e9
        print(
            f"{skew:>5.0%} {cmp.cct('hash'):>10.2f} {cmp.cct('mini'):>10.2f} "
            f"{cmp.cct('ccf'):>10.2f} {local:>15.2f}"
        )

    print("\nhash time *rises* with skew (hotspot at the hash destination of")
    print("the hot key); mini/ccf *fall* because partial duplication pins the")
    print("skewed tuples in place and frees that bandwidth for the rest.")

    # Peek inside the skew pre-processing at one point.
    workload = AnalyticJoinWorkload(n_nodes=n_nodes, scale_factor=3.0, skew=0.3)
    raw = workload.shuffle_model(skew_handling=False)
    handled = workload.shuffle_model(skew_handling=True)
    print(f"\nat skew=30%: shuffle mass {raw.h.sum() / 1e9:.2f} GB -> "
          f"{handled.h.sum() / 1e9:.2f} GB after partial duplication")
    print(f"broadcast volume injected: {handled.v0.sum() / 1e6:.3f} MB "
          f"(the hot key's CUSTOMER rows, replicated to all nodes)")


if __name__ == "__main__":
    main()
