#!/usr/bin/env python
"""Outer joins and semi-join reduction under CCF.

Two traffic-reduction techniques from the paper's reference list, run end
to end: a LEFT OUTER JOIN whose unmatched rows must survive (refs [16],
[20] -- the authors' own outer-join line), and the classical semi-join
reducer that ships a key set first to avoid shuffling rows that cannot
match.

Run:  python examples/outer_join_semijoin.py
"""

import numpy as np

from repro.core.framework import CCF
from repro.join.outer import DistributedOuterJoin, semijoin_reduction
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation


def main() -> None:
    rng = np.random.default_rng(3)
    n_nodes = 6
    # Customers 1..500; orders reference a wider key domain (archived
    # customers 501..1000 no longer exist), so many orders match nothing
    # and many customers never ordered.  One key is scorching hot.
    customers = DistributedRelation.from_placement(
        np.arange(1, 501), rng.integers(0, n_nodes, 500), n_nodes,
        payload_bytes=200.0,
    )
    order_keys = rng.integers(1, 1001, size=3000)
    order_keys[:600] = 1
    orders = DistributedRelation.from_placement(
        order_keys, rng.integers(0, n_nodes, 3000), n_nodes,
        payload_bytes=1000.0,
    )

    outer = DistributedOuterJoin(
        customers, orders, partitioner=HashPartitioner(90), skew_factor=20.0
    )
    print("LEFT OUTER JOIN customers ⟕ orders")
    print(f"  expected rows (incl. NULL-padded): {outer.expected_cardinality()}")
    for strategy in ("hash", "ccf"):
        plan = CCF().plan(outer, strategy)
        result = outer.execute_outer(plan)
        print(
            f"  {strategy:<5} matched={result.matched} "
            f"unmatched={result.unmatched_left} "
            f"traffic={result.realized_traffic / 1e6:.2f} MB "
            f"cct={plan.cct * 1e3:.2f} ms"
        )

    print("\nsemi-join reduction before the shuffle")
    red = semijoin_reduction(customers, orders)
    print(f"  orders rows {orders.total_tuples} -> {red.reduced.total_tuples}")
    print(f"  key broadcast cost: {red.key_broadcast_bytes / 1e3:.1f} KB")
    print(f"  shuffle bytes saved: {red.bytes_saved / 1e6:.2f} MB")
    print(f"  worthwhile: {red.worthwhile}")

    # The reduced join moves less and finishes sooner.
    full = DistributedJoin(customers, orders,
                           partitioner=HashPartitioner(90), skew_factor=20.0)
    reduced = DistributedJoin(customers, red.reduced,
                              partitioner=HashPartitioner(90), skew_factor=20.0)
    ccf = CCF()
    p_full = ccf.plan(full, "ccf")
    p_red = ccf.plan(reduced, "ccf")
    print(
        f"\n  inner join CCT: {p_full.cct * 1e3:.2f} ms -> "
        f"{p_red.cct * 1e3:.2f} ms after reduction "
        f"(traffic {p_full.traffic / 1e6:.2f} -> {p_red.traffic / 1e6:.2f} MB)"
    )


if __name__ == "__main__":
    main()
