#!/usr/bin/env python
"""End-to-end tuple-level join: generate, plan, shuffle, join, verify.

Unlike the analytic quickstart, this example materializes real key arrays
(the paper's CUSTOMER ⋈ ORDERS at a small scale factor), executes the
shuffle a plan prescribes, runs the local hash joins, and checks that
every strategy produces exactly the centralized join cardinality.

Run:  python examples/tpch_join.py
"""

from repro import CCF, DistributedJoin, HashPartitioner, TPCHConfig
from repro.workloads.tpch import generate_tpch_relations


def main() -> None:
    config = TPCHConfig(
        n_nodes=8,
        scale_factor=0.01,  # 1.5k customers, 15k orders
        zipf_s=0.8,
        skew=0.2,
        seed=7,
    )
    customer, orders = generate_tpch_relations(config)
    print(
        f"CUSTOMER: {customer.total_tuples} tuples, "
        f"ORDERS: {orders.total_tuples} tuples over {config.n_nodes} nodes"
    )

    join = DistributedJoin(
        customer,
        orders,
        partitioner=HashPartitioner(p=15 * config.n_nodes),
        skew_factor=50.0,
    )
    print(f"skewed keys detected: {join.skewed_keys().tolist()}")
    expected = join.expected_cardinality()
    print(f"centralized join cardinality: {expected}\n")

    framework = CCF()
    header = (
        f"{'strategy':<8} {'traffic (MB)':>12} {'model CCT (s)':>14} "
        f"{'result tuples':>14} {'correct':>8}"
    )
    print(header)
    print("-" * len(header))
    for strategy in ("hash", "mini", "ccf"):
        plan = framework.plan(join, strategy)
        result = join.execute(plan)
        ok = result.cardinality == expected
        print(
            f"{strategy:<8} {result.realized_traffic / 1e6:>12.2f} "
            f"{plan.cct:>14.4f} {result.cardinality:>14} {str(ok):>8}"
        )
        assert ok, f"{strategy} produced a wrong join result!"

    print("\nall strategies co-locate every join key correctly; "
          "they differ only in where the bytes go and how long that takes")


if __name__ == "__main__":
    main()
