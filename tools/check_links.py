#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Scans markdown files for relative links (``[text](path)``) and reports
any whose target does not exist on disk. External links (http/https/
mailto) and pure in-page anchors are skipped; ``#fragment`` suffixes on
file links are stripped before the existence check.

Usage::

    python tools/check_links.py README.md docs
    python tools/check_links.py            # defaults: README.md DESIGN.md
                                           #           EXPERIMENTS.md docs/

Exits 0 when every link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, Sequence

#: ``[text](target)`` — target must not contain spaces or a closing paren.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link schemes that are not filesystem paths.
EXTERNAL = ("http://", "https://", "mailto:")

DEFAULT_TARGETS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs")


def iter_markdown(targets: Iterable[str]) -> list[Path]:
    """Expand files and directories into a sorted list of .md files."""
    files: set[Path] = set()
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.suffix == ".md" and path.exists():
            files.add(path)
    return sorted(files)


def broken_links(md_file: Path) -> list[tuple[int, str]]:
    """All (line_number, target) pairs in ``md_file`` that don't resolve."""
    problems: list[tuple[int, str]] = []
    for lineno, line in enumerate(
        md_file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (md_file.parent / rel).exists():
                problems.append((lineno, target))
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    """Check every markdown file under the given targets; report breakage."""
    targets = list(argv) if argv else list(DEFAULT_TARGETS)
    files = iter_markdown(targets)
    if not files:
        print(f"no markdown files found under {targets}", file=sys.stderr)
        return 1
    total = 0
    for md_file in files:
        for lineno, target in broken_links(md_file):
            print(f"{md_file}:{lineno}: broken link -> {target}")
            total += 1
    if total:
        print(f"{total} broken link(s) across {len(files)} files")
        return 1
    print(f"all links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
