"""The long-running service loop: stream -> admission -> simulator.

:func:`run_service` wires one :class:`~repro.service.arrivals.ArrivalStream`
through an :class:`~repro.service.admission.AdmissionController` into the
fluid simulator and runs the whole thing to drain, watchdogs armed.  The
simulator polls the controller every epoch (the ``source`` hook);
completions flow back into the controller through a tiny instrumentation
monitor, closing the feedback loop the ``slo-guard`` policy needs.

Optionally a seeded chaos schedule (port MTBF-MTTR failures with a
recovery policy) runs *concurrently* with the arrivals -- the soak
scenario: sustained load while the fabric degrades and heals.

The result is a :class:`ServiceReport`: admission counters, overall and
post-warm-up (steady-state) CCT percentiles, backlog at drain, failure
counts and the SLO verdict.  Everything except ``wall_s`` is a pure
function of the config -- bit-reproducible given the seed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.engine import derive_seed
from repro.network.chaos import ChaosConfig, chaos_schedule
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator, SimulationResult
from repro.obs.instrument import Instrumentation, MultiInstrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import steady_state_stats
from repro.service.admission import (
    AdmissionController,
    make_admission_policy,
)
from repro.service.arrivals import (
    ArrivalConfig,
    ArrivalStream,
    expected_coflow_bytes,
    offered_load,
    rate_for_load,
)

__all__ = ["ServiceConfig", "ServiceReport", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """One open-loop service scenario.

    Parameters
    ----------
    arrival:
        The arrival stream (rate, process, size mix, length, seed).
    load:
        Offered utilization target; the port rate is derived from the
        stream's analytic mean so the fabric runs at this fraction of
        capacity (> 1 is overload).  Ignored when ``rate`` is given.
    rate:
        Explicit per-port rate in bytes/s (overrides ``load``).
    scheduler:
        Coflow discipline name (``repro.network.schedulers`` registry).
    policy:
        Admission policy name (``repro.service.admission.POLICIES``).
    policy_params:
        Keyword overrides for the policy's constructor.  Two defaults
        are filled in when absent: ``load-shedding.large_bytes`` becomes
        twice the stream's mean coflow size, and ``slo-guard.budget_s``
        inherits ``slo_p95``.
    slo_p95:
        Steady-state p95 CCT budget in seconds; the report's ``slo_ok``
        verdict (and ``ccf serve``'s exit code) checks against it.
        None disables the check.
    chaos_mtbf / chaos_mttr / min_alive / recovery:
        When ``chaos_mtbf`` is set, a seeded port failure/repair
        schedule (soak mode) runs alongside the arrivals, handled by
        the named recovery policy.
    wall_clock_budget_s / max_epochs:
        Simulator watchdog budgets (stall detection is always on).
    batch_events:
        Forwarded to :class:`~repro.network.simulator.CoflowSimulator`:
        reuse rate allocations across the (frequent) service-mode epochs
        that only poll the arrival source without changing the fleet.
        Default on; results are bit-identical either way.
    window:
        Sliding CCT window length for the ``slo-guard`` signal.
    """

    arrival: ArrivalConfig = field(default_factory=ArrivalConfig)
    load: float = 0.7
    rate: float | None = None
    scheduler: str = "sebf"
    policy: str = "accept-all"
    policy_params: dict[str, Any] = field(default_factory=dict)
    slo_p95: float | None = None
    chaos_mtbf: float | None = None
    chaos_mttr: float = 1.0
    min_alive: int = 2
    recovery: str = "retry"
    wall_clock_budget_s: float | None = None
    max_epochs: int = 50_000_000
    batch_events: bool = True
    window: int = 256

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.slo_p95 is not None and self.slo_p95 <= 0:
            raise ValueError("slo_p95 must be positive or None")
        if self.chaos_mtbf is not None and self.chaos_mtbf <= 0:
            raise ValueError("chaos_mtbf must be positive or None")
        if self.chaos_mttr <= 0:
            raise ValueError("chaos_mttr must be positive")

    @property
    def port_rate(self) -> float:
        """The effective per-port rate of the scenario."""
        if self.rate is not None:
            return self.rate
        return rate_for_load(self.arrival, self.load)


@dataclass
class ServiceReport:
    """Outcome of one :func:`run_service` run.

    ``overall`` holds the CCT percentiles of every admitted completion;
    ``steady`` the post-warm-up window (None when too few completions
    to call any window steady).  ``wall_s`` is the only
    non-deterministic field.
    """

    policy: str
    load: float
    arrivals: int
    admitted: int
    shed: int
    deferrals: int
    completed: int
    aborted: int
    overall: dict[str, float]
    steady: dict[str, Any] | None
    backlog_end_s: float
    makespan: float
    n_epochs: int
    port_failures: int
    bytes_lost: float
    slo_p95: float | None
    slo_ok: bool
    wall_s: float

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def reported_p95(self) -> float:
        """The p95 the SLO verdict uses: steady-state, else overall."""
        if self.steady is not None:
            return float(self.steady["p95"])
        return float(self.overall["p95"])

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (``ccf serve --json``)."""
        return {
            "policy": self.policy,
            "load": self.load,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "deferrals": self.deferrals,
            "completed": self.completed,
            "aborted": self.aborted,
            "cct_overall": self.overall,
            "cct_steady": self.steady,
            "backlog_end_s": self.backlog_end_s,
            "makespan_s": self.makespan,
            "n_epochs": self.n_epochs,
            "port_failures": self.port_failures,
            "bytes_lost": self.bytes_lost,
            "slo_p95": self.slo_p95,
            "slo_ok": self.slo_ok,
            "wall_s": self.wall_s,
        }


class _CompletionMonitor(Instrumentation):
    """Feeds simulator completions/aborts back into the controller."""

    enabled = True

    def __init__(self, controller: AdmissionController) -> None:
        self.controller = controller

    def coflow_complete(self, cid, *, time, cct):
        self.controller.record_completion(cid, time=time, cct=cct)

    def coflow_abort(self, cid, *, time):
        self.controller.record_abort(cid, time=time)


def _policy_with_defaults(config: ServiceConfig) -> dict[str, Any]:
    """Fill in the scenario-dependent policy defaults."""
    params = dict(config.policy_params)
    if config.policy == "load-shedding" and "large_bytes" not in params:
        params["large_bytes"] = 2.0 * expected_coflow_bytes(config.arrival)
    if (
        config.policy == "slo-guard"
        and "budget_s" not in params
        and config.slo_p95 is not None
    ):
        params["budget_s"] = config.slo_p95
    return params


def run_service(
    config: ServiceConfig,
    *,
    instrumentation: Instrumentation | None = None,
) -> tuple[ServiceReport, SimulationResult, AdmissionController]:
    """Run one open-loop scenario to drain and report.

    ``instrumentation`` (e.g. a :class:`~repro.obs.StreamingTracer`)
    receives the full event stream -- simulator lifecycle plus the
    controller's ``admission`` rulings -- and its metrics registry, if
    it has one, collects the ``service_*`` counters.

    Returns ``(report, simulation_result, controller)``; the controller
    is returned for callers (tests, the capacity planner) that want the
    raw counters and CCT samples.
    """
    arrival = config.arrival
    rate = config.port_rate
    fabric = Fabric(n_ports=arrival.n_ports, rate=rate)
    metrics = getattr(instrumentation, "metrics", None) or MetricsRegistry()
    stream = ArrivalStream(arrival)
    policy = make_admission_policy(
        config.policy, **_policy_with_defaults(config)
    )
    controller = AdmissionController(
        stream,
        policy,
        fabric,
        metrics=metrics,
        instrumentation=instrumentation,
        window=config.window,
    )
    monitor = _CompletionMonitor(controller)
    if instrumentation is not None and instrumentation.enabled:
        obs: Instrumentation = MultiInstrumentation(
            [monitor, instrumentation]
        )
    else:
        obs = monitor

    dynamics = None
    recovery = None
    if config.chaos_mtbf is not None:
        horizon = arrival.horizon
        if horizon is None:
            # No new failures once the stream should have drained: twice
            # the stream's own expected duration is comfortably past it.
            horizon = 2.0 * arrival.max_arrivals / arrival.arrival_rate
        dynamics = chaos_schedule(
            ChaosConfig(
                mtbf=config.chaos_mtbf,
                mttr=config.chaos_mttr,
                horizon=horizon,
                seed=derive_seed(arrival.seed, "service-chaos"),
                min_alive=config.min_alive,
            ),
            fabric,
        )
        recovery = config.recovery

    sim = CoflowSimulator(
        fabric,
        make_scheduler(config.scheduler),
        dynamics=dynamics,
        recovery=recovery,
        instrumentation=obs,
        max_epochs=config.max_epochs,
        batch_events=config.batch_events,
        wall_clock_budget_s=config.wall_clock_budget_s,
    )
    t0 = _time.monotonic()
    result = sim.run([], source=controller)
    wall = _time.monotonic() - t0

    ccts = [cct for _, cct in controller.cct_samples]
    overall = _percentiles(ccts)
    steady = steady_state_stats(controller.cct_samples)
    p95 = float(steady["p95"]) if steady is not None else overall["p95"]
    slo_ok = config.slo_p95 is None or p95 <= config.slo_p95
    report = ServiceReport(
        policy=config.policy,
        load=(
            config.load
            if config.rate is None
            else offered_load(arrival, config.rate)
        ),
        arrivals=controller.arrivals,
        admitted=controller.admitted,
        shed=controller.shed,
        deferrals=controller.deferrals,
        completed=controller.completed,
        aborted=controller.aborted,
        overall=overall,
        steady=steady,
        backlog_end_s=controller.state(result.makespan).backlog_seconds,
        makespan=result.makespan,
        n_epochs=result.n_epochs,
        port_failures=result.n_port_failures,
        bytes_lost=result.bytes_lost,
        slo_p95=config.slo_p95,
        slo_ok=slo_ok,
        wall_s=wall,
    )
    return report, result, controller


def _percentiles(values: list[float]) -> dict[str, float]:
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }
