"""Capacity planning: binary-search the knee of the p95-CCT curve.

Answers the operator's questions directly: "how much traffic can this
fabric take before p95 CCT blows the budget?" (:func:`find_load_capacity`)
and "how many nodes do I need to serve this traffic within budget?"
(:func:`find_node_capacity`).  Both run short probe scenarios through
:func:`~repro.service.loop.run_service` and bisect on the SLO verdict,
exploiting monotonicity: p95 CCT rises with offered load and falls with
node count.  Every probe is recorded, so the output doubles as the
measured load/latency curve around the knee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.service.loop import ServiceConfig, run_service

__all__ = [
    "CapacityProbe",
    "CapacityResult",
    "find_load_capacity",
    "find_node_capacity",
]


@dataclass(frozen=True)
class CapacityProbe:
    """One probe run: the axis value tried and what it measured."""

    value: float
    p95: float
    shed_fraction: float
    completed: int
    ok: bool


@dataclass
class CapacityResult:
    """Bisection outcome: the knee plus every probe along the way.

    ``status`` disambiguates the edge cases a bare ``best`` cannot:

    - ``"knee"`` -- the knee lies strictly inside the probed range and
      ``best`` is its bisection estimate.
    - ``"all-ok"`` -- every probe met the budget; ``best`` is the probed
      bound (``hi`` for load, ``lo`` for nodes) and the true capacity
      may lie beyond the probed range.
    - ``"none-ok"`` -- even the most favourable bound breached the
      budget; ``best`` is None and the search stopped after one probe.
    """

    axis: str
    budget_s: float
    best: float | None
    probes: list[CapacityProbe]
    status: str = "knee"

    def describe(self) -> str:
        """One-line human reading of the outcome, edge cases included."""
        if self.axis == "load":
            favourable, widen = "lowest probed load", "raise hi"
            label = "highest sustainable load"
        else:
            favourable, widen = "largest probed fabric", "lower lo"
            label = "smallest sufficient fabric"
        if self.status == "none-ok":
            return (
                f"no capacity in range: even the {favourable} "
                f"({self.probes[0].value:g}) breaches the "
                f"{self.budget_s:g} s budget"
            )
        if self.status == "all-ok":
            return (
                f"{label}: {self.best:g} (budget met at every probe; "
                f"the true knee may lie outside the probed range -- "
                f"{widen} to find it)"
            )
        return f"{label}: {self.best:g}"

    def table(self) -> str:
        """Plain-text probe table (the CLI's output body)."""
        lines = [f"{'probe':>10}  {'p95 CCT (s)':>12}  {'shed':>6}  ok"]
        for p in self.probes:
            lines.append(
                f"{p.value:>10.4g}  {p.p95:>12.6g}  "
                f"{p.shed_fraction:>6.1%}  {'yes' if p.ok else 'NO'}"
            )
        return "\n".join(lines)


def _probe(
    config: ServiceConfig, budget_s: float, value: float
) -> CapacityProbe:
    report, _, _ = run_service(config)
    p95 = report.reported_p95
    # A probe only counts as healthy if latency is in budget AND the
    # run actually completed a meaningful share of what it admitted --
    # a fabric that sheds everything has great p95 and no capacity.
    ok = p95 <= budget_s and report.completed > 0
    return CapacityProbe(
        value=value,
        p95=p95,
        shed_fraction=report.shed_fraction,
        completed=report.completed,
        ok=ok,
    )


def find_load_capacity(
    config: ServiceConfig,
    *,
    budget_s: float,
    lo: float = 0.2,
    hi: float = 2.0,
    iters: int = 6,
    probe_arrivals: int | None = None,
) -> CapacityResult:
    """Highest offered load whose steady p95 CCT stays within budget.

    Bisects load in ``[lo, hi]``; ``config.rate`` must be None so each
    probe re-derives the port rate from its load.  ``probe_arrivals``
    optionally shortens the probe streams (fewer arrivals per probe).
    Returns the best passing load (None if even ``lo`` breaches).
    """
    if budget_s <= 0:
        raise ValueError("budget_s must be positive")
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    if config.rate is not None:
        raise ValueError(
            "load search needs config.rate=None (rate is derived from "
            "the probed load)"
        )

    def at(load: float) -> ServiceConfig:
        cfg = replace(config, load=load)
        if probe_arrivals is not None:
            cfg = replace(
                cfg, arrival=replace(cfg.arrival, max_arrivals=probe_arrivals)
            )
        return cfg

    probes: list[CapacityProbe] = []
    lo_probe = _probe(at(lo), budget_s, lo)
    probes.append(lo_probe)
    if not lo_probe.ok:
        return CapacityResult("load", budget_s, None, probes, "none-ok")
    hi_probe = _probe(at(hi), budget_s, hi)
    probes.append(hi_probe)
    if hi_probe.ok:
        return CapacityResult("load", budget_s, hi, probes, "all-ok")
    best = lo
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        p = _probe(at(mid), budget_s, mid)
        probes.append(p)
        if p.ok:
            best, lo = mid, mid
        else:
            hi = mid
    return CapacityResult("load", budget_s, best, probes, "knee")


def find_node_capacity(
    config: ServiceConfig,
    *,
    budget_s: float,
    lo: int = 4,
    hi: int = 128,
    probe_arrivals: int | None = None,
) -> CapacityResult:
    """Smallest fabric (node count) serving the stream within budget.

    ``config.rate`` must be set: with a fixed per-port rate, adding
    nodes adds capacity (under load-derived rates the rate would shrink
    to cancel the extra nodes and the search would be meaningless).
    Returns the smallest passing node count (None if even ``hi``
    breaches).
    """
    if budget_s <= 0:
        raise ValueError("budget_s must be positive")
    if not 2 <= lo <= hi:
        raise ValueError("need 2 <= lo <= hi")
    if config.rate is None:
        raise ValueError(
            "node search needs an explicit config.rate (a load-derived "
            "rate would re-absorb any node count)"
        )

    def at(n: int) -> ServiceConfig:
        cfg = replace(config, arrival=replace(config.arrival, n_ports=n))
        if probe_arrivals is not None:
            cfg = replace(
                cfg, arrival=replace(cfg.arrival, max_arrivals=probe_arrivals)
            )
        return cfg

    probes: list[CapacityProbe] = []
    hi_probe = _probe(at(hi), budget_s, hi)
    probes.append(hi_probe)
    if not hi_probe.ok:
        return CapacityResult("nodes", budget_s, None, probes, "none-ok")
    lo_probe = _probe(at(lo), budget_s, lo)
    probes.append(lo_probe)
    if lo_probe.ok:
        return CapacityResult("nodes", budget_s, lo, probes, "all-ok")
    best = hi
    low, high = lo, hi  # low breaches, high passes
    while high - low > 1:
        mid = (low + high) // 2
        p = _probe(at(mid), budget_s, mid)
        probes.append(p)
        if p.ok:
            best, high = mid, mid
        else:
            low = mid
    return CapacityResult("nodes", budget_s, best, probes, "knee")
