"""Overload-control policies and the admission controller.

The controller sits between an :class:`~repro.service.arrivals.ArrivalStream`
and the simulator: it implements the simulator's
:class:`~repro.network.simulator.ArrivalSource` protocol, so the epoch
loop polls it every epoch, and it rules on each arrival with a pluggable
:class:`AdmissionPolicy`:

* ``accept-all`` -- the baseline: every arrival is admitted.  Under
  overload the active set, backlog and CCTs grow without bound; this is
  the collapse mode the other policies exist to prevent.
* ``bounded-queue`` -- backpressure: above a backlog watermark arrivals
  wait in a bounded deferral queue with
  :class:`~repro.core.resilience.Backoff` delays (simulated seconds);
  a full queue or exhausted retries sheds the coflow.  Deferred coflows
  keep their original arrival time, so their CCT honestly charges the
  queueing delay.
* ``load-shedding`` -- degrade by size class: above the watermark only
  large coflows are dropped (cheap queries keep flowing); above a hard
  multiple of the watermark everything is dropped.
* ``slo-guard`` -- closed-loop shedding on the objective: shed when the
  sliding-window p95 CCT of *admitted* work breaches the budget or the
  backlog predicts a breach, readmit (with hysteresis) once the backlog
  re-enters.

Every ruling increments ``service_*`` counters in the
:class:`~repro.obs.MetricsRegistry` and emits an ``admission`` trace
event, so shed/deferred/admitted counts are visible in ``ccf stats``.

The overload signal is *backlog seconds*: admitted-but-unfinished bytes
divided by the fabric's aggregate capacity -- the optimistic time to
drain everything in flight.  It is cheap (O(1) per event), scheduler-
agnostic, and rises exactly when offered load exceeds capacity.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.resilience import Backoff
from repro.network.fabric import Fabric
from repro.network.flow import Coflow
from repro.network.simulator import ArrivalSource
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.service.arrivals import ArrivalStream

__all__ = [
    "ServiceState",
    "AdmissionPolicy",
    "AcceptAll",
    "BoundedQueue",
    "LoadShedding",
    "SLOGuard",
    "AdmissionController",
    "make_admission_policy",
    "POLICIES",
]

#: Minimum completed-coflow samples before ``recent_p95`` is reported
#: (a p95 of three samples is noise, not a signal to shed on).
_MIN_P95_SAMPLES = 20


@dataclass(frozen=True)
class ServiceState:
    """Live service signals a policy rules against.

    ``backlog_seconds`` is the optimistic drain time of everything
    admitted and unfinished: ``outstanding_bytes / capacity`` with
    ``capacity`` the fabric's aggregate egress rate.  ``recent_p95`` is
    the sliding-window p95 CCT of admitted completions, or None until
    enough samples exist.
    """

    now: float
    outstanding_bytes: float
    capacity: float
    active_coflows: int
    queued: int
    recent_p95: float | None

    @property
    def backlog_seconds(self) -> float:
        if self.outstanding_bytes <= 0:
            # Completion bookkeeping accumulates float error; an empty
            # system is exactly zero backlog, never -1e-14.
            return 0.0
        if self.capacity <= 0:
            return float("inf")
        return self.outstanding_bytes / self.capacity


class AdmissionPolicy:
    """Base policy: rules on one arrival given the live service state.

    :meth:`decide` returns ``(decision, reason)`` with decision one of
    ``"admit"`` / ``"defer"`` / ``"shed"``; ``reason`` is a short slug
    recorded in the trace (empty for plain admits).  ``attempt`` counts
    prior deferrals of this same coflow (0 on first sight).  Policies
    must be deterministic: same inputs, same ruling.
    """

    name = "base"
    #: Deferral schedule (simulated seconds) for policies that defer.
    backoff = Backoff(
        max_attempts=5, base_delay=0.5, multiplier=2.0,
        max_delay=30.0, jitter=0.1,
    )

    def decide(
        self, coflow: Coflow, state: ServiceState, attempt: int
    ) -> tuple[str, str]:
        raise NotImplementedError

    def defer_delay(self, attempt: int) -> float:
        """Simulated-seconds wait before re-deciding a deferred coflow."""
        return self.backoff.delay(
            min(attempt + 1, self.backoff.max_attempts)
        )


class AcceptAll(AdmissionPolicy):
    """Admit everything -- the open-loop baseline (and collapse mode)."""

    name = "accept-all"

    def decide(self, coflow, state, attempt):
        return "admit", ""


@dataclass
class BoundedQueue(AdmissionPolicy):
    """Backpressure: defer above the watermark, shed when the queue fills.

    Parameters
    ----------
    watermark_s:
        Backlog (seconds of drain) above which arrivals are deferred.
    queue_limit:
        Maximum coflows waiting in the deferral queue; beyond it new
        arrivals are shed immediately.
    backoff:
        Deferral-delay schedule; ``max_attempts`` bounds how often one
        coflow is re-queued before it is shed.
    """

    watermark_s: float = 30.0
    queue_limit: int = 64
    backoff: Backoff = field(
        default_factory=lambda: Backoff(
            max_attempts=5, base_delay=0.5, multiplier=2.0,
            max_delay=30.0, jitter=0.1,
        )
    )
    name = "bounded-queue"

    def __post_init__(self) -> None:
        if self.watermark_s <= 0:
            raise ValueError("watermark_s must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")

    def decide(self, coflow, state, attempt):
        if state.backlog_seconds < self.watermark_s:
            return "admit", ""
        if attempt >= self.backoff.max_attempts:
            return "shed", "retries_exhausted"
        if state.queued >= self.queue_limit:
            return "shed", "queue_full"
        return "defer", "backpressure"


@dataclass
class LoadShedding(AdmissionPolicy):
    """Degrade by size class above a utilization watermark.

    Between ``watermark_s`` and ``hard_factor * watermark_s`` of
    backlog only coflows of at least ``large_bytes`` are shed -- small
    interactive queries keep flowing while bulk transfers are dropped.
    Beyond the hard level everything is shed.
    """

    watermark_s: float = 30.0
    large_bytes: float = 2e6
    hard_factor: float = 3.0
    name = "load-shedding"

    def __post_init__(self) -> None:
        if self.watermark_s <= 0:
            raise ValueError("watermark_s must be positive")
        if self.large_bytes <= 0:
            raise ValueError("large_bytes must be positive")
        if self.hard_factor < 1:
            raise ValueError("hard_factor must be >= 1")

    def decide(self, coflow, state, attempt):
        backlog = state.backlog_seconds
        if backlog < self.watermark_s:
            return "admit", ""
        if backlog >= self.watermark_s * self.hard_factor:
            return "shed", "watermark_hard"
        if coflow.total_volume >= self.large_bytes:
            return "shed", "watermark_large"
        return "admit", "degraded"


@dataclass
class SLOGuard(AdmissionPolicy):
    """Shed until admitted-work p95 CCT re-enters the budget.

    Two breach signals, because the measured one lags: the
    sliding-window p95 CCT of admitted completions is the *objective*,
    but under overload the slowest (largest) coflows finish last, so by
    the time their CCTs land in the window the damage is admitted.  The
    guard therefore also sheds *predictively* when the backlog exceeds
    ``backlog_factor * budget_s`` -- an arrival admitted behind that
    much queued work cannot finish inside the budget (the remaining
    ``1 - backlog_factor`` is headroom for its own service time).

    Recovery is governed by the backlog signal with hysteresis
    (``margin``): the CCT window necessarily stays polluted by slow
    pre-shed completions for a while, and recovering on it alone would
    latch the guard shut -- no admissions, no fresh completions, no
    signal change.  Backlog is live: once the queue has drained the
    service is healthy again.
    """

    budget_s: float = 60.0
    margin: float = 0.9
    backlog_factor: float = 0.4
    name = "slo-guard"

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError("budget_s must be positive")
        if not 0 < self.margin <= 1:
            raise ValueError("margin must be in (0, 1]")
        if not 0 < self.backlog_factor <= 1:
            raise ValueError("backlog_factor must be in (0, 1]")
        self._shedding = False

    def decide(self, coflow, state, attempt):
        backlog_limit = self.backlog_factor * self.budget_s
        if self._shedding:
            if state.backlog_seconds <= self.margin * backlog_limit:
                self._shedding = False
                return "admit", "recovered"
            return "shed", "slo_breach"
        p95 = state.recent_p95
        measured_breach = p95 is not None and p95 > self.budget_s
        predicted_breach = state.backlog_seconds > backlog_limit
        if measured_breach or predicted_breach:
            self._shedding = True
            return "shed", "slo_breach"
        return "admit", ""


POLICIES = {
    "accept-all": AcceptAll,
    "bounded-queue": BoundedQueue,
    "load-shedding": LoadShedding,
    "slo-guard": SLOGuard,
}


def make_admission_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a policy from the registry by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"pick from {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)


class AdmissionController(ArrivalSource):
    """Routes stream arrivals through a policy into the simulator.

    Implements the simulator's :class:`ArrivalSource` protocol.  The
    epoch loop polls :meth:`next_time` / :meth:`take`; completions and
    aborts flow back in through :meth:`record_completion` /
    :meth:`record_abort` (wired by the service loop's completion
    monitor), which is how the controller tracks outstanding bytes and
    the sliding CCT window the policies rule against.

    Memory is bounded: one materialized arrival at a time, a deferral
    heap capped by the policy's queue behavior, the fixed-size CCT
    window, and one ``(arrival, cct)`` float pair per completion for
    steady-state reporting (bounded by the stream length).
    """

    def __init__(
        self,
        stream: ArrivalStream,
        policy: AdmissionPolicy,
        fabric: Fabric,
        *,
        metrics: MetricsRegistry | None = None,
        instrumentation: Instrumentation | None = None,
        window: int = 256,
    ) -> None:
        self.stream = stream
        self.policy = policy
        self.capacity = float(fabric.egress_rates.sum())
        self.metrics = metrics or MetricsRegistry()
        self.obs = (
            instrumentation
            if instrumentation is not None and instrumentation.enabled
            else None
        )
        self._deferred: list[tuple[float, int, int, Coflow]] = []
        self._seq = 0
        self._outstanding: dict[int, float] = {}
        self._outstanding_bytes = 0.0
        self._ccts: deque[float] = deque(maxlen=window)
        # recent_p95 cache: policies consult the state on every ruling,
        # but the CCT window only moves on completions, which are far
        # rarer than rulings under backpressure.  The version counter
        # bumps whenever the window changes, so cached reads return the
        # exact float a fresh percentile would.
        self._cct_version = 0
        self._p95_cache: tuple[int, float | None] = (-1, None)
        #: (arrival_time, cct) per completed admitted coflow, for the
        #: steady-state window (O(arrivals) floats, not O(events)).
        self.cct_samples: list[tuple[float, float]] = []
        self.arrivals = 0
        self.admitted = 0
        self.shed = 0
        self.deferrals = 0
        self.completed = 0
        self.aborted = 0
        m = self.metrics
        self._c_arrivals = m.counter(
            "service_arrivals_total", "coflows offered to the service"
        )
        self._c_admitted = m.counter(
            "service_admitted_total", "coflows admitted into the fabric"
        )
        self._c_deferred = m.counter(
            "service_deferred_total", "deferral rulings (backpressure)"
        )

    # -- ArrivalSource protocol -----------------------------------------
    def next_time(self, now: float) -> float | None:
        times = []
        nxt = self.stream.peek_time()
        if nxt is not None:
            times.append(nxt)
        if self._deferred:
            times.append(self._deferred[0][0])
        return min(times) if times else None

    def take(self, now: float, slack: float) -> list[Coflow]:
        released: list[Coflow] = []
        # Deferred coflows whose wait expired are re-decided first (they
        # have been waiting longest), then fresh arrivals due by now.
        while self._deferred and self._deferred[0][0] <= now + slack:
            _, _, attempt, cf = heapq.heappop(self._deferred)
            self._decide(cf, now, attempt, released)
        while True:
            nxt = self.stream.peek_time()
            if nxt is None or nxt > now + slack:
                break
            cf = self.stream.pop()
            self.arrivals += 1
            self._c_arrivals.inc()
            self._decide(cf, now, 0, released)
        return released

    # -- feedback from the simulator ------------------------------------
    def record_completion(self, cid: int, *, time: float, cct: float) -> None:
        """An admitted coflow finished; update backlog and the CCT window."""
        volume = self._outstanding.pop(cid, None)
        if volume is None:
            return
        self._drop_outstanding(volume)
        self.completed += 1
        self._ccts.append(float(cct))
        self._cct_version += 1
        self.cct_samples.append((float(time - cct), float(cct)))

    def record_abort(self, cid: int, *, time: float) -> None:
        """An admitted coflow was aborted (failure path); drop its bytes."""
        volume = self._outstanding.pop(cid, None)
        if volume is None:
            return
        self._drop_outstanding(volume)
        self.aborted += 1

    def _drop_outstanding(self, volume: float) -> None:
        # Zero the accumulator whenever the live set empties: add/subtract
        # float error would otherwise drift it away from true zero over a
        # long run (in either direction).
        self._outstanding_bytes -= volume
        if not self._outstanding:
            self._outstanding_bytes = 0.0

    # -- internals -------------------------------------------------------
    @property
    def recent_p95(self) -> float | None:
        """Sliding-window p95 CCT, or None until enough completions."""
        version, value = self._p95_cache
        if version == self._cct_version:
            return value
        if len(self._ccts) < _MIN_P95_SAMPLES:
            value = None
        else:
            value = float(np.percentile(np.asarray(self._ccts), 95))
        self._p95_cache = (self._cct_version, value)
        return value

    @property
    def backlog_seconds(self) -> float:
        return self.state(0.0).backlog_seconds

    def state(self, now: float) -> ServiceState:
        return ServiceState(
            now=now,
            outstanding_bytes=self._outstanding_bytes,
            capacity=self.capacity,
            active_coflows=len(self._outstanding),
            queued=len(self._deferred),
            recent_p95=self.recent_p95,
        )

    def _decide(
        self, cf: Coflow, now: float, attempt: int, released: list[Coflow]
    ) -> None:
        decision, reason = self.policy.decide(cf, self.state(now), attempt)
        if decision == "admit":
            self.admitted += 1
            self._c_admitted.inc()
            self._outstanding[cf.coflow_id] = cf.total_volume
            self._outstanding_bytes += cf.total_volume
            released.append(cf)
        elif decision == "defer":
            self.deferrals += 1
            self._c_deferred.inc()
            delay = max(self.policy.defer_delay(attempt), 1e-9)
            heapq.heappush(
                self._deferred, (now + delay, self._seq, attempt + 1, cf)
            )
            self._seq += 1
        elif decision == "shed":
            self.shed += 1
            self.metrics.counter(
                "service_shed_total",
                "coflows dropped by the admission policy",
                labels={"reason": reason or "unspecified"},
            ).inc()
        else:
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid decision "
                f"{decision!r}"
            )
        if self.obs is not None:
            self.obs.admission(
                decision,
                time=now,
                cid=cf.coflow_id,
                volume=cf.total_volume,
                reason=reason,
                policy=self.policy.name,
            )
