"""``repro.service`` -- the open-loop service mode.

Every other entry point in the repo is a closed batch: one job DAG or
one sweep cell, all coflows known up front, run to completion.  This
package is the "millions of users" direction from the roadmap: a
continuous, seeded stream of coflow arrivals (:mod:`arrivals`) fed
through a pluggable admission controller (:mod:`admission`) into the
fluid simulator, supervised end to end (:mod:`loop`), plus a capacity
planner that binary-searches the knee of the p95-CCT curve
(:mod:`capacity`).

The design constraint throughout is *graceful degradation*: when
offered load exceeds fabric capacity the service must shed or defer
work and keep the latency of what it admits within budget -- never
grow its queues and memory without bound.  ``ccf serve`` and
``ccf capacity`` are the CLI surfaces.
"""

from repro.service.admission import (
    POLICIES,
    AcceptAll,
    AdmissionController,
    AdmissionPolicy,
    BoundedQueue,
    LoadShedding,
    ServiceState,
    SLOGuard,
    make_admission_policy,
)
from repro.service.arrivals import (
    ArrivalConfig,
    ArrivalStream,
    expected_coflow_bytes,
    offered_load,
    rate_for_load,
)
from repro.service.capacity import (
    CapacityProbe,
    CapacityResult,
    find_load_capacity,
    find_node_capacity,
)
from repro.service.loop import ServiceConfig, ServiceReport, run_service

__all__ = [
    "POLICIES",
    "AcceptAll",
    "AdmissionController",
    "AdmissionPolicy",
    "ArrivalConfig",
    "ArrivalStream",
    "BoundedQueue",
    "CapacityProbe",
    "CapacityResult",
    "LoadShedding",
    "SLOGuard",
    "ServiceConfig",
    "ServiceReport",
    "ServiceState",
    "expected_coflow_bytes",
    "find_load_capacity",
    "find_node_capacity",
    "make_admission_policy",
    "offered_load",
    "rate_for_load",
    "run_service",
]
