"""Seeded open-loop arrival generators for the service mode.

Arrivals are composed the way a serving platform sees them: ``users``
active users each issuing ``qps_per_user`` queries per second, giving an
aggregate arrival rate ``lambda = users * qps_per_user``.  Inter-arrival
gaps are either exponential (Poisson process) or Pareto (heavy-tailed
bursts with the same mean rate); each arrival's coflow is drawn from a
size mix -- the four-bin Facebook mix from
:mod:`repro.workloads.coflowmix` or a Zipf per-flow-size mix.

Everything is seeded through
:func:`repro.experiments.engine.derive_seed`, so a stream is a pure
function of its config: re-creating it replays the identical arrival
sequence, and :meth:`ArrivalStream.skip` fast-forwards a replay for
resumption.

The module also knows the analytic mean coflow size of each mix
(:func:`expected_coflow_bytes`), which turns an offered-load target
``rho`` into a port rate and back (:func:`rate_for_load`,
:func:`offered_load`): with ``n`` ports of rate ``r`` the fabric moves
at most ``n * r`` bytes/s, so ``rho = lambda * E[bytes] / (n * r)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import derive_seed
from repro.network.flow import Coflow, Flow
from repro.workloads.coflowmix import BIN_DEFINITIONS

__all__ = [
    "ArrivalConfig",
    "ArrivalStream",
    "expected_coflow_bytes",
    "offered_load",
    "rate_for_load",
    "PROCESSES",
    "SIZE_MIXES",
]

PROCESSES = ("poisson", "pareto")
SIZE_MIXES = ("facebook", "zipf")

#: Zipf mix parameters: width uniform in [1, _ZIPF_WIDTH_MAX], per-flow
#: volume ``size_scale * _ZIPF_UNIT_BYTES * min(Z, _ZIPF_CAP)`` with
#: ``Z ~ Zipf(zipf_a)``.  The cap keeps the mean finite and analytic.
_ZIPF_WIDTH_MAX = 16
_ZIPF_UNIT_BYTES = 1e6
_ZIPF_CAP = 1000


@dataclass(frozen=True)
class ArrivalConfig:
    """Parameters of one open-loop arrival stream.

    Parameters
    ----------
    n_ports:
        Fabric size the coflows are drawn over.
    users:
        Concurrently active users.
    qps_per_user:
        Queries (coflows) each user issues per second; the aggregate
        arrival rate is ``users * qps_per_user``.
    process:
        Inter-arrival law: ``"poisson"`` (exponential gaps) or
        ``"pareto"`` (heavy-tailed gaps with the same mean).
    pareto_alpha:
        Tail index of the Pareto gaps; must exceed 1 so the mean rate
        is defined (smaller = burstier).
    size_mix:
        ``"facebook"`` (the four-bin coflow mix) or ``"zipf"``
        (Zipf-distributed per-flow sizes).
    zipf_a:
        Zipf exponent for the ``"zipf"`` mix (> 1).
    size_scale:
        Multiplier on every flow volume.  The raw Facebook mix averages
        ~550 MB/coflow -- hours of simulated drain per arrival; service
        scenarios scale it down so CCTs land on interactive time scales
        without changing the shape of the distribution.
    max_arrivals:
        Stream length; the stream is exhausted after this many coflows.
    horizon:
        Optional time cutoff (seconds): arrivals past it are not
        generated even if ``max_arrivals`` has not been reached.
    seed:
        Base seed; the stream's generator is spawned through
        ``derive_seed(seed, "service-arrivals", ...)``.
    """

    n_ports: int = 24
    users: int = 20
    qps_per_user: float = 0.1
    process: str = "poisson"
    pareto_alpha: float = 1.5
    size_mix: str = "facebook"
    zipf_a: float = 2.0
    size_scale: float = 0.002
    max_arrivals: int = 1000
    horizon: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ports < 2:
            raise ValueError("need at least two ports")
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.qps_per_user <= 0:
            raise ValueError("qps_per_user must be positive")
        if self.process not in PROCESSES:
            raise ValueError(
                f"unknown process {self.process!r}; pick from {PROCESSES}"
            )
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must be > 1 (finite mean)")
        if self.size_mix not in SIZE_MIXES:
            raise ValueError(
                f"unknown size_mix {self.size_mix!r}; pick from {SIZE_MIXES}"
            )
        if self.zipf_a <= 1.0:
            raise ValueError("zipf_a must be > 1")
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.max_arrivals < 0:
            raise ValueError("max_arrivals must be non-negative")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive or None")

    @property
    def arrival_rate(self) -> float:
        """Aggregate coflow arrival rate in coflows/second."""
        return self.users * self.qps_per_user


def expected_coflow_bytes(config: ArrivalConfig) -> float:
    """Analytic mean bytes per coflow of the configured size mix.

    Facebook mix: over the four bins, ``E[width]`` is the uniform
    integer mean and ``E[flow bytes]`` the log-uniform mean
    ``(b - a) / ln(b / a)``.  Zipf mix: uniform width times the mean of
    the capped Zipf, ``E[min(Z, cap)] = sum_{k=1..cap} P(Z >= k)``.
    """
    if config.size_mix == "facebook":
        total = 0.0
        for _, prob, (w_lo, w_hi), (s_lo, s_hi) in BIN_DEFINITIONS:
            mean_width = (w_lo + w_hi) / 2.0
            a, b = s_lo * 1e6, s_hi * 1e6
            mean_flow = (b - a) / np.log(b / a)
            total += prob * mean_width * mean_flow
        return total * config.size_scale
    # Zipf: P(Z = k) = k^-a / zeta(a); E[min(Z, cap)] via tail sums.
    a = config.zipf_a
    ks = np.arange(1, _ZIPF_CAP + 1, dtype=float)
    weights = ks**-a
    # zeta(a) ~ partial sum + integral tail bound (accurate for a > 1).
    tail = _ZIPF_CAP ** (1.0 - a) / (a - 1.0)
    zeta = float(weights.sum()) + tail
    # P(Z >= k) for k = 1..cap: 1 - (partial sums up to k-1) / zeta.
    cdf_below = np.concatenate([[0.0], np.cumsum(weights)[:-1]]) / zeta
    mean_z = float(np.sum(1.0 - cdf_below))
    mean_width = (1 + _ZIPF_WIDTH_MAX) / 2.0
    return mean_width * mean_z * _ZIPF_UNIT_BYTES * config.size_scale


def offered_load(config: ArrivalConfig, rate: float) -> float:
    """Offered utilization ``rho`` of a fabric with per-port ``rate``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return (
        config.arrival_rate
        * expected_coflow_bytes(config)
        / (config.n_ports * rate)
    )


def rate_for_load(config: ArrivalConfig, load: float) -> float:
    """Port rate at which the stream offers utilization ``load``."""
    if load <= 0:
        raise ValueError("load must be positive")
    return (
        config.arrival_rate
        * expected_coflow_bytes(config)
        / (config.n_ports * load)
    )


class ArrivalStream:
    """Deterministic lazy iterator over one arrival stream.

    One coflow is materialized at a time (bounded memory regardless of
    stream length).  :meth:`peek_time` / :meth:`pop` are the polling
    interface the admission controller drives; plain iteration works
    too.  Coflow ids are sequential from 0 and arrival times strictly
    ordered by construction.
    """

    def __init__(self, config: ArrivalConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(
            derive_seed(
                config.seed,
                "service-arrivals",
                config.process,
                config.size_mix,
            )
        )
        self.generated = 0
        self._t = 0.0
        self._next: Coflow | None = None
        self._advance()

    # -- polling interface ---------------------------------------------
    def peek_time(self) -> float | None:
        """Arrival time of the next coflow, or None when exhausted."""
        return None if self._next is None else self._next.arrival_time

    def pop(self) -> Coflow:
        """Consume and return the next coflow."""
        if self._next is None:
            raise StopIteration("arrival stream exhausted")
        out = self._next
        self._advance()
        return out

    def skip(self, n: int) -> None:
        """Fast-forward ``n`` arrivals (replay-based resumption)."""
        for _ in range(n):
            if self._next is None:
                return
            self.pop()

    def __iter__(self) -> "ArrivalStream":
        return self

    def __next__(self) -> Coflow:
        if self._next is None:
            raise StopIteration
        return self.pop()

    # -- generation ----------------------------------------------------
    def _advance(self) -> None:
        cfg = self.config
        if self.generated >= cfg.max_arrivals:
            self._next = None
            return
        self._t += self._gap()
        if cfg.horizon is not None and self._t > cfg.horizon:
            self._next = None
            return
        self._next = self._draw_coflow(self.generated, self._t)
        self.generated += 1

    def _gap(self) -> float:
        cfg = self.config
        mean = 1.0 / cfg.arrival_rate
        if cfg.process == "poisson":
            return float(self._rng.exponential(mean))
        # Pareto(alpha) via numpy's Lomax: mean 1/(alpha-1), rescaled
        # so the process keeps the configured aggregate rate.
        return float(
            self._rng.pareto(cfg.pareto_alpha)
            * (cfg.pareto_alpha - 1.0)
            * mean
        )

    def _draw_coflow(self, cid: int, t: float) -> Coflow:
        cfg = self.config
        rng = self._rng
        if cfg.size_mix == "facebook":
            probs = np.array([b[1] for b in BIN_DEFINITIONS])
            idx = rng.choice(len(BIN_DEFINITIONS), p=probs / probs.sum())
            name, _, (w_lo, w_hi), (s_lo, s_hi) = BIN_DEFINITIONS[idx]
            width = int(rng.integers(w_lo, w_hi + 1))
            log_lo, log_hi = np.log(s_lo * 1e6), np.log(s_hi * 1e6)
            volumes = (
                np.exp(rng.uniform(log_lo, log_hi, size=width))
                * cfg.size_scale
            )
        else:
            name = "zipf"
            width = int(rng.integers(1, _ZIPF_WIDTH_MAX + 1))
            z = np.minimum(rng.zipf(cfg.zipf_a, size=width), _ZIPF_CAP)
            volumes = z * _ZIPF_UNIT_BYTES * cfg.size_scale
        flows = []
        for vol in volumes:
            src = int(rng.integers(0, cfg.n_ports))
            dst = int(rng.integers(0, cfg.n_ports - 1))
            if dst >= src:
                dst += 1
            flows.append(Flow(src=src, dst=dst, volume=float(vol)))
        return Coflow(
            flows=flows, arrival_time=t, coflow_id=cid, name=name
        )
