"""Broadcast (replication) joins: don't shuffle the big side at all.

When one relation is much smaller than the other, repartitioning both is
wasteful: replicating the small relation to every node and probing the
big relation *in place* moves only ``(n - 1) * |small|`` bytes and
touches none of the big side.  This is the classical broadcast-hash-join
of distributed databases, and the limit case of partial duplication
(every key of the small side treated as "skewed").

In CCF terms the broadcast is a shuffle with an empty assignment problem:
all traffic is initial flows ``v0[i, j] = bytes of the small relation on
node i``.  The crossover against repartitioning -- broadcast wins when
``|small| * (n - 1) < traffic_repartition`` -- is exactly what the query
compiler's cost-based chooser tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan
from repro.join.local import join_cardinality
from repro.join.relation import DistributedRelation
from repro.network.fabric import DEFAULT_PORT_RATE

__all__ = ["BroadcastJoin", "BroadcastJoinResult"]


@dataclass
class BroadcastJoinResult:
    """Outcome of executing a broadcast join."""

    plan: ExecutionPlan
    cardinality: int
    per_node_cardinality: np.ndarray
    realized_traffic: float
    result: "DistributedRelation | None" = None


class BroadcastJoin:
    """Replicate ``small`` everywhere; probe ``big`` in place.

    Implements the ShuffleWorkload protocol (its model has zero
    partitions and pure initial flows), so the standard CCF planning /
    simulation pipeline applies even though there is nothing to assign.
    """

    def __init__(
        self,
        small: DistributedRelation,
        big: DistributedRelation,
        *,
        rate: float = DEFAULT_PORT_RATE,
        name: str = "broadcast-join",
    ) -> None:
        if small.n_nodes != big.n_nodes:
            raise ValueError("small and big must span the same nodes")
        self.small = small
        self.big = big
        self.rate = rate
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self.small.n_nodes

    def broadcast_traffic(self) -> float:
        """Bytes the broadcast injects: ``(n - 1) * |small|``."""
        return float((self.n_nodes - 1) * self.small.total_bytes)

    def shuffle_model(self, *, skew_handling: bool = False) -> ShuffleModel:
        """Zero-partition model whose v0 is the broadcast."""
        n = self.n_nodes
        per_node = self.small.shard_tuples() * self.small.payload_bytes
        v0 = np.tile(per_node[:, None].astype(float), (1, n))
        np.fill_diagonal(v0, 0.0)
        return ShuffleModel(
            h=np.zeros((n, 0)), v0=v0, rate=self.rate, name=self.name
        )

    def plan(self) -> ExecutionPlan:
        """The (trivial) execution plan -- broadcast has no decisions."""
        model = self.shuffle_model()
        return ExecutionPlan(
            model=model,
            dest=np.zeros(0, dtype=np.int64),
            strategy="broadcast",
        )

    def expected_cardinality(self) -> int:
        return join_cardinality(self.small.all_keys(), self.big.all_keys())

    def execute(self, *, materialize: bool = False) -> BroadcastJoinResult:
        """Replicate and probe; the big side never moves.

        With ``materialize=True`` the result keys are kept per node (they
        live where the big side's tuples live).
        """
        n = self.n_nodes
        all_small = self.small.all_keys()
        per_node = np.array(
            [
                join_cardinality(all_small, self.big.shards[i])
                for i in range(n)
            ],
            dtype=np.int64,
        )
        result = None
        if materialize:
            from repro.join.local import local_hash_join

            shards = [
                local_hash_join(all_small, self.big.shards[i])
                for i in range(n)
            ]
            result = DistributedRelation(
                shards=shards,
                payload_bytes=self.small.payload_bytes + self.big.payload_bytes,
                name=f"{self.name}-result",
            )
        plan = self.plan()
        return BroadcastJoinResult(
            plan=plan,
            cardinality=int(per_node.sum()),
            per_node_cardinality=per_node,
            realized_traffic=self.broadcast_traffic(),
            result=result,
        )
