"""Distributed relations: shards of join keys spread over nodes.

The evaluation only exercises equi-joins on integer keys with a fixed
per-tuple payload (paper: 1000 B), so a shard is represented by its key
array; payload bytes are tracked as a scalar width.  This keeps a
10^6-tuple relation in a few MB while preserving every quantity the CCF
model consumes (chunk sizes, key frequencies, join cardinalities).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DistributedRelation"]


@dataclass
class DistributedRelation:
    """A relation horizontally partitioned over ``n`` nodes.

    Parameters
    ----------
    shards:
        ``shards[i]`` -- int64 array of join keys resident on node ``i``.
    payload_bytes:
        Width of each tuple in bytes (key + payload).
    name:
        Label used in plans and reports.
    """

    shards: list[np.ndarray]
    payload_bytes: float = 1000.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a distributed relation needs at least one shard")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        self.shards = [np.asarray(s, dtype=np.int64) for s in self.shards]

    @property
    def n_nodes(self) -> int:
        return len(self.shards)

    @property
    def total_tuples(self) -> int:
        return int(sum(s.size for s in self.shards))

    @property
    def total_bytes(self) -> float:
        return self.total_tuples * self.payload_bytes

    def shard_tuples(self) -> np.ndarray:
        """Tuple count per node."""
        return np.array([s.size for s in self.shards], dtype=np.int64)

    def all_keys(self) -> np.ndarray:
        """All keys of the relation, concatenated (order unspecified)."""
        if self.total_tuples == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([s for s in self.shards])

    def key_counts(self) -> dict[int, int]:
        """Global frequency of each key (for skew detection)."""
        keys = self.all_keys()
        if keys.size == 0:
            return {}
        uniq, cnt = np.unique(keys, return_counts=True)
        return {int(k): int(c) for k, c in zip(uniq, cnt)}

    def select(self, predicate) -> "DistributedRelation":
        """New relation keeping only keys where ``predicate(keys)`` is True.

        ``predicate`` maps a key array to a boolean mask (vectorized).
        """
        return DistributedRelation(
            shards=[s[predicate(s)] for s in self.shards],
            payload_bytes=self.payload_bytes,
            name=self.name,
        )

    def without_keys(self, keys: np.ndarray) -> "DistributedRelation":
        """New relation with all tuples matching ``keys`` removed."""
        keys = np.asarray(keys, dtype=np.int64)
        return self.select(lambda s: ~np.isin(s, keys))

    def only_keys(self, keys: np.ndarray) -> "DistributedRelation":
        """New relation with only tuples matching ``keys``."""
        keys = np.asarray(keys, dtype=np.int64)
        return self.select(lambda s: np.isin(s, keys))

    @classmethod
    def from_placement(
        cls,
        keys: np.ndarray,
        nodes: np.ndarray,
        n_nodes: int,
        *,
        payload_bytes: float = 1000.0,
        name: str = "",
    ) -> "DistributedRelation":
        """Build shards from parallel (key, home-node) arrays."""
        keys = np.asarray(keys, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if keys.shape != nodes.shape:
            raise ValueError("keys and nodes must be parallel arrays")
        if keys.size and (nodes.min() < 0 or nodes.max() >= n_nodes):
            raise ValueError("node index out of range")
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        sorted_keys = keys[order]
        bounds = np.searchsorted(sorted_nodes, np.arange(n_nodes + 1))
        shards = [
            sorted_keys[bounds[i]: bounds[i + 1]].copy() for i in range(n_nodes)
        ]
        return cls(shards=shards, payload_bytes=payload_bytes, name=name)
