"""Hash partitioning: keys -> partitions, relations -> chunk matrices.

The paper partitions tuples with the simple modulus hash
``f(k) = k mod p`` (§IV-A3) and feeds the per-node, per-partition chunk
sizes ``h[i, k]`` into the co-optimization.  The chunk matrix computation
is the bridge between the tuple-level substrate and the CCF model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.join.relation import DistributedRelation

__all__ = ["HashPartitioner"]


@dataclass(frozen=True)
class HashPartitioner:
    """Modulus hash partitioner over ``p`` partitions.

    Parameters
    ----------
    p:
        Number of partitions; the paper sets ``p = 15 * n`` to give the
        scheduler fine-grained control over data assignment.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError("number of partitions must be positive")

    def partition_of(self, keys: np.ndarray) -> np.ndarray:
        """Partition index of each key: ``k mod p`` (non-negative)."""
        keys = np.asarray(keys, dtype=np.int64)
        return np.mod(keys, self.p)

    def chunk_tuples(self, relation: DistributedRelation) -> np.ndarray:
        """Per-(node, partition) tuple counts, shape ``(n, p)``."""
        n = relation.n_nodes
        out = np.zeros((n, self.p), dtype=np.int64)
        for i, shard in enumerate(relation.shards):
            if shard.size:
                out[i] = np.bincount(self.partition_of(shard), minlength=self.p)
        return out

    def chunk_matrix(self, *relations: DistributedRelation) -> np.ndarray:
        """Chunk-size matrix ``h[i, k]`` in bytes, summed over relations.

        All relations must live on the same set of nodes; each contributes
        its tuple counts scaled by its payload width.
        """
        if not relations:
            raise ValueError("need at least one relation")
        n = relations[0].n_nodes
        h = np.zeros((n, self.p))
        for rel in relations:
            if rel.n_nodes != n:
                raise ValueError("relations span different node counts")
            h += self.chunk_tuples(rel) * rel.payload_bytes
        return h
