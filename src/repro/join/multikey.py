"""Multi-column relations and joins on arbitrary key columns.

The single-key :class:`~repro.join.relation.DistributedRelation` covers
the paper's evaluation (one join attribute), but real analytical queries
chain joins on *different* keys -- CUSTOMER ⋈(custkey) ORDERS
⋈(orderkey) LINEITEM.  This module provides the keyed substrate:

* :class:`KeyedRelation` -- parallel int64 columns sharded over nodes;
* :func:`local_keyed_join` -- node-local equi-join materializing all
  surviving columns from both sides;
* :func:`execute_keyed_shuffle` -- row-wise redistribution routed by one
  column through a partition->node assignment;
* :class:`KeyedEquiJoin` -- the CCF-schedulable operator: its shuffle
  model is derived from the join column, its execution keeps every other
  column alive for downstream operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.network.fabric import DEFAULT_PORT_RATE

__all__ = [
    "KeyedRelation",
    "KeyedEquiJoin",
    "KeyedGroupBy",
    "KeyedJoinResult",
    "execute_keyed_shuffle",
    "local_keyed_join",
]


@dataclass
class KeyedRelation:
    """A relation with named int64 columns, sharded over nodes.

    Parameters
    ----------
    columns:
        ``columns[name][node]`` -- the column's values on that node.  All
        columns of a node must have equal length.
    payload_bytes:
        Width of one tuple in bytes (all columns plus payload).
    """

    columns: dict[str, list[np.ndarray]]
    payload_bytes: float = 1000.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a keyed relation needs at least one column")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        lengths: list[int] | None = None
        for col, shards in self.columns.items():
            shards = [np.asarray(s, dtype=np.int64) for s in shards]
            self.columns[col] = shards
            ls = [s.size for s in shards]
            if lengths is None:
                lengths = ls
            elif ls != lengths:
                raise ValueError(
                    f"column {col!r} shard lengths {ls} != {lengths}"
                )
        if not lengths:
            raise ValueError("need at least one shard")

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    @property
    def n_nodes(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def total_tuples(self) -> int:
        return int(sum(s.size for s in next(iter(self.columns.values()))))

    @property
    def total_bytes(self) -> float:
        return self.total_tuples * self.payload_bytes

    def column_shards(self, name: str) -> list[np.ndarray]:
        """Per-node arrays of one column."""
        try:
            return self.columns[name]
        except KeyError:
            raise ValueError(
                f"unknown column {name!r}; have {self.column_names}"
            ) from None

    def project(self, name: str) -> DistributedRelation:
        """Single-key view on one column (for CCF models, stats, ...)."""
        return DistributedRelation(
            shards=[s.copy() for s in self.column_shards(name)],
            payload_bytes=self.payload_bytes,
            name=f"{self.name}.{name}" if self.name else name,
        )

    def select(self, column: str, predicate) -> "KeyedRelation":
        """Row filter: keep rows where ``predicate(column_values)``."""
        masks = [predicate(s) for s in self.column_shards(column)]
        return KeyedRelation(
            columns={
                col: [s[m] for s, m in zip(shards, masks)]
                for col, shards in self.columns.items()
            },
            payload_bytes=self.payload_bytes,
            name=self.name,
        )

    def node_rows(self, node: int) -> dict[str, np.ndarray]:
        """All columns of one node as a dict."""
        return {col: shards[node] for col, shards in self.columns.items()}

    @classmethod
    def from_rows(
        cls,
        columns: dict[str, np.ndarray],
        nodes: np.ndarray,
        n_nodes: int,
        *,
        payload_bytes: float = 1000.0,
        name: str = "",
    ) -> "KeyedRelation":
        """Build shards from parallel row arrays and home-node indices."""
        nodes = np.asarray(nodes, dtype=np.int64)
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        bounds = np.searchsorted(sorted_nodes, np.arange(n_nodes + 1))
        out: dict[str, list[np.ndarray]] = {}
        for col, values in columns.items():
            values = np.asarray(values, dtype=np.int64)
            if values.shape != nodes.shape:
                raise ValueError(f"column {col!r} not parallel to nodes")
            sv = values[order]
            out[col] = [
                sv[bounds[i]: bounds[i + 1]].copy() for i in range(n_nodes)
            ]
        return cls(columns=out, payload_bytes=payload_bytes, name=name)


def local_keyed_join(
    left: dict[str, np.ndarray],
    right: dict[str, np.ndarray],
    *,
    on: str,
    left_prefix: str = "",
    right_prefix: str = "",
) -> dict[str, np.ndarray]:
    """Node-local equi-join of two column dicts on a shared column.

    Returns the result columns: the join column once (named ``on``) plus
    every other column of both sides, optionally prefixed to avoid
    collisions.  Colliding unprefixed names raise.
    """
    lk = np.asarray(left[on], dtype=np.int64)
    rk = np.asarray(right[on], dtype=np.int64)
    out_names: dict[str, np.ndarray] = {}

    # Index pairs of matches, built per shared key.
    l_order = np.argsort(lk, kind="stable")
    r_order = np.argsort(rk, kind="stable")
    lks, rks = lk[l_order], rk[r_order]
    l_uniq, l_start = np.unique(lks, return_index=True)
    r_uniq, r_start = np.unique(rks, return_index=True)
    l_end = np.append(l_start[1:], lks.size)
    r_end = np.append(r_start[1:], rks.size)
    common, li, ri = np.intersect1d(
        l_uniq, r_uniq, assume_unique=True, return_indices=True
    )
    l_idx_parts: list[np.ndarray] = []
    r_idx_parts: list[np.ndarray] = []
    for c_i in range(common.size):
        ls = l_order[l_start[li[c_i]]: l_end[li[c_i]]]
        rs = r_order[r_start[ri[c_i]]: r_end[ri[c_i]]]
        l_idx_parts.append(np.repeat(ls, rs.size))
        r_idx_parts.append(np.tile(rs, ls.size))
    l_idx = (
        np.concatenate(l_idx_parts) if l_idx_parts else np.empty(0, np.int64)
    )
    r_idx = (
        np.concatenate(r_idx_parts) if r_idx_parts else np.empty(0, np.int64)
    )

    out_names[on] = lk[l_idx]
    for col, values in left.items():
        if col == on:
            continue
        name = f"{left_prefix}{col}"
        if name in out_names:
            raise ValueError(f"result column collision: {name!r}")
        out_names[name] = np.asarray(values, dtype=np.int64)[l_idx]
    for col, values in right.items():
        if col == on:
            continue
        name = f"{right_prefix}{col}"
        if name in out_names:
            raise ValueError(f"result column collision: {name!r}")
        out_names[name] = np.asarray(values, dtype=np.int64)[r_idx]
    return out_names


def execute_keyed_shuffle(
    relation: KeyedRelation,
    partitioner: HashPartitioner,
    dest: np.ndarray,
    *,
    on: str,
) -> tuple[KeyedRelation, np.ndarray]:
    """Redistribute rows so column ``on``'s partition lands on ``dest``.

    Returns (shuffled relation, realized (n, n) volume matrix in bytes).
    """
    dest = np.asarray(dest, dtype=np.int64)
    if dest.shape != (partitioner.p,):
        raise ValueError(f"dest must have shape ({partitioner.p},)")
    n = relation.n_nodes
    payload = relation.payload_bytes
    volume = np.zeros((n, n))
    per_target: dict[str, list[list[np.ndarray]]] = {
        col: [[] for _ in range(n)] for col in relation.column_names
    }
    for i in range(n):
        rows = relation.node_rows(i)
        keys = rows[on]
        if keys.size == 0:
            continue
        target = dest[partitioner.partition_of(keys)]
        order = np.argsort(target, kind="stable")
        st = target[order]
        bounds = np.searchsorted(st, np.arange(n + 1))
        for j in range(n):
            seg = order[bounds[j]: bounds[j + 1]]
            if seg.size:
                for col in relation.column_names:
                    per_target[col][j].append(rows[col][seg])
                volume[i, j] += seg.size * payload

    shuffled = KeyedRelation(
        columns={
            col: [
                np.concatenate(parts) if parts else np.empty(0, np.int64)
                for parts in per_target[col]
            ]
            for col in relation.column_names
        },
        payload_bytes=payload,
        name=relation.name,
    )
    return shuffled, volume


@dataclass
class KeyedJoinResult:
    """Outcome of a keyed join execution."""

    plan: ExecutionPlan
    result: KeyedRelation
    cardinality: int
    realized_traffic: float


class KeyedEquiJoin:
    """Equi-join of two keyed relations on a named column, CCF-schedulable.

    Implements the ShuffleWorkload protocol: the co-optimization model is
    built from the join column's chunk matrix over both inputs.  Skew
    handling (partial duplication) is not applied on this path -- keyed
    rows must follow their key.
    """

    def __init__(
        self,
        left: KeyedRelation,
        right: KeyedRelation,
        *,
        on: str,
        partitioner: HashPartitioner | None = None,
        rate: float = DEFAULT_PORT_RATE,
        left_prefix: str = "",
        right_prefix: str = "",
        name: str = "keyed-join",
    ) -> None:
        if left.n_nodes != right.n_nodes:
            raise ValueError("left and right must span the same nodes")
        for rel, side in ((left, "left"), (right, "right")):
            if on not in rel.column_names:
                raise ValueError(f"{side} relation lacks join column {on!r}")
        self.left = left
        self.right = right
        self.on = on
        self.partitioner = partitioner or HashPartitioner(p=15 * left.n_nodes)
        self.rate = rate
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self.left.n_nodes

    def shuffle_model(self, *, skew_handling: bool = False) -> ShuffleModel:
        """CCF input: both inputs' bytes, partitioned by the join column."""
        h = self.partitioner.chunk_matrix(
            self.left.project(self.on), self.right.project(self.on)
        )
        return ShuffleModel(h=h, rate=self.rate, name=self.name)

    def execute(
        self, plan: ExecutionPlan, *, result_payload_bytes: float | None = None
    ) -> KeyedJoinResult:
        """Shuffle both sides by the plan and join locally, keeping columns."""
        left_sh, vol_l = execute_keyed_shuffle(
            self.left, self.partitioner, plan.dest, on=self.on
        )
        right_sh, vol_r = execute_keyed_shuffle(
            self.right, self.partitioner, plan.dest, on=self.on
        )
        n = self.n_nodes
        out_cols: dict[str, list[np.ndarray]] | None = None
        total = 0
        for node in range(n):
            joined = local_keyed_join(
                left_sh.node_rows(node),
                right_sh.node_rows(node),
                on=self.on,
                left_prefix=self.left_prefix,
                right_prefix=self.right_prefix,
            )
            if out_cols is None:
                out_cols = {col: [] for col in joined}
            for col, values in joined.items():
                out_cols[col].append(values)
            total += joined[self.on].size
        assert out_cols is not None
        payload = (
            result_payload_bytes
            if result_payload_bytes is not None
            else self.left.payload_bytes + self.right.payload_bytes
        )
        result = KeyedRelation(
            columns=out_cols, payload_bytes=payload, name=f"{self.name}-result"
        )
        volume = vol_l + vol_r
        traffic = float(volume.sum() - np.trace(volume))
        return KeyedJoinResult(
            plan=plan,
            result=result,
            cardinality=total,
            realized_traffic=traffic,
        )


class KeyedGroupBy:
    """Count rows per value of one column, CCF-schedulable.

    Like :class:`~repro.join.operators.DistributedAggregation` but over a
    keyed relation: every node pre-aggregates its shard to
    (value, partial count) pairs, the pairs are routed by the group
    column through the plan, and destinations merge.  Pre-aggregation is
    always on -- it strictly reduces the shuffled bytes.
    """

    def __init__(
        self,
        relation: KeyedRelation,
        *,
        by: str,
        partitioner: HashPartitioner | None = None,
        rate: float = DEFAULT_PORT_RATE,
        record_bytes: float | None = None,
        name: str = "keyed-group-by",
    ) -> None:
        if by not in relation.column_names:
            raise ValueError(f"relation lacks group column {by!r}")
        self.relation = relation
        self.by = by
        self.partitioner = partitioner or HashPartitioner(
            p=15 * relation.n_nodes
        )
        self.rate = rate
        self.record_bytes = (
            record_bytes if record_bytes is not None else relation.payload_bytes
        )
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self.relation.n_nodes

    def _partials(self) -> KeyedRelation:
        """Per-node (value, count) pairs as a two-column keyed relation."""
        values: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for shard in self.relation.column_shards(self.by):
            if shard.size:
                uniq, cnt = np.unique(shard, return_counts=True)
            else:
                uniq = np.empty(0, np.int64)
                cnt = np.empty(0, np.int64)
            values.append(uniq)
            counts.append(cnt.astype(np.int64))
        return KeyedRelation(
            columns={self.by: values, "partial_count": counts},
            payload_bytes=self.record_bytes,
            name=f"{self.name}-partials",
        )

    def shuffle_model(self, *, skew_handling: bool = True) -> ShuffleModel:
        """CCF input: the pre-aggregated partials, partitioned by group."""
        h = self.partitioner.chunk_matrix(self._partials().project(self.by))
        return ShuffleModel(h=h, rate=self.rate, name=self.name)

    def expected_groups(self) -> dict[int, int]:
        """Centralized ground truth: value -> count."""
        out: dict[int, int] = {}
        for shard in self.relation.column_shards(self.by):
            if shard.size:
                uniq, cnt = np.unique(shard, return_counts=True)
                for k, c in zip(uniq, cnt):
                    out[int(k)] = out.get(int(k), 0) + int(c)
        return out

    def execute(self, plan: ExecutionPlan) -> tuple[dict[int, int], float]:
        """Shuffle the partials and merge; returns (groups, traffic)."""
        shuffled, volume = execute_keyed_shuffle(
            self._partials(), self.partitioner, plan.dest, on=self.by
        )
        groups: dict[int, int] = {}
        for node in range(self.n_nodes):
            rows = shuffled.node_rows(node)
            for k, c in zip(rows[self.by], rows["partial_count"]):
                groups[int(k)] = groups.get(int(k), 0) + int(c)
        traffic = float(volume.sum() - np.trace(volume))
        return groups, traffic
