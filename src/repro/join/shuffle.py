"""Shuffle execution: move tuples according to an assignment.

Given a partition->node assignment (an :class:`~repro.core.plan.ExecutionPlan`
``dest`` vector) this module actually redistributes a
:class:`~repro.join.relation.DistributedRelation` and reports the realized
flow volumes -- letting tests verify that the CCF model's predicted volume
matrix matches what a real shuffle moves, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation

__all__ = ["ShuffleOutcome", "execute_shuffle"]


@dataclass
class ShuffleOutcome:
    """Result of physically shuffling one relation.

    Attributes
    ----------
    relation:
        The redistributed relation (tuples now co-located by partition).
    volume_matrix:
        Realized ``(n, n)`` byte movement; diagonal = bytes that stayed.
    traffic:
        Off-diagonal total in bytes.
    """

    relation: DistributedRelation
    volume_matrix: np.ndarray
    traffic: float


def execute_shuffle(
    relation: DistributedRelation,
    partitioner: HashPartitioner,
    dest: np.ndarray,
    *,
    broadcast_keys: np.ndarray | None = None,
) -> ShuffleOutcome:
    """Redistribute ``relation`` so partition ``k`` lands on ``dest[k]``.

    Parameters
    ----------
    relation:
        Input shards.
    partitioner:
        Defines the key -> partition mapping.
    dest:
        Assignment vector of length ``p``.
    broadcast_keys:
        Keys handled by partial duplication: tuples with these keys are
        *not* routed by ``dest``; they are replicated to every node
        (the broadcast of the small relation's skew-matching tuples).

    Notes
    -----
    Tuples whose key is in ``broadcast_keys`` appear once per node in the
    output; the volume matrix charges ``n - 1`` copies as network traffic
    (the local copy is free), matching the CCF model's ``v0``.
    """
    dest = np.asarray(dest, dtype=np.int64)
    if dest.shape != (partitioner.p,):
        raise ValueError(f"dest must have shape ({partitioner.p},)")
    n = relation.n_nodes
    if dest.size and (dest.min() < 0 or dest.max() >= n):
        raise ValueError("dest references a node outside the relation")

    payload = relation.payload_bytes
    out_keys: list[list[np.ndarray]] = [[] for _ in range(n)]
    volume = np.zeros((n, n))

    bkeys = (
        np.asarray(broadcast_keys, dtype=np.int64)
        if broadcast_keys is not None
        else np.empty(0, dtype=np.int64)
    )

    for i, shard in enumerate(relation.shards):
        if shard.size == 0:
            continue
        if bkeys.size:
            is_bcast = np.isin(shard, bkeys)
            bcast = shard[is_bcast]
            routed = shard[~is_bcast]
            if bcast.size:
                for j in range(n):
                    out_keys[j].append(bcast)
                    volume[i, j] += bcast.size * payload if j != i else 0.0
                volume[i, i] += bcast.size * payload  # the local replica
        else:
            routed = shard
        if routed.size:
            target = dest[partitioner.partition_of(routed)]
            order = np.argsort(target, kind="stable")
            st = target[order]
            sk = routed[order]
            bounds = np.searchsorted(st, np.arange(n + 1))
            for j in range(n):
                seg = sk[bounds[j]: bounds[j + 1]]
                if seg.size:
                    out_keys[j].append(seg)
                    volume[i, j] += seg.size * payload

    shards = [
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        for parts in out_keys
    ]
    shuffled = DistributedRelation(
        shards=shards, payload_bytes=payload, name=relation.name
    )
    traffic = float(volume.sum() - np.trace(volume))
    return ShuffleOutcome(relation=shuffled, volume_matrix=volume, traffic=traffic)
