"""Track join: per-key minimal-traffic scheduling (Polychroniou et al., SIGMOD'14).

The CCF paper uses track-join as its flagship example of application-level
traffic minimization ("a very fine-grained way, which can search all
possible opportunities on reducing data movement").  This module
implements the decision core of track join over our distributed
relations: for every join key it compares three strategies and picks the
cheapest in bytes moved:

* ``dest``   -- migrate both sides of the key to one node (the node
  already holding the most bytes of that key), the classical repartition;
* ``r_to_s`` -- replicate the key's *left* tuples to every node holding
  right tuples and join in place (good when the left side is tiny and the
  right side is spread);
* ``s_to_r`` -- the symmetric choice.

Track join is *traffic*-optimal per key over these options, so it lower
bounds Mini (which only considers ``dest`` at partition granularity).
Like Mini, it is network-oblivious: its flows still need a coflow
schedule, and its CCT can lose badly to CCF -- which is the paper's whole
argument, reproduced at key granularity by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.join.local import join_cardinality
from repro.join.relation import DistributedRelation
from repro.network.fabric import DEFAULT_PORT_RATE
from repro.network.flow import Coflow, coflow_from_matrix

__all__ = ["TrackJoin", "TrackJoinDecision", "TrackJoinResult"]


@dataclass(frozen=True)
class TrackJoinDecision:
    """Per-key routing decision.

    ``mode`` is one of ``dest`` / ``r_to_s`` / ``s_to_r``; ``dest_node``
    is only meaningful for ``dest``.
    """

    key: int
    mode: str
    dest_node: int
    cost_bytes: float


@dataclass
class TrackJoinResult:
    """Materialized outcome of a track-join schedule."""

    decisions: dict[int, TrackJoinDecision]
    volume_matrix: np.ndarray
    traffic: float
    cct: float
    cardinality: int


class TrackJoin:
    """Per-key minimal-traffic join scheduler.

    Parameters
    ----------
    left, right:
        The two relations (R and S in track-join terms).
    rate:
        Port rate used to convert the schedule's bottleneck into seconds.
    """

    def __init__(
        self,
        left: DistributedRelation,
        right: DistributedRelation,
        *,
        rate: float = DEFAULT_PORT_RATE,
    ) -> None:
        if left.n_nodes != right.n_nodes:
            raise ValueError("left and right must span the same nodes")
        self.left = left
        self.right = right
        self.rate = rate
        self._stats: dict[int, tuple[np.ndarray, np.ndarray]] | None = None

    @property
    def n_nodes(self) -> int:
        return self.left.n_nodes

    # -- the "tracking" phase -------------------------------------------
    def key_stats(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-key byte vectors: key -> (left_bytes_per_node, right_bytes_per_node).

        This is the information track join's tracking phase gathers.
        """
        if self._stats is not None:
            return self._stats
        n = self.n_nodes
        stats: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def accumulate(rel: DistributedRelation, side: int) -> None:
            for node, shard in enumerate(rel.shards):
                if shard.size == 0:
                    continue
                uniq, cnt = np.unique(shard, return_counts=True)
                for key, c in zip(uniq, cnt):
                    entry = stats.setdefault(
                        int(key), (np.zeros(n), np.zeros(n))
                    )
                    entry[side][node] += float(c) * rel.payload_bytes

        accumulate(self.left, 0)
        accumulate(self.right, 1)
        self._stats = stats
        return stats

    # -- the decision phase ---------------------------------------------
    def decide(self) -> dict[int, TrackJoinDecision]:
        """Choose the cheapest strategy for every key."""
        decisions: dict[int, TrackJoinDecision] = {}
        for key, (r, s) in self.key_stats().items():
            total = r + s
            d = int(total.argmax())
            cost_dest = float(total.sum() - total[d])

            r_total, s_total = float(r.sum()), float(s.sum())
            s_holders = s > 0
            r_holders = r > 0
            # Keys missing one side never move: no join output anyway.
            if r_total == 0 or s_total == 0:
                decisions[key] = TrackJoinDecision(key, "dest", d, 0.0)
                continue
            cost_r_to_s = float((r_total - r[s_holders]).sum())
            cost_s_to_r = float((s_total - s[r_holders]).sum())

            best = min(
                (cost_dest, "dest"),
                (cost_r_to_s, "r_to_s"),
                (cost_s_to_r, "s_to_r"),
            )
            decisions[key] = TrackJoinDecision(key, best[1], d, best[0])
        return decisions

    # -- materialization ---------------------------------------------------
    def schedule(self) -> TrackJoinResult:
        """Produce flow volumes, traffic, optimal CCT and the join size."""
        n = self.n_nodes
        vol = np.zeros((n, n))
        decisions = self.decide()
        cardinality = 0
        for key, (r, s) in self.key_stats().items():
            dec = decisions[key]
            r_count = r / self.left.payload_bytes
            s_count = s / self.right.payload_bytes
            cardinality += int(round(r_count.sum() * s_count.sum()))
            if dec.mode == "dest":
                d = dec.dest_node
                for i in range(n):
                    if i != d:
                        vol[i, d] += r[i] + s[i]
            elif dec.mode == "r_to_s":
                holders = np.flatnonzero(s > 0)
                for j in holders:
                    for i in range(n):
                        if i != j and r[i] > 0:
                            vol[i, j] += r[i]
            else:  # s_to_r
                holders = np.flatnonzero(r > 0)
                for j in holders:
                    for i in range(n):
                        if i != j and s[i] > 0:
                            vol[i, j] += s[i]
        send = vol.sum(axis=1)
        recv = vol.sum(axis=0)
        bottleneck = float(max(send.max(initial=0.0), recv.max(initial=0.0)))
        return TrackJoinResult(
            decisions=decisions,
            volume_matrix=vol,
            traffic=float(vol.sum()),
            cct=bottleneck / self.rate,
            cardinality=cardinality,
        )

    def to_coflow(self, *, arrival_time: float = 0.0) -> Coflow:
        """The schedule's shuffle as a coflow."""
        return coflow_from_matrix(
            self.schedule().volume_matrix,
            arrival_time=arrival_time,
            name="track-join",
        )

    def expected_cardinality(self) -> int:
        """Ground truth |R ⋈ S| for verification."""
        return join_cardinality(self.left.all_keys(), self.right.all_keys())
