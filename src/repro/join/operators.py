"""Distributed operators: join, aggregation, duplicate elimination.

Each operator is a *ShuffleWorkload*: it derives the CCF co-optimization
inputs (chunk matrix, skew split) from real distributed relations, and can
*execute* a chosen plan end-to-end -- shuffle, local processing, result --
so correctness of every strategy is checkable against the centralized
answer.  The paper develops joins in detail and notes the techniques apply
"similarly ... to other distributed operators, such as aggregation and
duplicate elimination" (§I); the latter two implement that transfer,
including local pre-aggregation (the combiner trick) as their
skew-mitigation analogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan
from repro.core.skew import PartialDuplication, detect_skewed_keys
from repro.join.local import join_cardinality
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.shuffle import execute_shuffle
from repro.network.fabric import DEFAULT_PORT_RATE

__all__ = [
    "DistributedJoin",
    "DistributedAggregation",
    "DuplicateElimination",
    "JoinExecutionResult",
    "OperatorExecutionResult",
]


@dataclass
class JoinExecutionResult:
    """Outcome of running a join plan at the tuple level.

    Attributes
    ----------
    plan:
        The executed plan.
    cardinality:
        Total number of join-result tuples across nodes.
    per_node_cardinality:
        Result tuples produced on each node.
    realized_traffic:
        Bytes that actually crossed the network during the shuffle.
    realized_volume:
        Realized ``(n, n)`` volume matrix (both relations + broadcast).
    result:
        The materialized result relation (join keys with multiplicity,
        resident where they were produced) when the join was executed
        with ``materialize=True``; otherwise ``None``.
    """

    plan: ExecutionPlan
    cardinality: int
    per_node_cardinality: np.ndarray
    realized_traffic: float
    realized_volume: np.ndarray
    result: "DistributedRelation | None" = None


@dataclass
class OperatorExecutionResult:
    """Outcome of an aggregation / duplicate-elimination plan.

    ``groups`` maps each key to its aggregate (count for aggregation,
    1 for duplicate elimination -- i.e. the distinct-key set).
    """

    plan: ExecutionPlan
    groups: dict[int, int]
    realized_traffic: float
    realized_volume: np.ndarray


class DistributedJoin:
    """``left ⋈ right`` on a common integer key, CCF-schedulable.

    Parameters
    ----------
    left:
        The smaller (build/broadcast-eligible) relation, e.g. CUSTOMER.
    right:
        The larger (probe) relation whose skewed tuples stay local,
        e.g. ORDERS.
    partitioner:
        Hash partitioner; defaults to ``p = 15 * n`` as in the paper.
    rate:
        Port rate for derived shuffle models.
    skew_factor:
        Frequency multiple over the mean above which a right-relation key
        counts as skewed (partial-duplication detection).
    """

    def __init__(
        self,
        left: DistributedRelation,
        right: DistributedRelation,
        *,
        partitioner: HashPartitioner | None = None,
        rate: float = DEFAULT_PORT_RATE,
        skew_factor: float = 100.0,
        name: str = "join",
    ) -> None:
        if left.n_nodes != right.n_nodes:
            raise ValueError("left and right must span the same nodes")
        self.left = left
        self.right = right
        self.partitioner = partitioner or HashPartitioner(p=15 * left.n_nodes)
        self.rate = rate
        self.skew_factor = skew_factor
        self.name = name
        self._skewed_keys: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        return self.left.n_nodes

    def skewed_keys(self) -> np.ndarray:
        """Right-relation keys flagged as skewed (cached)."""
        if self._skewed_keys is None:
            self._skewed_keys = detect_skewed_keys(
                self.right.key_counts(), factor=self.skew_factor
            )
        return self._skewed_keys

    def chunk_matrix(self) -> np.ndarray:
        """Full ``h[i, k]`` over both relations, in bytes."""
        return self.partitioner.chunk_matrix(self.left, self.right)

    def shuffle_model(self, *, skew_handling: bool) -> ShuffleModel:
        """The co-optimization input for this join."""
        full = self.chunk_matrix()
        skewed = self.skewed_keys() if skew_handling else np.empty(0, np.int64)
        if skewed.size == 0:
            return ShuffleModel(h=full, rate=self.rate, name=self.name)
        h_local = self.partitioner.chunk_matrix(self.right.only_keys(skewed))
        h_bcast = self.partitioner.chunk_matrix(self.left.only_keys(skewed))
        return (
            PartialDuplication()
            .apply(
                full,
                h_skew_local=h_local,
                h_broadcast=h_bcast,
                rate=self.rate,
                name=self.name,
            )
            .model
        )

    def expected_cardinality(self) -> int:
        """Centralized ground-truth join size."""
        return join_cardinality(self.left.all_keys(), self.right.all_keys())

    def execute(
        self,
        plan: ExecutionPlan,
        *,
        skew_handling: bool | None = None,
        materialize: bool = False,
        result_payload_bytes: float | None = None,
    ) -> JoinExecutionResult:
        """Run the shuffle + local joins for a plan and verify co-location.

        ``skew_handling`` defaults to whether the plan's model carries
        initial broadcast flows (i.e. was built with partial duplication).
        With ``materialize=True`` the result keys (with multiplicity) are
        kept per node as a new :class:`DistributedRelation` whose tuple
        width defaults to the two input widths combined.
        """
        if skew_handling is None:
            skew_handling = bool(plan.model.v0.sum() > 0 or plan.model.local_bytes_pre > 0)
        dest = plan.dest
        n = self.n_nodes
        skewed = self.skewed_keys() if skew_handling else np.empty(0, np.int64)

        if skewed.size:
            right_rest = self.right.without_keys(skewed)
            right_skew = self.right.only_keys(skewed)
            left_out = execute_shuffle(
                self.left, self.partitioner, dest, broadcast_keys=skewed
            )
        else:
            right_rest = self.right
            right_skew = None
            left_out = execute_shuffle(self.left, self.partitioner, dest)
        right_out = execute_shuffle(right_rest, self.partitioner, dest)

        right_shards = list(right_out.relation.shards)
        if right_skew is not None:
            right_shards = [
                np.concatenate([right_shards[i], right_skew.shards[i]])
                for i in range(n)
            ]

        per_node = np.array(
            [
                join_cardinality(left_out.relation.shards[i], right_shards[i])
                for i in range(n)
            ],
            dtype=np.int64,
        )
        result_relation = None
        if materialize:
            from repro.join.local import local_hash_join

            shards = [
                local_hash_join(left_out.relation.shards[i], right_shards[i])
                for i in range(n)
            ]
            payload = (
                result_payload_bytes
                if result_payload_bytes is not None
                else self.left.payload_bytes + self.right.payload_bytes
            )
            result_relation = DistributedRelation(
                shards=shards, payload_bytes=payload, name=f"{self.name}-result"
            )
        volume = left_out.volume_matrix + right_out.volume_matrix
        traffic = float(volume.sum() - np.trace(volume))
        return JoinExecutionResult(
            plan=plan,
            cardinality=int(per_node.sum()),
            per_node_cardinality=per_node,
            realized_traffic=traffic,
            realized_volume=volume,
            result=result_relation,
        )


class DistributedAggregation:
    """Group-by-key count aggregation over one relation.

    The operator's CCF model routes each key partition to one node; with
    ``pre_aggregate=True`` every node first collapses its shard to
    (key, count) pairs -- the combiner optimization -- which shrinks the
    chunk matrix to one record per distinct key per node.
    """

    def __init__(
        self,
        relation: DistributedRelation,
        *,
        partitioner: HashPartitioner | None = None,
        rate: float = DEFAULT_PORT_RATE,
        pre_aggregate: bool = False,
        record_bytes: float | None = None,
        name: str = "aggregate",
    ) -> None:
        self.relation = relation
        self.partitioner = partitioner or HashPartitioner(p=15 * relation.n_nodes)
        self.rate = rate
        self.pre_aggregate = pre_aggregate
        self.record_bytes = (
            record_bytes if record_bytes is not None else relation.payload_bytes
        )
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self.relation.n_nodes

    def _effective_relation(
        self, pre_aggregate: bool | None = None
    ) -> DistributedRelation:
        """The relation actually shuffled (deduplicated when pre-aggregating)."""
        if pre_aggregate is None:
            pre_aggregate = self.pre_aggregate
        if not pre_aggregate:
            return self.relation
        shards = [np.unique(s) for s in self.relation.shards]
        return DistributedRelation(
            shards=shards, payload_bytes=self.record_bytes, name=self.relation.name
        )

    def shuffle_model(self, *, skew_handling: bool) -> ShuffleModel:
        """CCF input; ``skew_handling`` here means local pre-aggregation.

        Pre-aggregation plays the role partial duplication plays for
        joins: it removes the hot key's repetition from the network.
        """
        rel = self._effective_relation(skew_handling or self.pre_aggregate)
        h = self.partitioner.chunk_matrix(rel)
        return ShuffleModel(h=h, rate=self.rate, name=self.name)

    def expected_groups(self) -> dict[int, int]:
        """Centralized ground truth: key -> count."""
        return self.relation.key_counts()

    def execute(self, plan: ExecutionPlan) -> OperatorExecutionResult:
        """Shuffle (possibly pre-aggregated counts) and merge per node."""
        local_counts: list[dict[int, int]] = []
        if self.pre_aggregate:
            for s in self.relation.shards:
                if s.size:
                    uniq, cnt = np.unique(s, return_counts=True)
                    local_counts.append(
                        {int(k): int(c) for k, c in zip(uniq, cnt)}
                    )
                else:
                    local_counts.append({})

        rel = self._effective_relation() if self.pre_aggregate else self.relation
        out = execute_shuffle(rel, self.partitioner, plan.dest)

        groups: dict[int, int] = {}
        if self.pre_aggregate:
            # Shuffled records are (key, partial-count) pairs; the merge of
            # all partial counts is the same dict whatever the routing.
            for counts in local_counts:
                for k, c in counts.items():
                    groups[k] = groups.get(k, 0) + c
        else:
            for shard in out.relation.shards:
                if shard.size:
                    uniq, cnt = np.unique(shard, return_counts=True)
                    for k, c in zip(uniq, cnt):
                        groups[int(k)] = groups.get(int(k), 0) + int(c)
        traffic = float(out.volume_matrix.sum() - np.trace(out.volume_matrix))
        return OperatorExecutionResult(
            plan=plan,
            groups=groups,
            realized_traffic=traffic,
            realized_volume=out.volume_matrix,
        )


class DuplicateElimination:
    """DISTINCT over one relation: co-locate keys, keep one copy each.

    Local deduplication before the shuffle (always beneficial, always
    applied -- each node need send at most one copy of a key) is this
    operator's skew mitigation, so ``skew_handling`` toggles nothing
    beyond it.
    """

    def __init__(
        self,
        relation: DistributedRelation,
        *,
        partitioner: HashPartitioner | None = None,
        rate: float = DEFAULT_PORT_RATE,
        name: str = "distinct",
    ) -> None:
        self.relation = relation
        self.partitioner = partitioner or HashPartitioner(p=15 * relation.n_nodes)
        self.rate = rate
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self.relation.n_nodes

    def _dedup_relation(self) -> DistributedRelation:
        return DistributedRelation(
            shards=[np.unique(s) for s in self.relation.shards],
            payload_bytes=self.relation.payload_bytes,
            name=self.relation.name,
        )

    def shuffle_model(self, *, skew_handling: bool) -> ShuffleModel:
        """CCF input over the locally-deduplicated shards."""
        h = self.partitioner.chunk_matrix(self._dedup_relation())
        return ShuffleModel(h=h, rate=self.rate, name=self.name)

    def expected_distinct(self) -> int:
        """Centralized ground truth: number of distinct keys."""
        keys = self.relation.all_keys()
        return int(np.unique(keys).size) if keys.size else 0

    def execute(self, plan: ExecutionPlan) -> OperatorExecutionResult:
        """Shuffle deduplicated shards and finish dedup at the destination."""
        out = execute_shuffle(self._dedup_relation(), self.partitioner, plan.dest)
        groups: dict[int, int] = {}
        for shard in out.relation.shards:
            for k in np.unique(shard):
                groups[int(k)] = 1
        traffic = float(out.volume_matrix.sum() - np.trace(out.volume_matrix))
        return OperatorExecutionResult(
            plan=plan,
            groups=groups,
            realized_traffic=traffic,
            realized_volume=out.volume_matrix,
        )
