"""Per-key co-optimization: the track-join-granularity extension.

The paper's model assigns whole hash *partitions* to nodes; track-join
(Polychroniou et al., SIGMOD'14) works per *key*.  Footnote 6 of the
paper: "Our approach can be also extended to that level".  This module
performs that extension for tuple-level workloads: the heaviest
partitions are *split* into per-key columns, producing a refined chunk
matrix on which Algorithm 1 (or any other solver) runs unchanged -- a
strictly more expressive assignment space, at the cost of more columns.

Splitting everything is wasteful (p explodes to the number of keys);
splitting nothing is the paper's model.  ``refine_model`` exposes the
dial: split the top ``split_fraction`` of partitions by size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ShuffleModel
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation

__all__ = ["KeyLevelRefinement", "refine_model"]


@dataclass
class KeyLevelRefinement:
    """A refined shuffle model plus the bookkeeping to map back.

    Attributes
    ----------
    model:
        The refined :class:`ShuffleModel`; its columns are a mix of whole
        partitions and individual keys.
    column_partition:
        For every column of the refined model, the original partition id.
    column_key:
        The key a column represents, or -1 for unsplit partition columns.
    split_partitions:
        The partition ids that were exploded into keys.
    """

    model: ShuffleModel
    column_partition: np.ndarray
    column_key: np.ndarray
    split_partitions: np.ndarray

    @property
    def n_columns(self) -> int:
        return int(self.column_partition.shape[0])

    def key_destinations(self, dest: np.ndarray) -> dict[int, int]:
        """Map a refined assignment back to per-key destinations.

        Returns ``{key: node}`` for split keys only; unsplit partitions
        keep their partition-level destination (look those up through
        :attr:`column_partition`).
        """
        dest = np.asarray(dest)
        if dest.shape != (self.n_columns,):
            raise ValueError(
                f"assignment must have shape ({self.n_columns},)"
            )
        out: dict[int, int] = {}
        for col in np.flatnonzero(self.column_key >= 0):
            out[int(self.column_key[col])] = int(dest[col])
        return out


def refine_model(
    relations: list[DistributedRelation],
    partitioner: HashPartitioner,
    *,
    split_fraction: float = 0.05,
    min_split: int = 1,
    rate: float | None = None,
    name: str = "key-refined",
) -> KeyLevelRefinement:
    """Build a chunk matrix with the heaviest partitions split per key.

    Parameters
    ----------
    relations:
        The relations participating in the shuffle (both join sides).
    partitioner:
        The base hash partitioner.
    split_fraction:
        Fraction of partitions (heaviest first) to explode into per-key
        columns; clamped to at least ``min_split`` partitions when any
        partition is non-empty.
    min_split:
        Minimum number of partitions to split.
    """
    if not relations:
        raise ValueError("need at least one relation")
    if not 0 <= split_fraction <= 1:
        raise ValueError("split_fraction must be in [0, 1]")
    n = relations[0].n_nodes
    for rel in relations:
        if rel.n_nodes != n:
            raise ValueError("relations span different node counts")
    p = partitioner.p

    h = np.zeros((n, p))
    for rel in relations:
        h += partitioner.chunk_tuples(rel) * rel.payload_bytes

    sizes = h.sum(axis=0)
    n_split = max(int(round(split_fraction * p)), min_split if sizes.any() else 0)
    n_split = min(n_split, int((sizes > 0).sum()))
    split = np.sort(np.argsort(-sizes, kind="stable")[:n_split])
    split_set = set(int(s) for s in split)

    # Per-key byte counts inside split partitions, per node.
    key_bytes: dict[int, np.ndarray] = {}
    for rel in relations:
        for node, shard in enumerate(rel.shards):
            if shard.size == 0:
                continue
            parts = partitioner.partition_of(shard)
            mask = np.isin(parts, split)
            for key in shard[mask]:
                arr = key_bytes.setdefault(int(key), np.zeros(n))
                arr[node] += rel.payload_bytes

    all_keys = np.array(sorted(key_bytes), dtype=np.int64)
    key_parts = (
        partitioner.partition_of(all_keys) if all_keys.size else all_keys
    )
    keys_of_partition: dict[int, list[int]] = {}
    for key, part in zip(all_keys, key_parts):
        keys_of_partition.setdefault(int(part), []).append(int(key))

    columns: list[np.ndarray] = []
    col_part: list[int] = []
    col_key: list[int] = []
    for k in range(p):
        if k in split_set:
            for key in keys_of_partition.get(k, []):
                columns.append(key_bytes[key])
                col_part.append(k)
                col_key.append(key)
        else:
            columns.append(h[:, k])
            col_part.append(k)
            col_key.append(-1)

    refined = (
        np.stack(columns, axis=1) if columns else np.zeros((n, 0))
    )
    kwargs = {} if rate is None else {"rate": rate}
    model = ShuffleModel(h=refined, name=name, **kwargs)
    return KeyLevelRefinement(
        model=model,
        column_partition=np.array(col_part, dtype=np.int64),
        column_key=np.array(col_key, dtype=np.int64),
        split_partitions=split.astype(np.int64),
    )
