"""Distributed (left) outer joins and semi-join reduction.

The CCF paper's reference list leans on its authors' outer-join work
(refs [16], [20]: skew handling and small-large outer joins in the
cloud); this module brings those operators into the framework:

* :class:`DistributedOuterJoin` -- ``left LEFT OUTER JOIN right``:
  matching rows behave like the inner join, and every unmatched left row
  survives with a NULL right side.  The shuffle (and hence the CCF
  model) is identical to the inner join's -- outer semantics are purely a
  local-processing concern once keys are co-located.
* :func:`semijoin_reduction` -- the classical traffic reducer: ship only
  the *key set* of one side first, filter the other side down to rows
  that can possibly match, and only then run the real shuffle.  For
  selective joins this trades a small key-broadcast for a large cut of
  the data shuffle, exactly the "reduce the volume of transferred data"
  family the paper cites (§I, §V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.join.operators import DistributedJoin
from repro.join.relation import DistributedRelation

__all__ = [
    "DistributedOuterJoin",
    "OuterJoinResult",
    "SemiJoinReduction",
    "semijoin_reduction",
]


@dataclass
class OuterJoinResult:
    """Outcome of a left outer join execution.

    ``cardinality`` counts inner matches plus one row per unmatched left
    tuple (the NULL-padded rows).
    """

    plan: ExecutionPlan
    cardinality: int
    matched: int
    unmatched_left: int
    realized_traffic: float


class DistributedOuterJoin(DistributedJoin):
    """``left LEFT OUTER JOIN right`` on the common key.

    Inherits the inner join's shuffle model and skew handling wholesale:
    the network problem is the same; only the local join keeps unmatched
    left rows.
    """

    def expected_cardinality(self) -> int:
        """Centralized ground truth including NULL-padded rows."""
        left_keys = self.left.all_keys()
        right_keys = self.right.all_keys()
        inner = super().expected_cardinality()
        matched_left = int(np.isin(left_keys, right_keys).sum())
        return inner + (left_keys.size - matched_left)

    def execute_outer(
        self, plan: ExecutionPlan, *, skew_handling: bool | None = None
    ) -> OuterJoinResult:
        """Run the shuffle, then the outer-aware local joins.

        Correctness argument for the broadcast (skew) path: a left tuple
        is replicated to every node, so counting its NULL row naively
        would multiply it.  We therefore count unmatched left rows
        globally: a left key is unmatched iff it matches nothing
        anywhere, which co-location makes checkable per key.
        """
        inner = self.execute(plan, skew_handling=skew_handling)

        # Unmatched left rows, computed from global key multiset algebra
        # (exact, and independent of where replicas landed).
        left_keys = self.left.all_keys()
        right_keys = self.right.all_keys()
        matched_mask = np.isin(left_keys, right_keys)
        unmatched = int(left_keys.size - matched_mask.sum())

        return OuterJoinResult(
            plan=plan,
            cardinality=inner.cardinality + unmatched,
            matched=inner.cardinality,
            unmatched_left=unmatched,
            realized_traffic=inner.realized_traffic,
        )


@dataclass
class SemiJoinReduction:
    """Outcome of a semi-join pre-filter.

    Attributes
    ----------
    reduced:
        The filtered big relation (only rows whose key appears in the
        small side's key set).
    key_broadcast_bytes:
        Cost of shipping the key set to every node,
        ``(n - 1) * |distinct keys| * key_bytes``.
    bytes_saved:
        Shuffle bytes that no longer need to move (upper bound: the
        filtered-out rows' bytes).
    """

    reduced: DistributedRelation
    key_broadcast_bytes: float
    bytes_saved: float

    @property
    def worthwhile(self) -> bool:
        """Did the filter save more than the key broadcast cost?"""
        return self.bytes_saved > self.key_broadcast_bytes


def semijoin_reduction(
    small: DistributedRelation,
    big: DistributedRelation,
    *,
    key_bytes: float = 8.0,
) -> SemiJoinReduction:
    """Filter ``big`` down to keys present in ``small``.

    Models the classical Bloom-filter/semi-join reducer with an exact key
    set (a Bloom filter would shrink ``key_broadcast_bytes`` further at
    the price of false positives).
    """
    if small.n_nodes != big.n_nodes:
        raise ValueError("relations must span the same nodes")
    if key_bytes <= 0:
        raise ValueError("key_bytes must be positive")
    keys = np.unique(small.all_keys())
    reduced = big.only_keys(keys)
    dropped = big.total_tuples - reduced.total_tuples
    return SemiJoinReduction(
        reduced=reduced,
        key_broadcast_bytes=float(
            (small.n_nodes - 1) * keys.size * key_bytes
        ),
        bytes_saved=float(dropped * big.payload_bytes),
    )
