"""Local join processing (the post-shuffle phase).

After redistribution every join key is co-located, and each node runs a
local hash join.  The paper scopes this phase out ("its cost does not
contain any inter-machine communication", §II-A) but a reproduction needs
it to *verify correctness*: the distributed join must produce exactly the
cardinality of the centralized join, for every strategy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["local_hash_join", "join_cardinality"]


def local_hash_join(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Join-key multiset intersection: result keys with multiplicity.

    Returns the join keys of ``left ⋈ right`` (each key repeated
    ``count_left * count_right`` times), sorted.  Sort-merge on unique
    keys keeps this vectorized.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if left.size == 0 or right.size == 0:
        return np.empty(0, dtype=np.int64)
    lk, lc = np.unique(left, return_counts=True)
    rk, rc = np.unique(right, return_counts=True)
    common, li, ri = np.intersect1d(lk, rk, assume_unique=True, return_indices=True)
    mult = lc[li] * rc[ri]
    return np.repeat(common, mult)


def join_cardinality(left: np.ndarray, right: np.ndarray) -> int:
    """Number of result tuples of ``left ⋈ right`` without materializing."""
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if left.size == 0 or right.size == 0:
        return 0
    lk, lc = np.unique(left, return_counts=True)
    rk, rc = np.unique(right, return_counts=True)
    common, li, ri = np.intersect1d(lk, rk, assume_unique=True, return_indices=True)
    return int((lc[li].astype(np.int64) * rc[ri].astype(np.int64)).sum())
