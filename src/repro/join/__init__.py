"""Distributed-operator substrate: relations, partitioning, shuffle, joins.

Implements the data-processing layer under CCF's schedule/control layer
(paper Fig. 3): distributed relations sharded over nodes, hash
partitioning into the chunk matrix ``h[i, k]``, shuffle execution for a
chosen assignment, local hash joins, and the distributed operators the
paper targets (join, aggregation, duplicate elimination).
"""

from repro.join.broadcast import BroadcastJoin
from repro.join.local import join_cardinality, local_hash_join
from repro.join.outer import DistributedOuterJoin, semijoin_reduction
from repro.join.operators import (
    DistributedAggregation,
    DistributedJoin,
    DuplicateElimination,
)
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.shuffle import ShuffleOutcome, execute_shuffle

__all__ = [
    "BroadcastJoin",
    "DistributedAggregation",
    "DistributedJoin",
    "DistributedOuterJoin",
    "DistributedRelation",
    "DuplicateElimination",
    "HashPartitioner",
    "ShuffleOutcome",
    "execute_shuffle",
    "join_cardinality",
    "local_hash_join",
    "semijoin_reduction",
]
