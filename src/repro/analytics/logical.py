"""Logical query plans over distributed relations.

A minimal relational algebra sufficient for the paper's workload class
(key-based analytics): scans, key filters, equi-joins on the common key,
group-by-key aggregation and duplicate elimination.  Logical nodes carry
no data -- :mod:`repro.analytics.compile` binds them to a catalog,
estimates cardinalities, orders joins, and lowers each network-crossing
operator to a CCF-schedulable stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["LogicalPlan", "Scan", "Filter", "EquiJoin", "GroupByKey", "Distinct"]


@dataclass(frozen=True)
class LogicalPlan:
    """Base class for logical operators (immutable tree nodes)."""

    def children(self) -> tuple["LogicalPlan", ...]:
        """Child nodes, left to right."""
        return ()

    def describe(self, indent: int = 0) -> str:
        """Pretty tree rendering."""
        pad = "  " * indent
        own = f"{pad}{self!r}"
        return "\n".join(
            [own, *(c.describe(indent + 1) for c in self.children())]
        )


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Read a named base relation from the catalog."""

    table: str

    def __repr__(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Keep tuples whose key satisfies a vectorized predicate.

    Parameters
    ----------
    child:
        Input plan.
    predicate:
        Maps an int64 key array to a boolean mask.  Applied locally on
        every node -- filters never cross the network.
    selectivity:
        Estimated fraction of tuples kept, used for costing; the executor
        measures the real value.
    """

    child: LogicalPlan
    predicate: Callable[[np.ndarray], np.ndarray] = field(compare=False)
    selectivity: float = 0.5
    label: str = "pred"

    def __post_init__(self) -> None:
        if not 0 <= self.selectivity <= 1:
            raise ValueError("selectivity must be in [0, 1]")

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Filter({self.label}, sel={self.selectivity})"


@dataclass(frozen=True)
class EquiJoin(LogicalPlan):
    """Equi-join of two inputs on the common key."""

    left: LogicalPlan
    right: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "EquiJoin"


@dataclass(frozen=True)
class GroupByKey(LogicalPlan):
    """Count tuples per key (the aggregation operator of the paper)."""

    child: LogicalPlan
    pre_aggregate: bool = True

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"GroupByKey(pre_aggregate={self.pre_aggregate})"


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Duplicate elimination on the key."""

    child: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return "Distinct"
