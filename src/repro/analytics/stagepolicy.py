"""Job-level fault tolerance: stage policies for DAG execution.

PR 1 made single coflows survive port failures at *flow* granularity.
Real engines recover at **stage** granularity: a lost shuffle partition
fails its stage attempt, the stage is re-executed (on the same placement
once the fabric heals, or on a replanned placement over survivors), and
descendant stages consume the output from wherever it actually landed
(lineage re-execution).  A :class:`StagePolicy` is the pluggable decision
point: each time a stage's coflow attempt is aborted by a fabric failure,
the executor describes the failure as a :class:`StageFailure` and the
policy answers with one of three decisions:

``fail-job``
    Give up on the whole job.  Descendant stages are never launched and
    the job is reported failed (never raised) with structured records.
``retry-stage``
    Re-execute the stage with the *same* placement once every failed
    port it needs has a scheduled repair; attempts are bounded by
    ``max_stage_retries``.
``replan-stage``
    Re-run the co-optimization for the stage over the surviving nodes
    (Algorithm 1's step rule restricted through
    :class:`~repro.core.incremental.IncrementalPlanner`'s allowed mask,
    seeded with the surviving placements) and resubmit immediately;
    descendants are later planned against the new partition placement.
    Falls back to retry semantics when the stage's *input* data is
    unreadable (a source node died -- lineage data gone until repair).

Every decision is recorded as a :class:`StageFailureEvent` and surfaced
on ``DAGResult`` / ``JobResult`` so experiments can report job-completion
-time inflation, retry counts and replans, not just CCTs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "StageFailure",
    "StageFailureEvent",
    "FailJob",
    "RetryStage",
    "ReplanStage",
    "StagePolicy",
    "FailJobPolicy",
    "RetryStagePolicy",
    "ReplanStagePolicy",
    "STAGE_POLICIES",
    "make_stage_policy",
]


@dataclass(frozen=True)
class StageFailure:
    """One failed stage attempt, as presented to a policy.

    Parameters
    ----------
    stage:
        Name of the stage whose coflow attempt was aborted.
    attempt:
        1-based number of the attempt that just failed.
    time:
        Simulation time of the abort.
    revive_time:
        Earliest time at which every currently-dead port the stage's
        *current placement* needs has a scheduled repair (``math.inf``
        when some port never recovers) -- the soonest a same-placement
        retry can possibly succeed.
    replannable:
        True when a surviving placement exists: every node holding the
        stage's input bytes can still send, fixed (broadcast) flows keep
        their endpoints, and at least one node is fully alive to receive
        reassigned partitions.
    """

    stage: str
    attempt: int
    time: float
    revive_time: float
    replannable: bool


@dataclass(frozen=True)
class StageFailureEvent:
    """Structured record of one stage-policy decision (or job failure)."""

    time: float
    stage: str
    attempt: int
    action: str  # "retry" | "replan" | "fail-job"
    detail: str = ""


# -- policy decisions ----------------------------------------------------
@dataclass(frozen=True)
class FailJob:
    """Abort the whole job; descendants are skipped, nothing raises."""

    reason: str = ""


@dataclass(frozen=True)
class RetryStage:
    """Resubmit the same placement at ``resume_at`` (absolute time)."""

    resume_at: float


@dataclass(frozen=True)
class ReplanStage:
    """Replan the stage over surviving nodes and resubmit immediately."""


StageDecision = FailJob | RetryStage | ReplanStage


class StagePolicy(ABC):
    """Strategy deciding what happens when a stage attempt fails."""

    #: Registry name; overridden by subclasses.
    name: str = "base"

    @abstractmethod
    def decide(self, failure: StageFailure) -> StageDecision:
        """Return the decision for one failed stage attempt."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FailJobPolicy(StagePolicy):
    """Fail fast: any stage failure kills the job (reported, not raised)."""

    name = "fail-job"

    def decide(self, failure: StageFailure) -> StageDecision:
        return FailJob(
            reason=f"stage {failure.stage!r} lost to a fabric failure"
        )


class RetryStagePolicy(StagePolicy):
    """Re-execute the failed stage in place once its ports are repaired.

    Parameters
    ----------
    max_stage_retries:
        Re-executions allowed per stage before the job is failed.
    """

    name = "retry-stage"

    def __init__(self, *, max_stage_retries: int = 3) -> None:
        if max_stage_retries < 0:
            raise ValueError("max_stage_retries must be >= 0")
        self.max_stage_retries = max_stage_retries

    def decide(self, failure: StageFailure) -> StageDecision:
        if failure.attempt > self.max_stage_retries:
            return FailJob(
                reason=f"stage {failure.stage!r} exhausted "
                f"{self.max_stage_retries} retries"
            )
        if not math.isfinite(failure.revive_time):
            return FailJob(
                reason=f"stage {failure.stage!r} needs a port that never "
                "recovers"
            )
        return RetryStage(resume_at=max(failure.revive_time, failure.time))


class ReplanStagePolicy(RetryStagePolicy):
    """Replan the stage over survivors; retry in place when inputs died.

    The stage's lost placements are reassigned through Algorithm 1's
    step rule restricted to fully-alive nodes; when the stage's *input*
    bytes live on a dead node (nothing to replan -- the data itself is
    gone until repair) the policy degrades to the inherited retry
    semantics, and to ``fail-job`` when no repair is ever scheduled.
    """

    name = "replan-stage"

    def decide(self, failure: StageFailure) -> StageDecision:
        if failure.attempt > self.max_stage_retries:
            return FailJob(
                reason=f"stage {failure.stage!r} exhausted "
                f"{self.max_stage_retries} retries"
            )
        if failure.replannable:
            return ReplanStage()
        return super().decide(failure)


#: Registry of policy names (and their short CLI aliases).
STAGE_POLICIES: dict[str, type[StagePolicy]] = {
    "fail-job": FailJobPolicy,
    "retry-stage": RetryStagePolicy,
    "replan-stage": ReplanStagePolicy,
}

_ALIASES = {"fail": "fail-job", "retry": "retry-stage", "replan": "replan-stage"}


def make_stage_policy(name: "str | StagePolicy", **kwargs) -> StagePolicy:
    """Instantiate a stage policy by registry name (aliases accepted).

    ``retry`` and ``replan`` are accepted as short forms of
    ``retry-stage`` / ``replan-stage``; an already-constructed policy is
    passed through (kwargs must then be empty).
    """
    if isinstance(name, StagePolicy):
        if kwargs:
            raise ValueError(
                "cannot apply keyword options to an instantiated policy"
            )
        return name
    canonical = _ALIASES.get(name, name)
    try:
        cls = STAGE_POLICIES[canonical]
    except KeyError:
        raise ValueError(
            f"unknown stage policy {name!r}; choose from "
            f"{sorted(STAGE_POLICIES)} (short forms: "
            f"{sorted(_ALIASES)})"
        ) from None
    return cls(**kwargs)
