"""Catalog: named base relations plus the statistics the optimizer uses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.join.relation import DistributedRelation

__all__ = ["Catalog", "TableStats"]


@dataclass(frozen=True)
class TableStats:
    """Optimizer statistics for one relation.

    Computed exactly at registration time (the relations here are small
    enough; a production system would sample).
    """

    rows: int
    distinct_keys: int
    bytes: float

    @property
    def rows_per_key(self) -> float:
        """Average multiplicity of a key."""
        if self.distinct_keys == 0:
            return 0.0
        return self.rows / self.distinct_keys


class Catalog:
    """Mapping table-name -> (relation, stats).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.analytics.catalog import Catalog
    >>> from repro.join.relation import DistributedRelation
    >>> cat = Catalog()
    >>> rel = DistributedRelation(shards=[np.array([1, 1, 2])])
    >>> cat.register("t", rel)
    >>> cat.stats("t").distinct_keys
    2
    """

    def __init__(self) -> None:
        self._tables: dict[str, DistributedRelation] = {}
        self._stats: dict[str, TableStats] = {}
        self._n_nodes: int | None = None

    def register(self, name: str, relation: DistributedRelation) -> None:
        """Add a base relation; all tables must span the same nodes."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already registered")
        if self._n_nodes is None:
            self._n_nodes = relation.n_nodes
        elif relation.n_nodes != self._n_nodes:
            raise ValueError(
                f"table {name!r} spans {relation.n_nodes} nodes, catalog "
                f"has {self._n_nodes}"
            )
        keys = relation.all_keys()
        self._tables[name] = relation
        self._stats[name] = TableStats(
            rows=relation.total_tuples,
            distinct_keys=int(np.unique(keys).size) if keys.size else 0,
            bytes=relation.total_bytes,
        )

    @property
    def n_nodes(self) -> int:
        if self._n_nodes is None:
            raise ValueError("catalog is empty")
        return self._n_nodes

    def tables(self) -> list[str]:
        """Registered table names."""
        return list(self._tables)

    def relation(self, name: str) -> DistributedRelation:
        """Look up a relation by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise ValueError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def stats(self, name: str) -> TableStats:
        """Look up statistics by name."""
        self.relation(name)  # raise uniformly on unknown tables
        return self._stats[name]
