"""Query compilation: estimate, optimize, lower, execute.

The pipeline mirrors a classical distributed query engine, scoped to the
paper's workload class:

1. **Estimate** -- bottom-up cardinality estimation using the textbook
   equi-join formula ``|L ⋈ R| = |L|·|R| / max(d_L, d_R)``.
2. **Optimize** -- flatten chains of equi-joins and rebuild them
   left-deep with the smallest estimated inputs first (the classic
   greedy join order), so intermediate shuffles move less data.
3. **Lower & execute** -- every network-crossing operator becomes a CCF
   stage (join -> DistributedJoin, group-by -> DistributedAggregation,
   distinct -> DuplicateElimination); filters run node-locally.  Each
   stage is planned with the chosen strategy and physically executed at
   the tuple level, so results are verifiable against a centralized run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.catalog import Catalog, TableStats
from repro.analytics.logical import (
    Distinct,
    EquiJoin,
    Filter,
    GroupByKey,
    LogicalPlan,
    Scan,
)
from repro.core.framework import CCF
from repro.core.plan import ExecutionPlan
from repro.join.operators import (
    DistributedAggregation,
    DistributedJoin,
    DuplicateElimination,
)
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation

__all__ = ["QueryExecutor", "QueryResult", "QueryStage", "estimate", "optimize_joins"]


# ---------------------------------------------------------------------------
# 1. Estimation
# ---------------------------------------------------------------------------
def estimate(plan: LogicalPlan, catalog: Catalog) -> TableStats:
    """Estimated output statistics of a logical plan."""
    if isinstance(plan, Scan):
        return catalog.stats(plan.table)
    if isinstance(plan, Filter):
        child = estimate(plan.child, catalog)
        return TableStats(
            rows=int(round(child.rows * plan.selectivity)),
            distinct_keys=max(
                1 if child.distinct_keys else 0,
                int(round(child.distinct_keys * plan.selectivity)),
            ),
            bytes=child.bytes * plan.selectivity,
        )
    if isinstance(plan, EquiJoin):
        left = estimate(plan.left, catalog)
        right = estimate(plan.right, catalog)
        denom = max(left.distinct_keys, right.distinct_keys, 1)
        rows = int(round(left.rows * right.rows / denom))
        width = 0.0
        if left.rows:
            width += left.bytes / left.rows
        if right.rows:
            width += right.bytes / right.rows
        return TableStats(
            rows=rows,
            distinct_keys=min(left.distinct_keys, right.distinct_keys),
            bytes=rows * width,
        )
    if isinstance(plan, (GroupByKey, Distinct)):
        child = estimate(plan.child, catalog)
        width = child.bytes / child.rows if child.rows else 0.0
        return TableStats(
            rows=child.distinct_keys,
            distinct_keys=child.distinct_keys,
            bytes=child.distinct_keys * width,
        )
    raise TypeError(f"unknown logical node {type(plan).__name__}")


# ---------------------------------------------------------------------------
# 2. Join ordering
# ---------------------------------------------------------------------------
def _flatten_joins(plan: LogicalPlan) -> list[LogicalPlan] | None:
    """Inputs of a pure equi-join subtree, or None if not a join node."""
    if not isinstance(plan, EquiJoin):
        return None
    inputs: list[LogicalPlan] = []
    for child in (plan.left, plan.right):
        sub = _flatten_joins(child)
        if sub is None:
            inputs.append(child)
        else:
            inputs.extend(sub)
    return inputs


def optimize_joins(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """Greedy left-deep join ordering by estimated input cardinality.

    Non-join operators are preserved; optimization recurses below them.
    All joins here are on the single common key, so any order is valid.
    """
    inputs = _flatten_joins(plan)
    if inputs is not None:
        optimized = [optimize_joins(i, catalog) for i in inputs]
        optimized.sort(key=lambda node: estimate(node, catalog).rows)
        tree: LogicalPlan = optimized[0]
        for nxt in optimized[1:]:
            tree = EquiJoin(left=tree, right=nxt)
        return tree
    if isinstance(plan, Filter):
        return Filter(
            child=optimize_joins(plan.child, catalog),
            predicate=plan.predicate,
            selectivity=plan.selectivity,
            label=plan.label,
        )
    if isinstance(plan, GroupByKey):
        return GroupByKey(
            child=optimize_joins(plan.child, catalog),
            pre_aggregate=plan.pre_aggregate,
        )
    if isinstance(plan, Distinct):
        return Distinct(child=optimize_joins(plan.child, catalog))
    return plan


# ---------------------------------------------------------------------------
# 3. Execution
# ---------------------------------------------------------------------------
@dataclass
class QueryStage:
    """One network-crossing stage of an executed query."""

    name: str
    plan: ExecutionPlan
    realized_traffic: float

    @property
    def communication_seconds(self) -> float:
        return self.plan.cct


@dataclass
class QueryResult:
    """Executed query: result data plus per-stage accounting."""

    relation: DistributedRelation | None
    groups: dict[int, int] | None
    stages: list[QueryStage] = field(default_factory=list)
    estimated_rows: int = 0

    @property
    def total_communication_seconds(self) -> float:
        return float(sum(s.communication_seconds for s in self.stages))

    @property
    def total_traffic(self) -> float:
        return float(sum(s.realized_traffic for s in self.stages))

    @property
    def rows(self) -> int:
        """Actual output rows."""
        if self.groups is not None:
            return len(self.groups)
        if self.relation is not None:
            return self.relation.total_tuples
        return 0


class QueryExecutor:
    """Compile and run logical plans against a catalog.

    Parameters
    ----------
    catalog:
        Base relations + statistics.
    ccf:
        Framework configuration used for every stage.
    partitions_per_node:
        ``p = partitions_per_node * n`` for each stage (paper default 15).
    skew_factor:
        Skew-detection threshold forwarded to join stages.
    optimize:
        Apply greedy join ordering before execution.
    enable_broadcast:
        Consider a broadcast join for every join stage: the executor
        plans both the repartition shuffle (under the requested strategy)
        and the broadcast of the smaller side, and runs whichever has the
        lower bandwidth-optimal CCT -- the classical cost-based physical
        join choice.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        ccf: CCF | None = None,
        partitions_per_node: int = 15,
        skew_factor: float = 100.0,
        optimize: bool = True,
        enable_broadcast: bool = True,
    ) -> None:
        self.catalog = catalog
        self.ccf = ccf or CCF()
        self.partitions_per_node = partitions_per_node
        self.skew_factor = skew_factor
        self.optimize = optimize
        self.enable_broadcast = enable_broadcast

    def _partitioner(self) -> HashPartitioner:
        return HashPartitioner(p=self.partitions_per_node * self.catalog.n_nodes)

    def execute(self, plan: LogicalPlan, *, strategy: str = "ccf") -> QueryResult:
        """Run a logical plan end to end under one CCF strategy."""
        est = estimate(plan, self.catalog)
        if self.optimize:
            plan = optimize_joins(plan, self.catalog)
        stages: list[QueryStage] = []
        rel, groups = self._run(plan, strategy, stages)
        return QueryResult(
            relation=rel, groups=groups, stages=stages, estimated_rows=est.rows
        )

    # -- recursive evaluator -------------------------------------------
    def _run(
        self,
        plan: LogicalPlan,
        strategy: str,
        stages: list[QueryStage],
    ) -> tuple[DistributedRelation | None, dict[int, int] | None]:
        if isinstance(plan, Scan):
            return self.catalog.relation(plan.table), None

        if isinstance(plan, Filter):
            child, _ = self._run(plan.child, strategy, stages)
            assert child is not None, "filter over aggregated output"
            return child.select(plan.predicate), None

        if isinstance(plan, EquiJoin):
            left, _ = self._run(plan.left, strategy, stages)
            right, _ = self._run(plan.right, strategy, stages)
            assert left is not None and right is not None
            join = DistributedJoin(
                left,
                right,
                partitioner=self._partitioner(),
                skew_factor=self.skew_factor,
                name="join",
            )
            exec_plan = self.ccf.plan(join, strategy)

            if self.enable_broadcast:
                from repro.join.broadcast import BroadcastJoin

                small, big = (
                    (left, right)
                    if left.total_bytes <= right.total_bytes
                    else (right, left)
                )
                bcast = BroadcastJoin(small, big, rate=exec_plan.model.rate)
                if bcast.plan().cct < exec_plan.cct:
                    bres = bcast.execute(materialize=True)
                    stages.append(
                        QueryStage(
                            name="broadcast-join",
                            plan=bres.plan,
                            realized_traffic=bres.realized_traffic,
                        )
                    )
                    return bres.result, None

            result = join.execute(exec_plan, materialize=True)
            stages.append(
                QueryStage(
                    name="join",
                    plan=exec_plan,
                    realized_traffic=result.realized_traffic,
                )
            )
            return result.result, None

        if isinstance(plan, GroupByKey):
            child, _ = self._run(plan.child, strategy, stages)
            assert child is not None
            agg = DistributedAggregation(
                child,
                partitioner=self._partitioner(),
                pre_aggregate=plan.pre_aggregate,
                name="group-by",
            )
            exec_plan = self.ccf.plan(agg, strategy)
            result = agg.execute(exec_plan)
            stages.append(
                QueryStage(
                    name="group-by",
                    plan=exec_plan,
                    realized_traffic=result.realized_traffic,
                )
            )
            return None, result.groups

        if isinstance(plan, Distinct):
            child, _ = self._run(plan.child, strategy, stages)
            assert child is not None
            op = DuplicateElimination(
                child, partitioner=self._partitioner(), name="distinct"
            )
            exec_plan = self.ccf.plan(op, strategy)
            result = op.execute(exec_plan)
            stages.append(
                QueryStage(
                    name="distinct",
                    plan=exec_plan,
                    realized_traffic=result.realized_traffic,
                )
            )
            keys = np.fromiter(result.groups.keys(), dtype=np.int64,
                               count=len(result.groups))
            # Distinct keys co-located by the plan's own routing.
            part = self._partitioner()
            dest = exec_plan.dest[part.partition_of(keys)]
            out = DistributedRelation.from_placement(
                keys, dest, self.catalog.n_nodes,
                payload_bytes=child.payload_bytes, name="distinct-result",
            )
            return out, None

        raise TypeError(f"unknown logical node {type(plan).__name__}")
