"""Ready-made query templates over the TPC-H-like schema.

The paper's §VI names "more complex workloads (e.g., analytical queries)"
as future work; these templates exercise that direction end to end:
multi-stage plans combining filters, joins, aggregation and distinct over
the CUSTOMER/ORDERS relations our generator produces.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.catalog import Catalog
from repro.analytics.logical import (
    Distinct,
    EquiJoin,
    Filter,
    GroupByKey,
    LogicalPlan,
    Scan,
)
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations

__all__ = [
    "build_tpch_catalog",
    "orders_per_customer",
    "active_customer_orders",
    "distinct_buyers",
]


def build_tpch_catalog(config: TPCHConfig) -> Catalog:
    """Generate CUSTOMER/ORDERS and register them in a catalog."""
    customer, orders = generate_tpch_relations(config)
    catalog = Catalog()
    catalog.register("customer", customer)
    catalog.register("orders", orders)
    return catalog


def orders_per_customer() -> LogicalPlan:
    """``SELECT custkey, count(*) FROM customer JOIN orders GROUP BY custkey``.

    The paper's evaluation join, finished with the aggregation the paper
    says its techniques extend to.
    """
    return GroupByKey(
        child=EquiJoin(left=Scan("customer"), right=Scan("orders"))
    )


def active_customer_orders(*, key_modulus: int = 3) -> LogicalPlan:
    """A selective join: only customers whose key passes a filter.

    ``SELECT * FROM customer c JOIN orders o ON ... WHERE c.key % m = 0``
    -- models a dimension-table predicate pushed below the join.
    """
    if key_modulus < 1:
        raise ValueError("key_modulus must be >= 1")

    def pred(keys: np.ndarray) -> np.ndarray:
        return keys % key_modulus == 0

    return EquiJoin(
        left=Filter(
            child=Scan("customer"),
            predicate=pred,
            selectivity=1.0 / key_modulus,
            label=f"key % {key_modulus} == 0",
        ),
        right=Scan("orders"),
    )


def distinct_buyers() -> LogicalPlan:
    """``SELECT DISTINCT custkey FROM orders`` -- the duplicate-elimination
    operator over the fact table."""
    return Distinct(child=Scan("orders"))
