"""Analytical jobs: sequences of distributed operators under CCF.

The paper's architecture (Fig. 3) decomposes an analytical job into
sequential distributed operators, each co-optimized and handed to the
data-processing layer.  :class:`repro.analytics.query.AnalyticalJob`
models that pipeline; :class:`repro.analytics.executor.JobExecutor` plans
every stage with a chosen strategy and measures total communication time,
either in closed form or through the coflow simulator.
"""

from repro.analytics.catalog import Catalog, TableStats
from repro.analytics.compile import QueryExecutor, QueryResult, estimate, optimize_joins
from repro.analytics.dag import DAGExecutor, DAGResult, DAGStageResult, JobDAG
from repro.analytics.executor import JobExecutor, JobResult, StageResult
from repro.analytics.logical import Distinct, EquiJoin, Filter, GroupByKey, Scan
from repro.analytics.query import AnalyticalJob, Stage
from repro.analytics.stagepolicy import (
    STAGE_POLICIES,
    FailJobPolicy,
    ReplanStagePolicy,
    RetryStagePolicy,
    StageFailureEvent,
    StagePolicy,
    make_stage_policy,
)

__all__ = [
    "AnalyticalJob",
    "Catalog",
    "DAGExecutor",
    "DAGResult",
    "DAGStageResult",
    "JobDAG",
    "Distinct",
    "FailJobPolicy",
    "ReplanStagePolicy",
    "RetryStagePolicy",
    "STAGE_POLICIES",
    "StageFailureEvent",
    "StagePolicy",
    "make_stage_policy",
    "EquiJoin",
    "Filter",
    "GroupByKey",
    "JobExecutor",
    "JobResult",
    "QueryExecutor",
    "QueryResult",
    "Scan",
    "Stage",
    "StageResult",
    "TableStats",
    "estimate",
    "optimize_joins",
]
