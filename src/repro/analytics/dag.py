"""DAG-structured analytical jobs: stages with dependencies.

The paper's architecture (Fig. 3) runs a job's operators sequentially;
real engines run a *DAG* -- independent subtrees execute concurrently and
a stage starts the moment its parents finish.  This module executes such
DAGs on the coflow simulator: root stages' coflows are submitted at t=0
and each completion injects the newly-ready children into the running
simulation (the simulator's dynamic-injection hook).  Concurrent stages
naturally contend for the fabric under the chosen discipline.

Job-level fault tolerance
-------------------------
With a :class:`~repro.network.dynamics.FabricDynamics` failure schedule
and a :class:`~repro.analytics.stagepolicy.StagePolicy`, the executor
recovers at **stage** granularity, the way lineage-based engines do:

* A port failure strands a stage's flows; the simulator aborts that
  stage's coflow *attempt* and hands it back through the ``on_abort``
  hook.
* The stage policy decides: fail the whole job (reported, never raised),
  retry the same placement once the dead ports have a scheduled repair,
  or **replan** -- re-run Algorithm 1's step rule over the surviving
  nodes (:func:`repro.core.replan.replan_assignment`) and resubmit
  immediately.  Placements already on surviving nodes are kept: completed
  upstream work acts as a checkpoint, so only the failed stage (and, via
  lineage, its descendants' plans) is touched.
* Every replan is recorded as a row-stochastic move matrix
  (:func:`repro.core.replan.lineage_matrix`).  Descendant stages are
  planned *lazily*, at the moment their parents finish, with their chunk
  matrices pushed through the composed move matrices of their replanned
  ancestors (:func:`repro.core.replan.remap_chunks`) -- children are
  planned against where their inputs actually live, not where the
  original plan intended them to be.  Because a stage only starts after
  all its ancestors completed, lazy planning guarantees every ancestor
  replan is already known when a child is planned.
* Stages are re-executed from scratch on retry/replan (stage-granularity
  recovery re-runs the attempt's full shuffle); partial progress of a
  failed attempt is counted as ``bytes_lost`` in the failure log.

Plan-time estimate noise (:class:`repro.core.noise.NoisyEstimates`) can
be layered on: each stage's assignment is computed from a perturbed /
censored view of its chunk matrix (independently seeded per stage) while
execution charges the true bytes.
"""

from __future__ import annotations

import itertools
import math
import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.analytics.stagepolicy import (
    FailJob,
    ReplanStage,
    RetryStage,
    StageFailure,
    StageFailureEvent,
    StagePolicy,
    make_stage_policy,
)
from repro.core.framework import CCF, ShuffleWorkload
from repro.core.model import ShuffleModel
from repro.core.noise import NoisyEstimates
from repro.core.plan import ExecutionPlan
from repro.core.replan import lineage_matrix, remap_chunks, replan_assignment
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric
from repro.network.flow import Coflow
from repro.network.recovery import FailureRecord
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["JobDAG", "DAGExecutor", "DAGResult", "DAGStageResult"]


@dataclass
class _Stage:
    name: str
    workload: ShuffleWorkload | ShuffleModel
    parents: tuple[str, ...]
    dest: np.ndarray | None = None
    min_start: float = 0.0


class JobDAG:
    """A DAG of named stages over ShuffleWorkloads.

    Examples
    --------
    >>> dag = JobDAG("q")                                    # doctest: +SKIP
    >>> dag.add("scan_a", workload_a)                        # doctest: +SKIP
    >>> dag.add("scan_b", workload_b)                        # doctest: +SKIP
    >>> dag.add("join", workload_j, parents=("scan_a", "scan_b"))  # doctest: +SKIP
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._stages: dict[str, _Stage] = {}

    def add(
        self,
        name: str,
        workload: ShuffleWorkload | ShuffleModel,
        *,
        parents: tuple[str, ...] = (),
        dest: np.ndarray | None = None,
        min_start: float = 0.0,
    ) -> "JobDAG":
        """Add a stage; parents must already exist (enforces acyclicity).

        Parameters
        ----------
        dest:
            Optional fixed assignment: the stage executes this placement
            instead of one computed by the run's strategy (used e.g. by
            ``ccf simulate`` to re-execute trace coflows verbatim).  A
            fixed placement is still re-routed around dead nodes under a
            replan stage policy.
        min_start:
            Earliest submission time for the stage's coflow (its release
            is still gated on the parents finishing).
        """
        if name in self._stages:
            raise ValueError(f"stage {name!r} already exists")
        for p in parents:
            if p not in self._stages:
                raise ValueError(
                    f"stage {name!r} references unknown parent {p!r} "
                    "(add parents first; this also keeps the graph acyclic)"
                )
        if min_start < 0:
            raise ValueError("min_start must be >= 0")
        self._stages[name] = _Stage(
            name=name,
            workload=workload,
            parents=parents,
            dest=None if dest is None else np.asarray(dest),
            min_start=float(min_start),
        )
        return self

    @property
    def stage_names(self) -> list[str]:
        return list(self._stages)

    def stage(self, name: str) -> _Stage:
        return self._stages[name]

    def roots(self) -> list[str]:
        """Stages with no parents."""
        return [s.name for s in self._stages.values() if not s.parents]

    def children_of(self, name: str) -> list[str]:
        return [
            s.name for s in self._stages.values() if name in s.parents
        ]

    def ancestors(self, name: str) -> set[str]:
        """All transitive parents of ``name`` (excluding itself)."""
        out: set[str] = set()
        frontier = list(self._stages[name].parents)
        while frontier:
            p = frontier.pop()
            if p not in out:
                out.add(p)
                frontier.extend(self._stages[p].parents)
        return out

    def descendants(self, name: str) -> set[str]:
        """All transitive children of ``name`` (excluding itself)."""
        out: set[str] = set()
        frontier = self.children_of(name)
        while frontier:
            c = frontier.pop()
            if c not in out:
                out.add(c)
                frontier.extend(self.children_of(c))
        return out

    def __len__(self) -> int:
        return len(self._stages)


@dataclass
class DAGStageResult:
    """Per-stage outcome of a DAG run.

    ``status`` is ``"completed"``, ``"failed"`` (the stage policy gave up
    on it) or ``"skipped"`` (an ancestor failed / the job was failed
    before the stage became ready; such stages carry no plan).  For a
    failed stage ``completion_time`` records when the job gave up on it.
    """

    name: str
    plan: ExecutionPlan | None
    start_time: float
    completion_time: float
    status: str = "completed"
    attempts: int = 1
    failures: list[FailureRecord] = field(default_factory=list)
    events: list[StageFailureEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.completion_time - self.start_time

    @property
    def bytes_delivered(self) -> float:
        """Network bytes of the stage's *final, successful* shuffle."""
        if self.status != "completed" or self.plan is None:
            return 0.0
        return self.plan.traffic

    @property
    def bytes_lost(self) -> float:
        """Bytes thrown away by this stage's failed attempts."""
        return float(sum(r.bytes_lost for r in self.failures))

    @property
    def retries(self) -> int:
        """Extra executions beyond the first attempt."""
        return max(self.attempts - 1, 0)


@dataclass
class DAGResult:
    """Whole-DAG outcome, including the structured failure/retry log."""

    dag_name: str
    strategy: str
    scheduler: str
    stages: dict[str, DAGStageResult] = field(default_factory=dict)
    events: list[StageFailureEvent] = field(default_factory=list)
    fabric_failures: list[FailureRecord] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True when every stage finished successfully."""
        return all(s.status == "completed" for s in self.stages.values())

    @property
    def failed(self) -> bool:
        """True when the job gave up (some stage failed or was skipped)."""
        return not self.completed

    @property
    def failed_stages(self) -> list[str]:
        return [s.name for s in self.stages.values() if s.status == "failed"]

    @property
    def skipped_stages(self) -> list[str]:
        return [s.name for s in self.stages.values() if s.status == "skipped"]

    @property
    def makespan(self) -> float:
        """Completion time of the last successfully-finished stage."""
        done = [
            s.completion_time
            for s in self.stages.values()
            if s.status == "completed"
        ]
        return max(done) if done else 0.0

    @property
    def total_retries(self) -> int:
        """Stage re-executions across the job (retries + replans)."""
        return sum(s.retries for s in self.stages.values())

    @property
    def total_replans(self) -> int:
        """Stage attempts that were replanned onto surviving nodes."""
        return sum(
            1 for e in self.events if e.action == "replan"
        )

    @property
    def bytes_delivered(self) -> float:
        """Network bytes of every completed stage's final shuffle."""
        return float(sum(s.bytes_delivered for s in self.stages.values()))

    @property
    def bytes_lost(self) -> float:
        """Bytes lost to failed attempts across the whole job."""
        return float(
            sum(s.bytes_lost for s in self.stages.values())
        ) + float(sum(r.bytes_lost for r in self.fabric_failures))

    def failure_summary(self) -> dict[str, float]:
        """Aggregate robustness counters for experiment tables."""
        return {
            "completed": float(self.completed),
            "stage_retries": float(self.total_retries),
            "stage_replans": float(self.total_replans),
            "failed_stages": float(len(self.failed_stages)),
            "skipped_stages": float(len(self.skipped_stages)),
            "bytes_lost": self.bytes_lost,
        }

    def critical_path(self) -> list[str]:
        """Stage chain ending at the last completion, following the
        latest-finishing parent at each step (a lower-bound witness)."""
        if not self.stages:
            return []
        last = max(self.stages.values(), key=lambda s: s.completion_time)
        return [last.name]


def _alive_at(
    base: Fabric, dynamics: FabricDynamics | None, t: float
) -> tuple[np.ndarray, np.ndarray]:
    """(egress_alive, ingress_alive) masks at time ``t`` per the schedule."""
    egress = base.egress_rates.copy()
    ingress = base.ingress_rates.copy()
    if dynamics is not None:
        for e in dynamics.events:
            if e.time > t + 1e-12:
                break
            if e.egress is not None:
                egress[e.port] = e.egress
            if e.ingress is not None:
                ingress[e.port] = e.ingress
    return egress > 0, ingress > 0


def _next_recovery(
    dynamics: FabricDynamics, port: int, direction: str, t: float
) -> float | None:
    """Earliest event after ``t`` restoring ``direction`` of ``port``."""
    for e in dynamics.events:
        if e.time <= t + 1e-12 or e.port != port:
            continue
        rate = e.egress if direction == "egress" else e.ingress
        if rate is not None and rate > 0:
            return e.time
    return None


class DAGExecutor:
    """Plan and simulate a JobDAG end to end.

    Parameters
    ----------
    ccf:
        Framework used to plan every stage.
    scheduler:
        Simulator discipline name the concurrent coflows contend under.
    estimate_noise:
        Optional scheduler-view noise forwarded to the simulator (the
        *discipline* sees perturbed remaining volumes; distinct from the
        plan-time ``noise`` argument of :meth:`run`).
    """

    def __init__(
        self,
        ccf: CCF | None = None,
        *,
        scheduler: str = "sebf",
        estimate_noise: NoisyEstimates | None = None,
    ) -> None:
        self.ccf = ccf or CCF()
        self.scheduler_name = scheduler
        self.estimate_noise = estimate_noise

    def run(
        self,
        dag: JobDAG,
        *,
        strategy: str = "ccf",
        dynamics: FabricDynamics | None = None,
        stage_policy: StagePolicy | str | None = None,
        noise: NoisyEstimates | float | None = None,
        instrumentation=None,
    ) -> DAGResult:
        """Execute the DAG; returns per-stage timings and the makespan.

        Parameters
        ----------
        dynamics:
            Optional fabric-rate schedule.  When it contains failure
            events a ``stage_policy`` is required (and vice versa).
        stage_policy:
            Job-level fault-tolerance policy (name or instance): what to
            do when a fabric failure aborts a stage's coflow attempt.
        noise:
            Plan-time estimate degradation: each stage's assignment is
            computed on a perturbed model (seeded independently per
            stage) while execution uses the true volumes.  A bare float
            is shorthand for ``NoisyEstimates(sigma=...)``.
        instrumentation:
            Optional :class:`repro.obs.Instrumentation` sink.  It is
            forwarded to the simulator (coflow lifecycle + epoch
            samples) and additionally receives ``planner_phase`` events
            (one per stage (re)plan, with wall-clock solve time) and
            ``stage_attempt`` spans (submit -> complete/abort, per
            attempt).
        """
        if isinstance(noise, (int, float)):
            noise = NoisyEstimates(sigma=float(noise))
        if noise is not None and noise.is_null:
            noise = None
        policy: StagePolicy | None = None
        if stage_policy is not None:
            policy = make_stage_policy(stage_policy)
            if dynamics is None or not dynamics.has_failures:
                raise ValueError(
                    f"stage policy {policy.name!r} requires a failure "
                    "schedule: pass dynamics containing at least one "
                    "port-failure event (rate 0), or drop the policy"
                )
        elif dynamics is not None and dynamics.has_failures:
            raise ValueError(
                "dynamics schedule contains port failures; pass "
                "stage_policy='fail-job'|'retry-stage'|'replan-stage' "
                "so the executor knows how to recover"
            )

        result = DAGResult(dag.name, strategy, self.scheduler_name)
        if len(dag) == 0:
            return result
        failure_aware = policy is not None
        obs = (
            instrumentation
            if instrumentation is not None and instrumentation.enabled
            else None
        )

        models: dict[str, ShuffleModel] = {
            name: self.ccf.model_for(dag.stage(name).workload, strategy)
            for name in dag.stage_names
        }
        n_ports = max(m.n for m in models.values())
        rate = next(iter(models.values())).rate
        fabric = Fabric(n_ports=n_ports, rate=rate)

        stage_index = {name: i for i, name in enumerate(dag.stage_names)}
        ids = itertools.count()
        attempt_stage: dict[int, str] = {}  # coflow id -> stage name
        last_cid: dict[str, int] = {}
        attempts: dict[str, int] = {name: 0 for name in dag.stage_names}
        current_plan: dict[str, ExecutionPlan] = {}
        started: dict[str, float] = {}
        finished: set[str] = set()
        failed_at: dict[str, float] = {}
        job_failed = False
        events: list[StageFailureEvent] = []
        # Chronological (stage, move-matrix) records of every replan.
        lineage: list[tuple[str, np.ndarray]] = []

        def effective_model(name: str) -> ShuffleModel:
            """The stage's model with inputs moved to their actual homes."""
            base = models[name]
            anc = dag.ancestors(name)
            moves = [m for s, m in lineage if s in anc]
            if not moves:
                return base
            h = base.h
            for m in moves:
                h = remap_chunks(h, m)
            return ShuffleModel(
                h=h,
                v0=base.v0,
                rate=base.rate,
                local_bytes_pre=base.local_bytes_pre,
                name=base.name,
                extra_send=base.extra_send,
                extra_recv=base.extra_recv,
            )

        def plan_stage(name: str, now: float) -> ExecutionPlan:
            """(Re)plan a stage lazily, against current lineage + liveness."""
            true_model = effective_model(name)
            fixed = dag.stage(name).dest
            start = _time.perf_counter()
            if fixed is not None:
                dest = true_model.validate_assignment(fixed)
            else:
                plan_model = true_model
                if noise is not None:
                    plan_model = noise.reseeded(
                        stage_index[name]
                    ).perturb_model(true_model)
                dest = self.ccf.assign(plan_model, strategy)
            if failure_aware and true_model.p > 0:
                egress_ok, ingress_ok = _alive_at(fabric, dynamics, now)
                alive = egress_ok & ingress_ok
                if not alive.all() and alive.any():
                    dest = replan_assignment(true_model, dest, alive)
            elapsed = _time.perf_counter() - start
            if obs is not None:
                obs.planner_phase(
                    name, time=now, wall_s=elapsed, strategy=strategy
                )
            return ExecutionPlan(
                model=true_model,
                dest=dest,
                strategy=strategy,
                solve_seconds=elapsed,
            )

        attempt_start: dict[int, float] = {}  # coflow id -> submit time

        def submit(name: str, at: float) -> Coflow:
            cid = next(ids)
            attempt_stage[cid] = name
            attempt_start[cid] = at
            last_cid[name] = cid
            attempts[name] += 1
            started.setdefault(name, at)
            cf = current_plan[name].to_coflow(arrival_time=at)
            return Coflow(
                flows=list(cf.flows),
                arrival_time=at,
                coflow_id=cid,
                name=name,
            )

        def injector(completed_id: int, now: float) -> list[Coflow]:
            name = attempt_stage[completed_id]
            finished.add(name)
            if obs is not None:
                obs.stage_attempt(
                    name,
                    attempts[name],
                    start=attempt_start[completed_id],
                    end=now,
                    status="completed",
                    coflow_id=completed_id,
                )
            if job_failed:
                return []
            out = []
            for child in dag.children_of(name):
                if child in started:
                    continue
                if not all(p in finished for p in dag.stage(child).parents):
                    continue
                current_plan[child] = plan_stage(child, now)
                out.append(
                    submit(child, max(now, dag.stage(child).min_start))
                )
            return out

        def stage_failure(name: str, now: float) -> StageFailure:
            """Describe a failed attempt for the policy's decision."""
            assert dynamics is not None
            plan = current_plan[name]
            model = plan.model
            egress_ok, ingress_ok = _alive_at(fabric, dynamics, now)
            vol = model.volume_matrix(plan.dest)
            np.fill_diagonal(vol, 0.0)
            used_src = vol.sum(axis=1) > 0
            used_dst = vol.sum(axis=0) > 0
            revive = now
            for port in np.flatnonzero(used_src & ~egress_ok):
                nxt = _next_recovery(dynamics, int(port), "egress", now)
                revive = math.inf if nxt is None else max(revive, nxt)
            for port in np.flatnonzero(used_dst & ~ingress_ok):
                nxt = _next_recovery(dynamics, int(port), "ingress", now)
                revive = math.inf if nxt is None else max(revive, nxt)
            resident = model.h.sum(axis=1) > 0
            v0_src = model.v0.sum(axis=1) > 0
            v0_dst = model.v0.sum(axis=0) > 0
            replannable = (
                model.p > 0
                and bool(egress_ok[resident].all())
                and bool(egress_ok[v0_src].all())
                and bool(ingress_ok[v0_dst].all())
                and bool((egress_ok & ingress_ok).any())
            )
            return StageFailure(
                stage=name,
                attempt=attempts[name],
                time=now,
                revive_time=revive,
                replannable=replannable,
            )

        def on_abort(cid: int, now: float) -> list[Coflow]:
            nonlocal job_failed
            name = attempt_stage[cid]
            if obs is not None:
                obs.stage_attempt(
                    name,
                    attempts[name],
                    start=attempt_start[cid],
                    end=now,
                    status="aborted",
                    coflow_id=cid,
                )
            if job_failed:
                # A sibling already failed the job; this stage dies too.
                failed_at.setdefault(name, now)
                events.append(
                    StageFailureEvent(
                        time=now,
                        stage=name,
                        attempt=attempts[name],
                        action="fail-job",
                        detail="job already failed",
                    )
                )
                return []
            assert policy is not None
            failure = stage_failure(name, now)
            decision = policy.decide(failure)
            if isinstance(decision, FailJob):
                job_failed = True
                failed_at[name] = now
                events.append(
                    StageFailureEvent(
                        time=now,
                        stage=name,
                        attempt=attempts[name],
                        action="fail-job",
                        detail=decision.reason,
                    )
                )
                return []
            if isinstance(decision, RetryStage):
                events.append(
                    StageFailureEvent(
                        time=now,
                        stage=name,
                        attempt=attempts[name],
                        action="retry",
                        detail=f"resubmit at t={decision.resume_at:.6g}",
                    )
                )
                return [submit(name, max(decision.resume_at, now))]
            # Replan: keep surviving placements, reassign the rest over
            # fully-alive nodes, record the move for descendant planning.
            plan = current_plan[name]
            egress_ok, ingress_ok = _alive_at(fabric, dynamics, now)
            alive = egress_ok & ingress_ok
            new_dest = replan_assignment(plan.model, plan.dest, alive)
            moved = int((new_dest != plan.dest).sum())
            lineage.append((name, lineage_matrix(plan.model, plan.dest, new_dest)))
            current_plan[name] = ExecutionPlan(
                model=plan.model,
                dest=new_dest,
                strategy=plan.strategy,
                solve_seconds=plan.solve_seconds,
            )
            events.append(
                StageFailureEvent(
                    time=now,
                    stage=name,
                    attempt=attempts[name],
                    action="replan",
                    detail=f"moved {moved} partitions to surviving nodes",
                )
            )
            return [submit(name, now)]

        initial = []
        for name in dag.roots():
            current_plan[name] = plan_stage(name, dag.stage(name).min_start)
            initial.append(submit(name, dag.stage(name).min_start))
        sim = CoflowSimulator(
            fabric,
            make_scheduler(self.scheduler_name),
            dynamics=dynamics,
            recovery="abort" if failure_aware else None,
            estimate_noise=self.estimate_noise,
            instrumentation=obs,
        )
        res = sim.run(
            initial,
            injector=injector,
            on_abort=on_abort if failure_aware else None,
        )

        result.events = events
        by_stage: dict[str, list[FailureRecord]] = {}
        for rec in res.failures:
            name = attempt_stage.get(rec.coflow_id)
            if name is None:
                result.fabric_failures.append(rec)
            else:
                by_stage.setdefault(name, []).append(rec)

        for name in dag.stage_names:
            stage_events = [e for e in events if e.stage == name]
            stage_failures = by_stage.get(name, [])
            if name in finished:
                result.stages[name] = DAGStageResult(
                    name=name,
                    plan=current_plan[name],
                    start_time=started[name],
                    completion_time=res.completion_times[last_cid[name]],
                    status="completed",
                    attempts=attempts[name],
                    failures=stage_failures,
                    events=stage_events,
                )
            elif name in failed_at:
                result.stages[name] = DAGStageResult(
                    name=name,
                    plan=current_plan.get(name),
                    start_time=started.get(name, failed_at[name]),
                    completion_time=failed_at[name],
                    status="failed",
                    attempts=attempts[name],
                    failures=stage_failures,
                    events=stage_events,
                )
            elif failure_aware:
                # Never became ready: an ancestor failed (or the job was
                # failed before its parents completed).
                result.stages[name] = DAGStageResult(
                    name=name,
                    plan=None,
                    start_time=math.nan,
                    completion_time=math.nan,
                    status="skipped",
                    attempts=0,
                    failures=stage_failures,
                    events=stage_events,
                )
            else:
                raise RuntimeError(
                    f"stage {name!r} never became ready; unreachable from roots"
                )
        return result
