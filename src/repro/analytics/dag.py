"""DAG-structured analytical jobs: stages with dependencies.

The paper's architecture (Fig. 3) runs a job's operators sequentially;
real engines run a *DAG* -- independent subtrees execute concurrently and
a stage starts the moment its parents finish.  This module executes such
DAGs on the coflow simulator: every stage is planned with a CCF strategy
up front, root stages' coflows are submitted at t=0, and each completion
injects the newly-ready children into the running simulation (the
simulator's dynamic-injection hook).  Concurrent stages naturally contend
for the fabric under the chosen discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import CCF, ShuffleWorkload
from repro.core.plan import ExecutionPlan
from repro.network.fabric import Fabric
from repro.network.flow import Coflow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["JobDAG", "DAGExecutor", "DAGResult", "DAGStageResult"]


@dataclass
class _Stage:
    name: str
    workload: ShuffleWorkload
    parents: tuple[str, ...]


class JobDAG:
    """A DAG of named stages over ShuffleWorkloads.

    Examples
    --------
    >>> dag = JobDAG("q")                                    # doctest: +SKIP
    >>> dag.add("scan_a", workload_a)                        # doctest: +SKIP
    >>> dag.add("scan_b", workload_b)                        # doctest: +SKIP
    >>> dag.add("join", workload_j, parents=("scan_a", "scan_b"))  # doctest: +SKIP
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._stages: dict[str, _Stage] = {}

    def add(
        self,
        name: str,
        workload: ShuffleWorkload,
        *,
        parents: tuple[str, ...] = (),
    ) -> "JobDAG":
        """Add a stage; parents must already exist (enforces acyclicity)."""
        if name in self._stages:
            raise ValueError(f"stage {name!r} already exists")
        for p in parents:
            if p not in self._stages:
                raise ValueError(
                    f"stage {name!r} references unknown parent {p!r} "
                    "(add parents first; this also keeps the graph acyclic)"
                )
        self._stages[name] = _Stage(name=name, workload=workload, parents=parents)
        return self

    @property
    def stage_names(self) -> list[str]:
        return list(self._stages)

    def stage(self, name: str) -> _Stage:
        return self._stages[name]

    def roots(self) -> list[str]:
        """Stages with no parents."""
        return [s.name for s in self._stages.values() if not s.parents]

    def children_of(self, name: str) -> list[str]:
        return [
            s.name for s in self._stages.values() if name in s.parents
        ]

    def __len__(self) -> int:
        return len(self._stages)


@dataclass
class DAGStageResult:
    """Per-stage outcome of a DAG run."""

    name: str
    plan: ExecutionPlan
    start_time: float
    completion_time: float

    @property
    def duration(self) -> float:
        return self.completion_time - self.start_time


@dataclass
class DAGResult:
    """Whole-DAG outcome."""

    dag_name: str
    strategy: str
    scheduler: str
    stages: dict[str, DAGStageResult] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last stage."""
        if not self.stages:
            return 0.0
        return max(s.completion_time for s in self.stages.values())

    def critical_path(self) -> list[str]:
        """Stage chain ending at the last completion, following the
        latest-finishing parent at each step (a lower-bound witness)."""
        if not self.stages:
            return []
        last = max(self.stages.values(), key=lambda s: s.completion_time)
        return [last.name]


class DAGExecutor:
    """Plan and simulate a JobDAG end to end.

    Parameters
    ----------
    ccf:
        Framework used to plan every stage.
    scheduler:
        Simulator discipline name the concurrent coflows contend under.
    """

    def __init__(self, ccf: CCF | None = None, *, scheduler: str = "sebf") -> None:
        self.ccf = ccf or CCF()
        self.scheduler_name = scheduler

    def run(self, dag: JobDAG, *, strategy: str = "ccf") -> DAGResult:
        """Execute the DAG; returns per-stage timings and the makespan."""
        if len(dag) == 0:
            return DAGResult(dag.name, strategy, self.scheduler_name)

        plans: dict[str, ExecutionPlan] = {
            name: self.ccf.plan(dag.stage(name).workload, strategy)
            for name in dag.stage_names
        }
        n_ports = max(p.model.n for p in plans.values())
        rate = next(iter(plans.values())).model.rate
        fabric = Fabric(n_ports=n_ports, rate=rate)

        stage_ids = {name: i for i, name in enumerate(dag.stage_names)}
        id_to_stage = {i: name for name, i in stage_ids.items()}
        started: dict[str, float] = {}
        finished: set[str] = set()

        def coflow_for(name: str, at: float) -> Coflow:
            started[name] = at
            cf = plans[name].to_coflow(arrival_time=at)
            return Coflow(
                flows=list(cf.flows),
                arrival_time=at,
                coflow_id=stage_ids[name],
                name=name,
            )

        def injector(completed_id: int, now: float) -> list[Coflow]:
            name = id_to_stage[completed_id]
            finished.add(name)
            ready = [
                child
                for child in dag.children_of(name)
                if child not in started
                and all(p in finished for p in dag.stage(child).parents)
            ]
            return [coflow_for(child, now) for child in ready]

        initial = [coflow_for(name, 0.0) for name in dag.roots()]
        sim = CoflowSimulator(fabric, make_scheduler(self.scheduler_name))
        res = sim.run(initial, injector=injector)

        result = DAGResult(dag.name, strategy, self.scheduler_name)
        for name, sid in stage_ids.items():
            if sid not in res.completion_times:
                raise RuntimeError(
                    f"stage {name!r} never became ready; unreachable from roots"
                )
            result.stages[name] = DAGStageResult(
                name=name,
                plan=plans[name],
                start_time=started[name],
                completion_time=res.completion_times[sid],
            )
        return result
