"""Analytical jobs as sequences of CCF-schedulable stages."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import ShuffleWorkload

__all__ = ["Stage", "AnalyticalJob"]


@dataclass
class Stage:
    """One distributed operator inside a job.

    Parameters
    ----------
    workload:
        Anything implementing the ShuffleWorkload protocol (a
        :class:`~repro.join.operators.DistributedJoin`, a raw
        :class:`~repro.core.model.ShuffleModel`, ...).
    name:
        Stage label for reports.
    """

    workload: ShuffleWorkload
    name: str = ""


@dataclass
class AnalyticalJob:
    """An ordered pipeline of distributed operators (paper Fig. 3).

    Stages execute sequentially: each stage's shuffle coflow starts when
    the previous stage's coflow completes, matching the paper's
    "sequential distributed data operators" decomposition.
    """

    stages: list[Stage] = field(default_factory=list)
    name: str = "job"

    def add(self, workload: ShuffleWorkload, name: str = "") -> "AnalyticalJob":
        """Append a stage (fluent)."""
        self.stages.append(Stage(workload=workload, name=name or f"stage{len(self.stages)}"))
        return self

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)
