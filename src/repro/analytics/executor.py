"""Execution of analytical jobs: plan every stage, time the communication.

Two measurement paths:

* ``simulate=False`` (default) -- closed form: each stage's communication
  time is its plan's bandwidth-optimal CCT; stages are sequential, so the
  job's communication time is the sum.  This matches the paper's
  bandwidth-based model.
* ``simulate=True`` -- the stage coflows are run through the event-driven
  simulator with a chosen discipline, each arriving when its predecessor
  completes; exposes the gap between the model and, e.g., per-flow fair
  sharing.

Job-level fault tolerance rides on the simulated path: pass a
``dynamics`` failure schedule plus a ``stage_policy`` and the sequential
job is executed as a linear :class:`~repro.analytics.dag.JobDAG` through
the failure-aware :class:`~repro.analytics.dag.DAGExecutor` -- stages are
retried or replanned on surviving nodes, and the per-stage failure /
retry records land on :class:`StageResult` / :class:`JobResult` instead
of being dropped.  Plan-time estimate noise
(:class:`~repro.core.noise.NoisyEstimates`) works on both paths: the
assignment is computed from the degraded view, the reported time always
charges the true bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.analytics.query import AnalyticalJob
from repro.analytics.stagepolicy import StageFailureEvent, StagePolicy
from repro.core.framework import CCF
from repro.core.noise import NoisyEstimates
from repro.core.plan import ExecutionPlan
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric
from repro.network.recovery import FailureRecord
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["JobExecutor", "JobResult", "StageResult"]


@dataclass
class StageResult:
    """Per-stage outcome: the plan plus its measured communication time.

    ``status`` / ``attempts`` / ``failures`` / ``events`` mirror
    :class:`~repro.analytics.dag.DAGStageResult`: on a failure-free run
    every stage is ``"completed"`` in one attempt with empty logs.  A
    failed or skipped stage reports ``communication_seconds`` of ``nan``.
    """

    name: str
    plan: ExecutionPlan | None
    communication_seconds: float
    status: str = "completed"
    attempts: int = 1
    failures: list[FailureRecord] = field(default_factory=list)
    events: list[StageFailureEvent] = field(default_factory=list)

    @property
    def bytes_lost(self) -> float:
        """Bytes thrown away by this stage's failed attempts."""
        return float(sum(r.bytes_lost for r in self.failures))


@dataclass
class JobResult:
    """Whole-job outcome, including the structured failure/retry log."""

    job_name: str
    strategy: str
    stages: list[StageResult] = field(default_factory=list)
    events: list[StageFailureEvent] = field(default_factory=list)
    fabric_failures: list[FailureRecord] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True when every stage finished successfully."""
        return all(s.status == "completed" for s in self.stages)

    @property
    def failed(self) -> bool:
        """True when the job gave up on some stage."""
        return not self.completed

    @property
    def total_communication_seconds(self) -> float:
        """End-to-end network communication time of the job.

        ``nan`` when the job failed (there is no meaningful total).
        """
        if not self.completed:
            return math.nan
        return float(sum(s.communication_seconds for s in self.stages))

    @property
    def total_traffic(self) -> float:
        """Total bytes moved across all completed stages."""
        return float(
            sum(
                s.plan.traffic
                for s in self.stages
                if s.status == "completed" and s.plan is not None
            )
        )

    @property
    def total_retries(self) -> int:
        """Stage re-executions across the job (retries + replans)."""
        return sum(max(s.attempts - 1, 0) for s in self.stages)

    @property
    def bytes_lost(self) -> float:
        """Bytes lost to failed attempts across the whole job."""
        return float(sum(s.bytes_lost for s in self.stages)) + float(
            sum(r.bytes_lost for r in self.fabric_failures)
        )


class JobExecutor:
    """Plans and times an :class:`AnalyticalJob` under one strategy.

    Parameters
    ----------
    ccf:
        The framework instance (strategy knobs, skew handling).
    scheduler:
        Simulator discipline name, used when ``simulate=True``.
    """

    def __init__(self, ccf: CCF | None = None, *, scheduler: str = "sebf") -> None:
        self.ccf = ccf or CCF()
        self.scheduler_name = scheduler

    def run(
        self,
        job: AnalyticalJob,
        *,
        strategy: str = "ccf",
        simulate: bool = False,
        dynamics: FabricDynamics | None = None,
        stage_policy: StagePolicy | str | None = None,
        noise: NoisyEstimates | float | None = None,
    ) -> JobResult:
        """Plan every stage and measure the job's communication time.

        Parameters
        ----------
        dynamics, stage_policy:
            Failure schedule and job-level fault-tolerance policy;
            require ``simulate=True`` (failures only exist in simulated
            time) and are threaded through the failure-aware
            :class:`DAGExecutor`.
        noise:
            Plan-time estimate degradation (per-stage seeded); the
            reported times always charge the true volumes.
        """
        if (dynamics is not None or stage_policy is not None) and not simulate:
            raise ValueError(
                "dynamics / stage_policy require simulate=True: failures "
                "and recovery only exist on the simulated path"
            )
        if isinstance(noise, (int, float)):
            noise = NoisyEstimates(sigma=float(noise))
        if noise is not None and noise.is_null:
            noise = None

        result = JobResult(job_name=job.name, strategy=strategy)
        if not simulate:
            for index, stage in enumerate(job.stages):
                if noise is None:
                    plan = self.ccf.plan(stage.workload, strategy)
                else:
                    # Assignment computed on the degraded view, evaluated
                    # (and reported) against the true model.
                    model = self.ccf.model_for(stage.workload, strategy)
                    plan_model = noise.reseeded(index).perturb_model(model)
                    dest = self.ccf.assign(plan_model, strategy)
                    plan = ExecutionPlan(model=model, dest=dest, strategy=strategy)
                result.stages.append(
                    StageResult(
                        name=stage.name,
                        plan=plan,
                        communication_seconds=plan.cct,
                    )
                )
            return result

        if dynamics is not None or noise is not None:
            return self._run_as_dag(
                job,
                strategy=strategy,
                dynamics=dynamics,
                stage_policy=stage_policy,
                noise=noise,
            )

        # Simulated path: stages are sequential, so each stage's coflow runs
        # on an otherwise-idle fabric; the job time is the sum of the CCTs.
        plans: list[ExecutionPlan] = [
            self.ccf.plan(stage.workload, strategy) for stage in job.stages
        ]
        n_ports = max(p.model.n for p in plans)
        rate = plans[0].model.rate
        fabric = Fabric(n_ports=n_ports, rate=rate)
        for stage, plan in zip(job.stages, plans):
            coflow = plan.to_coflow(arrival_time=0.0)
            sim = CoflowSimulator(fabric, make_scheduler(self.scheduler_name))
            res = sim.run([coflow])
            result.stages.append(
                StageResult(
                    name=stage.name, plan=plan, communication_seconds=res.max_cct
                )
            )
        return result

    def _run_as_dag(
        self,
        job: AnalyticalJob,
        *,
        strategy: str,
        dynamics: FabricDynamics | None,
        stage_policy: StagePolicy | str | None,
        noise: NoisyEstimates | None,
    ) -> JobResult:
        """Execute the sequential job as a linear DAG (failure-aware)."""
        dag = JobDAG(job.name)
        names: list[str] = []
        prev: str | None = None
        for index, stage in enumerate(job.stages):
            name = stage.name or f"stage{index}"
            if name in names:  # uniquify duplicates for the DAG keyspace
                name = f"{name}#{index}"
            dag.add(
                name,
                stage.workload,
                parents=() if prev is None else (prev,),
            )
            names.append(name)
            prev = name
        executor = DAGExecutor(self.ccf, scheduler=self.scheduler_name)
        dag_result = executor.run(
            dag,
            strategy=strategy,
            dynamics=dynamics,
            stage_policy=stage_policy,
            noise=noise,
        )
        result = JobResult(job_name=job.name, strategy=strategy)
        result.events = dag_result.events
        result.fabric_failures = dag_result.fabric_failures
        for name in names:
            s = dag_result.stages[name]
            result.stages.append(
                StageResult(
                    name=s.name,
                    plan=s.plan,
                    communication_seconds=(
                        s.duration if s.status == "completed" else math.nan
                    ),
                    status=s.status,
                    attempts=s.attempts,
                    failures=s.failures,
                    events=s.events,
                )
            )
        return result
