"""Execution of analytical jobs: plan every stage, time the communication.

Two measurement paths:

* ``simulate=False`` (default) -- closed form: each stage's communication
  time is its plan's bandwidth-optimal CCT; stages are sequential, so the
  job's communication time is the sum.  This matches the paper's
  bandwidth-based model.
* ``simulate=True`` -- the stage coflows are run through the event-driven
  simulator with a chosen discipline, each arriving when its predecessor
  completes; exposes the gap between the model and, e.g., per-flow fair
  sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.query import AnalyticalJob
from repro.core.framework import CCF
from repro.core.plan import ExecutionPlan
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["JobExecutor", "JobResult", "StageResult"]


@dataclass
class StageResult:
    """Per-stage outcome: the plan plus its measured communication time."""

    name: str
    plan: ExecutionPlan
    communication_seconds: float


@dataclass
class JobResult:
    """Whole-job outcome."""

    job_name: str
    strategy: str
    stages: list[StageResult] = field(default_factory=list)

    @property
    def total_communication_seconds(self) -> float:
        """End-to-end network communication time of the job."""
        return float(sum(s.communication_seconds for s in self.stages))

    @property
    def total_traffic(self) -> float:
        """Total bytes moved across all stages."""
        return float(sum(s.plan.traffic for s in self.stages))


class JobExecutor:
    """Plans and times an :class:`AnalyticalJob` under one strategy.

    Parameters
    ----------
    ccf:
        The framework instance (strategy knobs, skew handling).
    scheduler:
        Simulator discipline name, used when ``simulate=True``.
    """

    def __init__(self, ccf: CCF | None = None, *, scheduler: str = "sebf") -> None:
        self.ccf = ccf or CCF()
        self.scheduler_name = scheduler

    def run(
        self,
        job: AnalyticalJob,
        *,
        strategy: str = "ccf",
        simulate: bool = False,
    ) -> JobResult:
        """Plan every stage and measure the job's communication time."""
        result = JobResult(job_name=job.name, strategy=strategy)
        plans: list[ExecutionPlan] = [
            self.ccf.plan(stage.workload, strategy) for stage in job.stages
        ]
        if not simulate:
            for stage, plan in zip(job.stages, plans):
                result.stages.append(
                    StageResult(
                        name=stage.name,
                        plan=plan,
                        communication_seconds=plan.cct,
                    )
                )
            return result

        # Simulated path: stages are sequential, so each stage's coflow runs
        # on an otherwise-idle fabric; the job time is the sum of the CCTs.
        n_ports = max(p.model.n for p in plans)
        rate = plans[0].model.rate
        fabric = Fabric(n_ports=n_ports, rate=rate)
        for stage, plan in zip(job.stages, plans):
            coflow = plan.to_coflow(arrival_time=0.0)
            sim = CoflowSimulator(fabric, make_scheduler(self.scheduler_name))
            res = sim.run([coflow])
            result.stages.append(
                StageResult(
                    name=stage.name, plan=plan, communication_seconds=res.max_cct
                )
            )
        return result
