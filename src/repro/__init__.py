"""CCF: Coflow-based Co-optimization Framework for data analytics.

Full reproduction of Cheng, Wang, Pei & Epema,
*A Coflow-based Co-optimization Framework for High-performance Data
Analytics*, ICPP 2017 (DOI 10.1109/ICPP.2017.48).

Quick tour
----------
>>> from repro import CCF, AnalyticJoinWorkload
>>> wl = AnalyticJoinWorkload(n_nodes=50, scale_factor=6.0)
>>> cmp = CCF().compare(wl)                  # Hash vs Mini vs CCF
>>> cmp.speedup("mini", "ccf") > 1           # co-optimization wins
True

Packages
--------
``repro.core``
    The co-optimization model, Algorithm 1, the exact MILP, skew handling
    and the framework front-end.
``repro.network``
    Coflow abstraction, non-blocking fabric, event-driven simulator and
    the scheduling disciplines (fair, FIFO, SCF, NCF, SEBF, D-CLAS).
``repro.join``
    Distributed relations, hash partitioning, shuffle execution, local
    joins, and the distributed operators (join/aggregate/distinct).
``repro.workloads``
    TPC-H-like tuple-level generator and the closed-form analytic
    generator at paper scale.
``repro.analytics``
    Multi-operator analytical jobs and their executor.
``repro.experiments``
    The paper's evaluation: Figures 5/6/7, the motivating example, the
    solver-overhead study and ablations.
"""

from repro.analytics import AnalyticalJob, JobExecutor
from repro.core import (
    CCF,
    ExecutionPlan,
    PlanComparison,
    ShuffleModel,
    ccf_exact,
    ccf_heuristic,
)
from repro.join import DistributedJoin, DistributedRelation, HashPartitioner
from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.obs import Instrumentation, Tracer
from repro.workloads import AnalyticJoinWorkload, TPCHConfig, generate_tpch_relations

__version__ = "1.0.0"

__all__ = [
    "AnalyticJoinWorkload",
    "AnalyticalJob",
    "CCF",
    "Coflow",
    "CoflowSimulator",
    "DistributedJoin",
    "DistributedRelation",
    "ExecutionPlan",
    "Fabric",
    "Flow",
    "HashPartitioner",
    "Instrumentation",
    "JobExecutor",
    "PlanComparison",
    "ShuffleModel",
    "TPCHConfig",
    "Tracer",
    "ccf_exact",
    "ccf_heuristic",
    "generate_tpch_relations",
    "__version__",
]
