"""Synthetic chunk-matrix workloads beyond the TPC-H model.

The paper's workload has a very specific statistical shape (uniform
partitions, fixed zipf ranking).  Ablations and robustness studies need
*other* shapes to see when design choices bind; this module provides a
small family of named generators, all returning
:class:`~repro.core.model.ShuffleModel` instances with deterministic
seeds:

``lognormal``
    Heavy-tailed independent chunk sizes with configurable sparsity --
    the shape on which Algorithm 1's sorting and locality tie-break are
    demonstrated (`ccf run ablation-heuristic`).
``clustered``
    Every partition's bytes concentrated on a few random holder nodes --
    data with strong locality, where assignment choices matter most.
``bimodal``
    A mix of many small and a few huge partitions -- stresses the
    descending-size processing order.
``adversarial_greedy``
    The known 3x4 instance where Algorithm 1 lands above both baselines
    (found by property testing; fixed by local search).
``adversarial_locality``
    The 2x5 instance where the locality tie-break costs 1.6x against
    Mini -- the worst band violation property testing has found (see
    docs/algorithms.md, "Known adversarial instances").
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ShuffleModel

__all__ = [
    "lognormal_workload",
    "clustered_workload",
    "bimodal_workload",
    "adversarial_greedy_instance",
    "adversarial_locality_instance",
]


def lognormal_workload(
    n_nodes: int,
    partitions: int,
    *,
    mean: float = 14.0,
    sigma: float = 2.0,
    density: float = 0.3,
    rate: float = 128e6,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> ShuffleModel:
    """Sparse log-normal chunk sizes (heavy tail, independent cells).

    ``rng`` overrides ``seed`` with an already-spawned generator so
    composed pipelines (service mode, sweep cells) share one seeding
    scheme; omitted, behaviour is unchanged.
    """
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    if rng is None:
        rng = np.random.default_rng(seed)
    h = rng.lognormal(mean=mean, sigma=sigma, size=(n_nodes, partitions))
    h *= rng.random((n_nodes, partitions)) < density
    return ShuffleModel(h=h, rate=rate, name="lognormal")


def clustered_workload(
    n_nodes: int,
    partitions: int,
    *,
    holders_per_partition: int = 3,
    chunk_mb: float = 10.0,
    rate: float = 128e6,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> ShuffleModel:
    """Each partition's bytes live on a few random holder nodes."""
    if not 1 <= holders_per_partition <= n_nodes:
        raise ValueError("holders_per_partition out of range")
    if rng is None:
        rng = np.random.default_rng(seed)
    h = np.zeros((n_nodes, partitions))
    for k in range(partitions):
        holders = rng.choice(n_nodes, size=holders_per_partition, replace=False)
        h[holders, k] = rng.integers(1, 20, holders_per_partition) * chunk_mb * 1e5
    return ShuffleModel(h=h, rate=rate, name="clustered")


def bimodal_workload(
    n_nodes: int,
    partitions: int,
    *,
    huge_fraction: float = 0.05,
    ratio: float = 100.0,
    rate: float = 128e6,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> ShuffleModel:
    """Mostly small partitions plus a few ``ratio``-times-larger ones."""
    if not 0 <= huge_fraction <= 1:
        raise ValueError("huge_fraction must be in [0, 1]")
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    base = rng.uniform(0.5, 1.5, size=(n_nodes, partitions)) * 1e6
    huge = rng.random(partitions) < huge_fraction
    base[:, huge] *= ratio
    return ShuffleModel(h=base, rate=rate, name="bimodal")


def adversarial_greedy_instance(*, rate: float = 1.0) -> ShuffleModel:
    """The known instance where plain Algorithm 1 loses to the baselines.

    Greedy yields ``T = 19`` while both Hash and Mini achieve 18 (and the
    optimum is lower still); single-move local search repairs it.  Kept
    as a named fixture so the weakness stays documented and tested.
    """
    h = np.array(
        [
            [17.0, 0.0, 2.0, 0.0],
            [0.0, 17.0, 0.0, 0.0],
            [2.0, 16.0, 17.0, 0.0],
        ]
    )
    return ShuffleModel(h=h, rate=rate, name="adversarial-greedy")


def adversarial_locality_instance(*, rate: float = 1.0) -> ShuffleModel:
    """The 2x5 instance where the locality tie-break costs 1.6x vs Mini.

    Algorithm 1 reaches ``T = 8`` where Mini achieves 5 -- the worst
    band violation property testing has found (still inside the 2x band
    asserted in ``tests/test_properties.py``).  The mechanism: early
    ties let the locality rule park partitions 0 and 1 on node 1 "for
    free", so by the time the symmetric final partition arrives both
    ports already carry 4 send + 4 recv bytes and either choice pushes
    a port to 8.  Mini, paying a little extra traffic up front, keeps
    the loads level at 5.  docs/algorithms.md ("Known adversarial
    instances") walks through the greedy's trace step by step.
    """
    h = np.array(
        [
            [0.0, 0.0, 1.0, 4.0, 4.0],
            [4.0, 4.0, 4.0, 5.0, 4.0],
        ]
    )
    return ShuffleModel(h=h, rate=rate, name="adversarial-locality")
