"""Closed-form workload generator at full paper scale.

The evaluation's metrics depend on the data only through the chunk matrix
``h[i, k]`` (plus the skew-handling byte split), and the paper's generator
is fully statistical: uniform join keys, zipfian per-node placement with a
fixed ranking, and a fraction of ORDERS re-keyed to CUSTKEY = 1.  At
SF = 600 that is ~990 million tuples; materializing them is pointless when
the expected chunk matrix is available in closed form:

* every partition holds ``V_cust/p + (1 - skew) * V_ord / p`` bytes of
  non-skewed data, split over nodes by the zipf weights ``w``;
* the skewed partition ``k* = skewed_key mod p`` additionally holds
  ``skew * V_ord`` bytes, also split by ``w`` (the re-keyed tuples stay on
  their original nodes);
* partial duplication keeps those ``skew * V_ord`` bytes local and
  broadcasts the ``V_cust / n_customer_keys`` bytes of CUSTOMER tuples
  whose key is the skewed key.

``tests/test_workload_agreement.py`` verifies that the tuple-level
generator converges to these matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import ShuffleModel
from repro.core.skew import PartialDuplication
from repro.network.fabric import DEFAULT_PORT_RATE
from repro.workloads.zipf import zipf_weights

__all__ = ["AnalyticJoinWorkload"]

#: TPC-H row counts per unit scale factor.
CUSTOMERS_PER_SF = 150_000
ORDERS_PER_SF = 1_500_000


@dataclass
class AnalyticJoinWorkload:
    """Expected-value model of the paper's CUSTOMER ⋈ ORDERS workload.

    Parameters
    ----------
    n_nodes:
        Number of computing nodes.
    partitions:
        Number of hash partitions ``p``; the paper uses ``15 * n`` for
        fine-grained assignment control (default when ``None``).
    scale_factor:
        TPC-H scale factor; 600 reproduces the paper (90 M + 900 M tuples).
    payload_bytes:
        Bytes per tuple (paper: 1000, giving ~1 TB input at SF 600).
    zipf_s:
        Zipf exponent of per-node chunk sizes (paper default 0.8).
    skew:
        Fraction of ORDERS tuples re-keyed to ``skewed_key`` (paper
        default 0.2).
    skewed_key:
        The hot key (paper: CUSTKEY = 1).
    rate:
        Port rate in bytes/second for derived models.
    """

    n_nodes: int
    partitions: int | None = None
    scale_factor: float = 600.0
    payload_bytes: float = 1000.0
    zipf_s: float = 0.8
    skew: float = 0.2
    skewed_key: int = 1
    rate: float = DEFAULT_PORT_RATE
    name: str = "tpch-analytic"
    _w: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.partitions is None:
            self.partitions = 15 * self.n_nodes
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if not 0 <= self.skew < 1:
            raise ValueError("skew must be in [0, 1)")
        if self.scale_factor <= 0 or self.payload_bytes <= 0:
            raise ValueError("scale_factor and payload_bytes must be positive")
        self._w = zipf_weights(self.n_nodes, self.zipf_s)

    # -- derived sizes -------------------------------------------------
    @property
    def n_customer_tuples(self) -> float:
        return CUSTOMERS_PER_SF * self.scale_factor

    @property
    def n_order_tuples(self) -> float:
        return ORDERS_PER_SF * self.scale_factor

    @property
    def customer_bytes(self) -> float:
        return self.n_customer_tuples * self.payload_bytes

    @property
    def order_bytes(self) -> float:
        return self.n_order_tuples * self.payload_bytes

    @property
    def total_bytes(self) -> float:
        """Total input size (paper: ~1 TB at SF 600)."""
        return self.customer_bytes + self.order_bytes

    @property
    def node_weights(self) -> np.ndarray:
        """Zipf placement weights (rank 0 = heaviest node)."""
        return self._w

    @property
    def skewed_partition(self) -> int:
        """Index of the partition holding the hot key."""
        return self.skewed_key % int(self.partitions)

    # -- chunk matrices -------------------------------------------------
    def chunk_matrix(self) -> np.ndarray:
        """Expected full chunk matrix ``h[i, k]`` in bytes, shape (n, p)."""
        p = int(self.partitions)
        base_pp = (self.customer_bytes + (1 - self.skew) * self.order_bytes) / p
        h = np.outer(self._w, np.full(p, base_pp))
        h[:, self.skewed_partition] += self._w * (self.skew * self.order_bytes)
        return h

    def skew_local_matrix(self) -> np.ndarray:
        """Bytes partial duplication keeps local (skewed ORDERS tuples)."""
        h = np.zeros((self.n_nodes, int(self.partitions)))
        if self.skew > 0:
            h[:, self.skewed_partition] = self._w * (self.skew * self.order_bytes)
        return h

    def broadcast_matrix(self) -> np.ndarray:
        """Bytes partial duplication broadcasts (CUSTOMER rows of the hot key)."""
        h = np.zeros((self.n_nodes, int(self.partitions)))
        if self.skew > 0:
            hot_customer_bytes = self.customer_bytes / self.n_customer_tuples
            h[:, self.skewed_partition] = self._w * hot_customer_bytes
        return h

    # -- ShuffleWorkload protocol ---------------------------------------
    def shuffle_model(self, *, skew_handling: bool) -> ShuffleModel:
        """The co-optimization input, with or without partial duplication."""
        full = self.chunk_matrix()
        if not skew_handling or self.skew == 0:
            return ShuffleModel(h=full, rate=self.rate, name=self.name)
        result = PartialDuplication().apply(
            full,
            h_skew_local=self.skew_local_matrix(),
            h_broadcast=self.broadcast_matrix(),
            rate=self.rate,
            name=self.name,
        )
        return result.model
