"""Synthetic coflow mixes in the style of the Facebook trace.

Varys and Aalo evaluate their schedulers on a one-hour Hive/MapReduce
trace from a 3000-machine Facebook cluster, whose coflows famously fall
into four bins: Short/Narrow, Long/Narrow, Short/Wide, Long/Wide -- with
narrow coflows dominating by count and wide ones by bytes.  The trace
itself is not redistributable, so this module generates synthetic mixes
with the same structure: Poisson arrivals, a four-bin width/size mixture
with heavy-tailed flow sizes, and uniformly drawn endpoints.

Used by the scheduler ablations to evaluate the coflow disciplines under
a realistic (not join-shaped) load, independent of the CCF paper's
TPC-H workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.flow import Coflow, Flow

__all__ = ["CoflowMixConfig", "generate_coflow_mix", "BIN_DEFINITIONS"]

#: (name, probability, width range, per-flow MB range) for the four bins.
#: Probabilities follow the published breakdown: ~60% narrow-short,
#: ~16% narrow-long, ~12% wide-short, ~12% wide-long.
BIN_DEFINITIONS: tuple[tuple[str, float, tuple[int, int], tuple[float, float]], ...] = (
    ("short-narrow", 0.60, (1, 8), (0.1, 5.0)),
    ("long-narrow", 0.16, (1, 8), (5.0, 500.0)),
    ("short-wide", 0.12, (8, 64), (0.1, 5.0)),
    ("long-wide", 0.12, (8, 64), (5.0, 500.0)),
)


@dataclass
class CoflowMixConfig:
    """Parameters of the synthetic trace.

    Parameters
    ----------
    n_ports:
        Fabric size the coflows are drawn over.
    n_coflows:
        Number of coflows to generate.
    arrival_rate:
        Poisson arrival rate in coflows/second.
    seed:
        RNG seed.
    deadline_fraction:
        Fraction of coflows tagged with a deadline (relative slack drawn
        uniformly in ``deadline_slack``); for exercising deadline mode.
    deadline_slack:
        (low, high) multipliers applied to the coflow's isolated
        bottleneck time to form its deadline.
    """

    n_ports: int = 50
    n_coflows: int = 100
    arrival_rate: float = 1.0
    seed: int = 0
    deadline_fraction: float = 0.0
    deadline_slack: tuple[float, float] = (1.5, 4.0)

    def __post_init__(self) -> None:
        if self.n_ports < 2:
            raise ValueError("need at least two ports")
        if self.n_coflows < 0:
            raise ValueError("n_coflows must be non-negative")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0 <= self.deadline_fraction <= 1:
            raise ValueError("deadline_fraction must be in [0, 1]")


def _draw_bin(rng: np.random.Generator) -> tuple[str, tuple[int, int], tuple[float, float]]:
    probs = np.array([b[1] for b in BIN_DEFINITIONS])
    idx = rng.choice(len(BIN_DEFINITIONS), p=probs / probs.sum())
    name, _, widths, sizes = BIN_DEFINITIONS[idx]
    return name, widths, sizes


def generate_coflow_mix(
    config: CoflowMixConfig,
    *,
    rate_for_deadlines: float = 128e6,
    rng: np.random.Generator | None = None,
) -> list[Coflow]:
    """Generate the synthetic coflow trace.

    ``rate_for_deadlines`` is the port rate used to convert a coflow's
    bottleneck bytes into the base time its deadline slack multiplies.
    ``rng`` lets a caller hand in an already-spawned generator (e.g. one
    derived through ``repro.experiments.engine.derive_seed``) so service
    and sweep seeding compose; omitted, ``config.seed`` is used exactly
    as before.
    """
    if rng is None:
        rng = np.random.default_rng(config.seed)
    coflows: list[Coflow] = []
    t = 0.0
    for cid in range(config.n_coflows):
        t += float(rng.exponential(1.0 / config.arrival_rate))
        bin_name, (w_lo, w_hi), (s_lo, s_hi) = _draw_bin(rng)
        width = int(rng.integers(w_lo, w_hi + 1))
        flows: list[Flow] = []
        for _ in range(width):
            src = int(rng.integers(0, config.n_ports))
            dst = int(rng.integers(0, config.n_ports - 1))
            if dst >= src:
                dst += 1
            # Log-uniform per-flow size inside the bin's MB range.
            vol = float(
                np.exp(rng.uniform(np.log(s_lo * 1e6), np.log(s_hi * 1e6)))
            )
            flows.append(Flow(src=src, dst=dst, volume=vol))
        coflow = Coflow(
            flows=flows, arrival_time=t, coflow_id=cid, name=bin_name
        )
        if rng.random() < config.deadline_fraction:
            base = coflow.bottleneck(config.n_ports, rate_for_deadlines)
            slack = rng.uniform(*config.deadline_slack)
            coflow = Coflow(
                flows=list(coflow.flows),
                arrival_time=t,
                coflow_id=cid,
                name=bin_name,
                deadline=max(base * slack, 1e-6),
            )
        coflows.append(coflow)
    return coflows
