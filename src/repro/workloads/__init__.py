"""Workload generators for the CCF evaluation.

Two paths produce the same statistical model of the paper's TPC-H join
(§IV-A2): uniform join keys, per-node chunk sizes following a Zipf
distribution with a *fixed* node ranking (the paper: "the first node always
holds the largest data chunk for each partition"), and a controlled
fraction of ORDERS tuples re-keyed to CUSTKEY = 1 to inject skew.

* :mod:`repro.workloads.tpch` -- tuple-level generator (real key arrays,
  real shuffles and local joins; use at small scale).
* :mod:`repro.workloads.analytic` -- closed-form chunk matrices at full
  paper scale (n = 1000, p = 15000, ~1 TB) without materializing a single
  tuple.

A test asserts the two paths agree statistically for matched parameters.
"""

from repro.workloads.analytic import AnalyticJoinWorkload
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations
from repro.workloads.zipf import zipf_weights

__all__ = [
    "AnalyticJoinWorkload",
    "TPCHConfig",
    "generate_tpch_relations",
    "zipf_weights",
]
