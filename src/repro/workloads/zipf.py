"""Zipfian node-placement weights (paper §IV-A2).

The evaluation lets "the size of included data chunks follow the Zipfian
distribution over the n nodes": node of rank ``r`` (1-based) holds a share
proportional to ``r ** -s``.  ``s = 0`` degenerates to uniform placement;
``s = 1`` is classical Zipf.  The ranking is the same for every partition,
so node 0 always holds the largest chunk -- the property that makes the
Mini strategy collapse all traffic onto node 0.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "place_tuples"]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) weights over ``n`` ranks (rank 0 largest).

    Parameters
    ----------
    n:
        Number of nodes.
    s:
        Zipf exponent >= 0; 0 gives the uniform distribution.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def place_tuples(
    m: int, weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw a home node for each of ``m`` tuples ~ Categorical(weights)."""
    if m < 0:
        raise ValueError("m must be non-negative")
    weights = np.asarray(weights, dtype=float)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(weights.shape[0], size=m, p=weights).astype(np.int64)
