"""Tuple-level TPC-H-like workload generator (paper §IV-A2).

Generates the CUSTOMER and ORDERS relations of the paper's join

    select * from CUSTOMER C join ORDER O on C.CUSTKEY = O.CUSTKEY

with TPC-H row counts (150 K customers and 1.5 M orders per unit of scale
factor; the paper's SF = 600 gives 90 M / 900 M), uniform foreign keys,
zipfian node placement with fixed ranking, and skew injected by re-keying
a random fraction of ORDERS to CUSTKEY = 1 -- exactly the paper's recipe
("we randomly choose 20% of the tuples and set their key to 1").

This path materializes real key arrays, so it is meant for small scale
factors (tests, examples); use
:class:`repro.workloads.analytic.AnalyticJoinWorkload` for paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.join.relation import DistributedRelation
from repro.workloads.analytic import CUSTOMERS_PER_SF, ORDERS_PER_SF
from repro.workloads.zipf import place_tuples, zipf_weights

__all__ = [
    "TPCHConfig",
    "generate_tpch_relations",
    "generate_tpch_keyed",
    "inject_skew",
    "LINEITEMS_PER_ORDER",
]

#: TPC-H averages four line items per order.
LINEITEMS_PER_ORDER = 4


def inject_skew(
    keys: np.ndarray,
    *,
    skew: float,
    skewed_key: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Re-key a uniformly random ``skew`` fraction of tuples to ``skewed_key``.

    Returns a new array; the input is not modified.
    """
    if not 0 <= skew < 1:
        raise ValueError("skew must be in [0, 1)")
    out = np.asarray(keys, dtype=np.int64).copy()
    if skew == 0 or out.size == 0:
        return out
    m = int(round(skew * out.size))
    idx = rng.choice(out.size, size=m, replace=False)
    out[idx] = skewed_key
    return out


@dataclass
class TPCHConfig:
    """Parameters of the tuple-level generator.

    Defaults mirror the paper except ``scale_factor``, which defaults to a
    laptop-friendly value; set 600 to match the paper (not advisable in
    memory).
    """

    n_nodes: int = 8
    scale_factor: float = 0.001
    payload_bytes: float = 1000.0
    zipf_s: float = 0.8
    skew: float = 0.2
    skewed_key: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        if not 0 <= self.skew < 1:
            raise ValueError("skew must be in [0, 1)")

    @property
    def n_customers(self) -> int:
        return max(1, int(round(CUSTOMERS_PER_SF * self.scale_factor)))

    @property
    def n_orders(self) -> int:
        return max(1, int(round(ORDERS_PER_SF * self.scale_factor)))


def generate_tpch_relations(
    config: TPCHConfig,
    *,
    rng: np.random.Generator | None = None,
) -> tuple[DistributedRelation, DistributedRelation]:
    """Generate (CUSTOMER, ORDERS) distributed relations.

    CUSTOMER holds every key in ``1..n_customers`` exactly once; ORDERS
    draws its CUSTKEY foreign keys uniformly, then skew is injected.  Both
    relations place each tuple on a node drawn from the zipf weights, so
    the expected chunk matrix matches the analytic workload.

    ``rng`` accepts an already-spawned generator (service/sweep seeding
    via ``derive_seed``); omitted, ``config.seed`` drives the draws.
    """
    if rng is None:
        rng = np.random.default_rng(config.seed)
    w = zipf_weights(config.n_nodes, config.zipf_s)

    cust_keys = np.arange(1, config.n_customers + 1, dtype=np.int64)
    cust_nodes = place_tuples(cust_keys.size, w, rng)
    customer = DistributedRelation.from_placement(
        cust_keys,
        cust_nodes,
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="CUSTOMER",
    )

    order_keys = rng.integers(
        1, config.n_customers + 1, size=config.n_orders, dtype=np.int64
    )
    order_keys = inject_skew(
        order_keys, skew=config.skew, skewed_key=config.skewed_key, rng=rng
    )
    order_nodes = place_tuples(order_keys.size, w, rng)
    orders = DistributedRelation.from_placement(
        order_keys,
        order_nodes,
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="ORDERS",
    )
    return customer, orders


def generate_tpch_keyed(
    config: TPCHConfig, *, rng: np.random.Generator | None = None
):
    """Generate the keyed three-table schema: CUSTOMER, ORDERS, LINEITEM.

    Beyond the paper's two-table join, this models the chained-key case:
    ORDERS carries both a unique ``orderkey`` and a ``custkey`` foreign
    key (skew-injected as usual); LINEITEM references ``orderkey`` with
    :data:`LINEITEMS_PER_ORDER` rows per order on average.  Returns a
    dict of :class:`~repro.join.multikey.KeyedRelation` by table name.
    """
    from repro.join.multikey import KeyedRelation

    if rng is None:
        rng = np.random.default_rng(config.seed)
    w = zipf_weights(config.n_nodes, config.zipf_s)

    cust_keys = np.arange(1, config.n_customers + 1, dtype=np.int64)
    customer = KeyedRelation.from_rows(
        {"custkey": cust_keys},
        place_tuples(cust_keys.size, w, rng),
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="CUSTOMER",
    )

    order_keys = np.arange(1, config.n_orders + 1, dtype=np.int64)
    order_cust = rng.integers(
        1, config.n_customers + 1, size=config.n_orders, dtype=np.int64
    )
    order_cust = inject_skew(
        order_cust, skew=config.skew, skewed_key=config.skewed_key, rng=rng
    )
    orders = KeyedRelation.from_rows(
        {"orderkey": order_keys, "custkey": order_cust},
        place_tuples(order_keys.size, w, rng),
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="ORDERS",
    )

    n_lineitems = LINEITEMS_PER_ORDER * config.n_orders
    li_order = rng.integers(
        1, config.n_orders + 1, size=n_lineitems, dtype=np.int64
    )
    lineitem = KeyedRelation.from_rows(
        {"orderkey": li_order},
        place_tuples(n_lineitems, w, rng),
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="LINEITEM",
    )
    return {"customer": customer, "orders": orders, "lineitem": lineitem}
