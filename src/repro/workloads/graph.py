"""Graph workloads: distributed triangle counting via self-joins.

Demonstrates the paper's techniques on a workload far from TPC-H: an
edge relation sharded over nodes, with triangle counting expressed as the
classical two-stage join pipeline

1. *wedges* = edges ⋈ edges on the shared middle vertex
   (``(a, b) ⋈ (b, c)`` with ``a < b < c`` orientation), then
2. close each wedge by probing the edge set for ``(a, c)``.

Both stages shuffle by a key, so both are CCF-schedulable; results are
verified against networkx's triangle count in the tests.  Edges are
oriented by degree-ordering (lower id first on a DAG of the undirected
graph), the standard trick that makes each triangle counted exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import CCF
from repro.join.multikey import KeyedEquiJoin, KeyedRelation
from repro.join.partitioner import HashPartitioner
from repro.workloads.zipf import place_tuples, zipf_weights

__all__ = ["GraphConfig", "generate_edge_relation", "count_triangles_distributed"]


@dataclass
class GraphConfig:
    """A random undirected graph, sharded over ``n_nodes`` machines.

    ``n_vertices`` vertices with ``edge_probability`` per pair
    (Erdos-Renyi), placed on machines with zipfian weights.
    """

    n_nodes: int = 4
    n_vertices: int = 60
    edge_probability: float = 0.08
    zipf_s: float = 0.8
    seed: int = 0
    payload_bytes: float = 100.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.n_vertices <= 1:
            raise ValueError("need at least one machine and two vertices")
        if not 0 < self.edge_probability <= 1:
            raise ValueError("edge_probability must be in (0, 1]")


def generate_edges(
    config: GraphConfig, *, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Oriented edge list, shape ``(m, 2)`` with ``src < dst``."""
    if rng is None:
        rng = np.random.default_rng(config.seed)
    v = config.n_vertices
    iu = np.triu_indices(v, k=1)
    mask = rng.random(iu[0].size) < config.edge_probability
    return np.stack([iu[0][mask], iu[1][mask]], axis=1).astype(np.int64)


def generate_edge_relation(
    config: GraphConfig, *, rng: np.random.Generator | None = None
) -> KeyedRelation:
    """The sharded edge relation with columns ``src`` and ``dst``.

    ``rng`` replaces the *placement* stream only (the edge structure
    stays a pure function of ``config.seed``), so a spawned generator
    composes with the edge list staying comparable across runs.
    """
    edges = generate_edges(config)
    if rng is None:
        rng = np.random.default_rng(config.seed + 1)
    w = zipf_weights(config.n_nodes, config.zipf_s)
    nodes = place_tuples(edges.shape[0], w, rng)
    return KeyedRelation.from_rows(
        {"src": edges[:, 0], "dst": edges[:, 1]},
        nodes,
        config.n_nodes,
        payload_bytes=config.payload_bytes,
        name="EDGES",
    )


@dataclass
class TriangleCountResult:
    """Outcome of the distributed triangle count."""

    triangles: int
    wedges: int
    stage_ccts: list[float]
    stage_traffic: list[float]

    @property
    def total_communication_seconds(self) -> float:
        return float(sum(self.stage_ccts))


def count_triangles_distributed(
    relation: KeyedRelation,
    *,
    strategy: str = "ccf",
    ccf: CCF | None = None,
    partitions_per_node: int = 8,
) -> TriangleCountResult:
    """Two CCF-scheduled join stages closing wedges into triangles.

    Stage 1 joins edges ``(a, b)`` with edges ``(b, c)`` on the middle
    vertex (``dst`` of the first, ``src`` of the second, both oriented
    ``a < b < c``), producing wedges.  Stage 2 co-locates each wedge's
    closing pair ``(a, c)`` with the edge set, again by hashing, and
    counts matches.
    """
    ccf = ccf or CCF(skew_handling=False)
    n = relation.n_nodes
    part = HashPartitioner(p=partitions_per_node * n)

    # Stage 1: wedges.  Rename columns so the join key lines up:
    # left edge (a, mid): key column "mid" = dst; right edge (mid, c).
    left = KeyedRelation(
        columns={
            "a": [s.copy() for s in relation.column_shards("src")],
            "mid": [s.copy() for s in relation.column_shards("dst")],
        },
        payload_bytes=relation.payload_bytes,
        name="edges-as-left",
    )
    right = KeyedRelation(
        columns={
            "mid": [s.copy() for s in relation.column_shards("src")],
            "c": [s.copy() for s in relation.column_shards("dst")],
        },
        payload_bytes=relation.payload_bytes,
        name="edges-as-right",
    )
    stage1 = KeyedEquiJoin(left, right, on="mid", partitioner=part,
                           name="wedges")
    plan1 = ccf.plan(stage1, strategy)
    wedges = stage1.execute(plan1)

    # Orientation a < mid < c holds by construction; every wedge is a
    # triangle candidate closed by edge (a, c).
    # Stage 2: route wedges by a composite key of (a, c) and the edge set
    # by (src, dst); count equal pairs per machine.
    n_vertices = (
        int(
            max(
                (int(s.max()) for s in relation.column_shards("dst") if s.size),
                default=0,
            )
        )
        + 1
    )

    def composite(a: np.ndarray, c: np.ndarray) -> np.ndarray:
        return a * np.int64(n_vertices) + c
    wedge_keys = KeyedRelation(
        columns={
            "pair": [
                composite(rows["a"], rows["c"])
                for rows in (
                    wedges.result.node_rows(i) for i in range(n)
                )
            ]
        },
        payload_bytes=relation.payload_bytes,
        name="wedge-pairs",
    )
    edge_keys = KeyedRelation(
        columns={
            "pair": [
                composite(
                    relation.column_shards("src")[i],
                    relation.column_shards("dst")[i],
                )
                for i in range(n)
            ]
        },
        payload_bytes=relation.payload_bytes,
        name="edge-pairs",
    )
    stage2 = KeyedEquiJoin(
        wedge_keys, edge_keys, on="pair", partitioner=part, name="close"
    )
    plan2 = ccf.plan(stage2, strategy)
    closed = stage2.execute(plan2)

    return TriangleCountResult(
        triangles=closed.cardinality,
        wedges=wedges.cardinality,
        stage_ccts=[plan1.cct, plan2.cct],
        stage_traffic=[wedges.realized_traffic, closed.realized_traffic],
    )
