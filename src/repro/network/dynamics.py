"""Fabric dynamics: port-rate changes during a simulation.

The paper's long-term goal is a system "robust in the presence of
different workloads and network configurations" (§VI).  This module lets
the simulator model the network-configuration half: scheduled changes to
per-port rates (background traffic stealing bandwidth, degraded links,
recovering ports).  The fluid simulator splits epochs at every event so
rate allocations are always computed against the current capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.fabric import Fabric

__all__ = ["RateEvent", "FabricDynamics"]


@dataclass(frozen=True)
class RateEvent:
    """One scheduled capacity change.

    Parameters
    ----------
    time:
        Simulation time (seconds) the change takes effect.
    port:
        Affected port index.
    egress, ingress:
        New capacities in bytes/second; ``None`` leaves the direction
        unchanged.  Capacities must remain strictly positive (a dead port
        would deadlock flows pinned to it; model failure as severe
        degradation instead).
    """

    time: float
    port: int
    egress: float | None = None
    ingress: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.port < 0:
            raise ValueError("port must be non-negative")
        for v, nm in ((self.egress, "egress"), (self.ingress, "ingress")):
            if v is not None and v <= 0:
                raise ValueError(f"{nm} rate must stay strictly positive")
        if self.egress is None and self.ingress is None:
            raise ValueError("event must change at least one direction")


@dataclass
class FabricDynamics:
    """An ordered schedule of :class:`RateEvent` changes."""

    events: list[RateEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    def validate_against(self, fabric: Fabric) -> None:
        """Check every event references a real port."""
        for e in self.events:
            if e.port >= fabric.n_ports:
                raise ValueError(
                    f"rate event at t={e.time} references port {e.port} "
                    f">= fabric size {fabric.n_ports}"
                )

    def next_event_time(self, now: float) -> float | None:
        """Earliest event strictly after ``now``, or None."""
        for e in self.events:
            if e.time > now + 1e-15:
                return e.time
        return None

    def apply_due(self, fabric: Fabric, now: float) -> bool:
        """Apply all events with ``time <= now`` exactly once.

        Events are consumed (removed from the schedule).  Returns True
        when any change was applied.
        """
        due = [e for e in self.events if e.time <= now + 1e-15]
        if not due:
            return False
        self.events = [e for e in self.events if e.time > now + 1e-15]
        for e in due:
            if e.egress is not None:
                fabric.egress_rates[e.port] = e.egress
            if e.ingress is not None:
                fabric.ingress_rates[e.port] = e.ingress
        return True

    @classmethod
    def degrade(
        cls,
        *,
        time: float,
        ports: list[int],
        factor: float,
        fabric: Fabric,
        recover_at: float | None = None,
    ) -> "FabricDynamics":
        """Convenience: scale both directions of ``ports`` by ``factor``.

        With ``recover_at`` set, matching events restore the original
        rates at that time.
        """
        if factor <= 0:
            raise ValueError("factor must be strictly positive")
        events = []
        for p in ports:
            orig_e = float(fabric.egress_rates[p])
            orig_i = float(fabric.ingress_rates[p])
            events.append(
                RateEvent(
                    time=time, port=p,
                    egress=orig_e * factor, ingress=orig_i * factor,
                )
            )
            if recover_at is not None:
                events.append(
                    RateEvent(
                        time=recover_at, port=p, egress=orig_e, ingress=orig_i
                    )
                )
        return cls(events=events)
