"""Fabric dynamics: port-rate changes during a simulation.

The paper's long-term goal is a system "robust in the presence of
different workloads and network configurations" (§VI).  This module lets
the simulator model the network-configuration half: scheduled changes to
per-port rates (background traffic stealing bandwidth, degraded links,
recovering ports) and, since the fault-tolerance extension, outright port
*failures* -- a rate of exactly zero marks the direction dead.  The fluid
simulator splits epochs at every event so rate allocations are always
computed against the current capacities, and hands flows pinned to a dead
port to a :mod:`repro.network.recovery` policy instead of deadlocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.fabric import Fabric

__all__ = ["RateEvent", "FabricDynamics"]


@dataclass(frozen=True)
class RateEvent:
    """One scheduled capacity change.

    Parameters
    ----------
    time:
        Simulation time (seconds) the change takes effect.
    port:
        Affected port index.
    egress, ingress:
        New capacities in bytes/second; ``None`` leaves the direction
        unchanged.  A capacity of exactly ``0.0`` marks the direction
        *dead* (port failure): the simulator strands flows pinned to it
        and applies the run's recovery policy.  Negative rates are
        rejected.
    """

    time: float
    port: int
    egress: float | None = None
    ingress: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.port < 0:
            raise ValueError("port must be non-negative")
        for v, nm in ((self.egress, "egress"), (self.ingress, "ingress")):
            if v is not None and v < 0:
                raise ValueError(f"{nm} rate must be non-negative")
        if self.egress is None and self.ingress is None:
            raise ValueError("event must change at least one direction")

    @property
    def is_failure(self) -> bool:
        """True when the event kills at least one direction (rate 0)."""
        return self.egress == 0.0 or self.ingress == 0.0

    @classmethod
    def failure(cls, time: float, port: int) -> "RateEvent":
        """A full port failure: both directions go dark at ``time``."""
        return cls(time=time, port=port, egress=0.0, ingress=0.0)

    @classmethod
    def recovery(
        cls, time: float, port: int, *, egress: float, ingress: float
    ) -> "RateEvent":
        """A repair event restoring both directions of ``port``."""
        if egress <= 0 or ingress <= 0:
            raise ValueError("recovery must restore strictly positive rates")
        return cls(time=time, port=port, egress=egress, ingress=ingress)


@dataclass
class FabricDynamics:
    """An ordered schedule of :class:`RateEvent` changes.

    The schedule is *reusable*: :meth:`apply_due` advances an internal
    cursor instead of consuming events, so the same object can drive any
    number of simulations (call :meth:`rewind` between manual replays;
    :class:`~repro.network.simulator.CoflowSimulator` works on a private
    copy and never mutates the caller's schedule).

    Events sharing the same timestamp are applied in their sorted
    (stable) order, so a later entry on the same port wins.
    """

    events: list[RateEvent] = field(default_factory=list)
    _cursor: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def has_failures(self) -> bool:
        """True when any scheduled event zeroes a port direction."""
        return any(e.is_failure for e in self.events)

    @property
    def pending(self) -> int:
        """Number of events not yet applied (cursor to end)."""
        return len(self.events) - self._cursor

    def rewind(self) -> None:
        """Reset the cursor so the schedule can be replayed from t=0."""
        self._cursor = 0

    def validate_against(self, fabric: Fabric) -> None:
        """Check every event references a real port."""
        for e in self.events:
            if e.port >= fabric.n_ports:
                raise ValueError(
                    f"rate event at t={e.time} references port {e.port} "
                    f">= fabric size {fabric.n_ports}"
                )

    def peek_time(self) -> float | None:
        """Timestamp of the next unapplied event, or None when drained.

        O(1) and allocation-free -- the simulator's epoch loop calls this
        (via :meth:`next_event_time`) every epoch.
        """
        if self._cursor < len(self.events):
            return self.events[self._cursor].time
        return None

    def next_event_time(self, now: float) -> float | None:
        """Earliest unapplied event strictly after ``now``, or None.

        Events are time-sorted and the cursor never rewinds mid-run, so
        this walks forward by index from the cursor instead of slicing
        (the old ``events[cursor:]`` copied the whole remaining schedule
        on every epoch).
        """
        for i in range(self._cursor, len(self.events)):
            t = self.events[i].time
            if t > now + 1e-15:
                return t
        return None

    def apply_due(self, fabric: Fabric, now: float) -> bool:
        """Apply all unapplied events with ``time <= now`` exactly once.

        The events stay in the schedule (the cursor advances past them),
        so the same :class:`FabricDynamics` can drive multiple runs after
        a :meth:`rewind`.  Returns True when any change was applied.
        """
        applied = False
        while self._cursor < len(self.events):
            e = self.events[self._cursor]
            if e.time > now + 1e-15:
                break
            if e.egress is not None:
                fabric.egress_rates[e.port] = e.egress
            if e.ingress is not None:
                fabric.ingress_rates[e.port] = e.ingress
            self._cursor += 1
            applied = True
        return applied

    @classmethod
    def degrade(
        cls,
        *,
        time: float,
        ports: list[int],
        factor: float,
        fabric: Fabric,
        recover_at: float | None = None,
    ) -> "FabricDynamics":
        """Convenience: scale both directions of ``ports`` by ``factor``.

        With ``recover_at`` set, matching events restore the original
        rates at that time.
        """
        if factor <= 0:
            raise ValueError("factor must be strictly positive")
        events = []
        for p in ports:
            orig_e = float(fabric.egress_rates[p])
            orig_i = float(fabric.ingress_rates[p])
            events.append(
                RateEvent(
                    time=time, port=p,
                    egress=orig_e * factor, ingress=orig_i * factor,
                )
            )
            if recover_at is not None:
                events.append(
                    RateEvent(
                        time=recover_at, port=p, egress=orig_e, ingress=orig_i
                    )
                )
        return cls(events=events)

    @classmethod
    def fail(
        cls,
        *,
        time: float,
        ports: list[int],
        fabric: Fabric,
        recover_at: float | None = None,
        direction: str = "both",
    ) -> "FabricDynamics":
        """Convenience: kill ``ports`` (affected directions go to zero).

        ``direction`` selects what dies: ``"both"`` models a full node
        loss, ``"ingress"`` a receiver-side loss (the reducer/storage on
        the node dies but its map outputs remain readable -- the case the
        ``replan`` policy is designed for), ``"egress"`` a sender-side
        loss.  With ``recover_at`` set, repair events restore the
        original rates at that time; without it the ports stay dead for
        the whole run, which only the ``abort`` and ``replan`` recovery
        policies can survive.
        """
        if direction not in ("both", "ingress", "egress"):
            raise ValueError(
                f"direction must be 'both', 'ingress' or 'egress', "
                f"got {direction!r}"
            )
        events: list[RateEvent] = []
        for p in ports:
            events.append(
                RateEvent(
                    time=time,
                    port=p,
                    egress=0.0 if direction in ("both", "egress") else None,
                    ingress=0.0 if direction in ("both", "ingress") else None,
                )
            )
            if recover_at is not None:
                if recover_at <= time:
                    raise ValueError("recover_at must be after the failure time")
                events.append(
                    RateEvent(
                        time=recover_at,
                        port=p,
                        egress=float(fabric.egress_rates[p])
                        if direction in ("both", "egress")
                        else None,
                        ingress=float(fabric.ingress_rates[p])
                        if direction in ("both", "ingress")
                        else None,
                    )
                )
        return cls(events=events)
