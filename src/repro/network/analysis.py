"""Post-simulation analysis: utilization, slowdown, fairness.

Turns a :class:`~repro.network.simulator.SimulationResult` (plus the
coflows and fabric that produced it) into the summary statistics the
coflow literature reports: per-coflow slowdown against the isolated
optimum, fabric utilization, and Jain's fairness index over CCTs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.fabric import Fabric
from repro.network.flow import Coflow
from repro.network.simulator import SimulationResult

__all__ = ["SimulationReport", "analyze", "jain_index"]


def jain_index(values: np.ndarray | list[float]) -> float:
    """Jain's fairness index: 1 = perfectly equal, 1/n = maximally unfair."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return 1.0
    if (v < 0).any():
        raise ValueError("values must be non-negative")
    denom = v.size * (v ** 2).sum()
    if denom == 0:
        return 1.0
    return float(v.sum() ** 2 / denom)


@dataclass
class SimulationReport:
    """Derived statistics of one simulation run.

    Attributes
    ----------
    average_cct, p95_cct:
        Mean and 95th-percentile coflow completion times (seconds).
    average_slowdown, max_slowdown:
        CCT divided by the coflow's isolated bottleneck time; 1.0 means
        the coflow was never delayed by contention.
    utilization:
        Delivered bytes over (makespan x aggregate egress capacity) --
        how busy the fabric was end to end.
    fairness:
        Jain index over per-coflow slowdowns.
    deadline_hit_rate:
        Fraction of deadline-tagged coflows finishing on time (NaN when
        none carry deadlines).
    weighted_average_cct:
        Weight-averaged CCT ``sum(w * cct) / sum(w)``.  With unit
        weights this equals ``average_cct`` bit-for-bit.
    total_weighted_cct:
        The weighted-CCT objective ``sum(w * cct)`` the approximation
        schedulers optimize; divide by the bound from
        :mod:`repro.network.bounds` (minus the release-time term) for an
        optimality gap.
    """

    average_cct: float
    p95_cct: float
    average_slowdown: float
    max_slowdown: float
    utilization: float
    fairness: float
    deadline_hit_rate: float
    weighted_average_cct: float = 0.0
    total_weighted_cct: float = 0.0

    def summary(self) -> str:
        """One-line human-readable report."""
        dl = (
            f", deadlines {self.deadline_hit_rate:.0%}"
            if not np.isnan(self.deadline_hit_rate)
            else ""
        )
        # Shown only when weights actually shifted the average, so
        # unit-weight runs keep their historical one-liner verbatim.
        wt = (
            f", w-avg CCT {self.weighted_average_cct:.2f}s"
            if self.weighted_average_cct != self.average_cct
            else ""
        )
        return (
            f"avg CCT {self.average_cct:.2f}s (p95 {self.p95_cct:.2f}s), "
            f"slowdown {self.average_slowdown:.2f}x "
            f"(max {self.max_slowdown:.2f}x), "
            f"util {self.utilization:.0%}, fairness {self.fairness:.2f}{dl}{wt}"
        )


def analyze(
    result: SimulationResult,
    coflows: list[Coflow],
    fabric: Fabric,
) -> SimulationReport:
    """Compute the report for a finished run.

    Raises ``ValueError`` when a coflow id in ``coflows`` is missing from
    the result (i.e. the run did not include it).
    """
    by_id = {}
    for i, c in enumerate(coflows):
        cid = c.coflow_id if c.coflow_id >= 0 else i
        by_id[cid] = c

    ccts = []
    weights = []
    slowdowns = []
    deadline_total = 0
    deadline_met = 0
    for cid, cct in result.ccts.items():
        if cid not in by_id:
            raise ValueError(f"coflow id {cid} missing from provided coflows")
        c = by_id[cid]
        ccts.append(cct)
        weights.append(c.weight)
        iso = c.bottleneck(fabric.n_ports, float(fabric.egress_rates.min()))
        if iso > 0:
            slowdowns.append(cct / iso)
        if c.deadline is not None:
            deadline_total += 1
            if cct <= c.deadline * (1 + 1e-9):
                deadline_met += 1

    ccts_arr = np.asarray(ccts) if ccts else np.zeros(1)
    w_arr = np.asarray(weights) if weights else np.ones(1)
    slow = np.asarray(slowdowns) if slowdowns else np.ones(1)
    weighted_sum = float((w_arr * ccts_arr).sum())
    capacity = float(fabric.egress_rates.sum())
    util = (
        result.total_bytes / (result.makespan * capacity)
        if result.makespan > 0 and capacity > 0
        else 0.0
    )
    return SimulationReport(
        average_cct=float(ccts_arr.mean()),
        p95_cct=float(np.percentile(ccts_arr, 95)),
        average_slowdown=float(slow.mean()),
        max_slowdown=float(slow.max()),
        utilization=float(util),
        fairness=jain_index(slow),
        deadline_hit_rate=(
            deadline_met / deadline_total if deadline_total else float("nan")
        ),
        weighted_average_cct=weighted_sum / float(w_arr.sum()),
        total_weighted_cct=weighted_sum,
    )
