"""Scheduling context shared between the simulator and the schedulers.

The simulator exposes the state of all *active* (arrived, unfinished) flows
to the scheduling discipline as flat numpy arrays -- the idiomatic HPC
representation that lets every discipline run vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.fabric import Fabric

__all__ = ["CoflowProgress", "SchedulingContext"]


@dataclass
class CoflowProgress:
    """Book-keeping for one coflow during simulation.

    ``sent_bytes`` is the information available to *non-clairvoyant*
    schedulers (Aalo's D-CLAS prioritizes by it); ``total_volume`` and the
    per-flow remaining volumes are only consulted by clairvoyant disciplines
    (SCF, NCF, SEBF).
    """

    coflow_id: int
    arrival_time: float
    total_volume: float
    width: int
    name: str = ""
    sent_bytes: float = 0.0
    completion_time: float | None = None
    deadline: float | None = None
    weight: float = 1.0

    @property
    def absolute_deadline(self) -> float | None:
        """Deadline as an absolute simulation time, or None."""
        if self.deadline is None:
            return None
        return self.arrival_time + self.deadline

    @property
    def finished(self) -> bool:
        return self.completion_time is not None


@dataclass
class SchedulingContext:
    """Snapshot of simulator state handed to a scheduler at each epoch.

    All flow-level attributes are parallel arrays of length ``n_flows``
    covering only active flows.  A scheduler returns an array of rates
    (bytes/second) aligned with these arrays.
    """

    time: float
    fabric: Fabric
    srcs: np.ndarray
    dsts: np.ndarray
    remaining: np.ndarray
    coflow_ids: np.ndarray
    progress: dict[int, CoflowProgress] = field(default_factory=dict)

    @property
    def n_flows(self) -> int:
        return int(self.srcs.shape[0])

    def active_coflow_ids(self) -> list[int]:
        """Distinct coflow ids with at least one active flow, ascending."""
        return [int(c) for c in np.unique(self.coflow_ids)]

    def flows_of(self, coflow_id: int) -> np.ndarray:
        """Indices (into the flat arrays) of the coflow's active flows."""
        return np.nonzero(self.coflow_ids == coflow_id)[0]

    def remaining_volume(self, coflow_id: int) -> float:
        """Total unfinished bytes of one coflow."""
        return float(self.remaining[self.coflow_ids == coflow_id].sum())

    def remaining_bottleneck(self, coflow_id: int) -> float:
        """Varys' effective bottleneck Gamma_c of the coflow's remainder.

        Computed against the *full* port capacities (the coflow's intrinsic
        finishing time if it had the fabric to itself).
        """
        idx = self.flows_of(coflow_id)
        if idx.size == 0:
            return 0.0
        n = self.fabric.n_ports
        send = np.bincount(self.srcs[idx], weights=self.remaining[idx], minlength=n)
        recv = np.bincount(self.dsts[idx], weights=self.remaining[idx], minlength=n)
        # A failed port has zero capacity; load routed through it would
        # need infinite time, while an idle dead port contributes nothing.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_out = np.where(
                self.fabric.egress_rates > 0,
                send / self.fabric.egress_rates,
                np.where(send > 0, np.inf, 0.0),
            )
            t_in = np.where(
                self.fabric.ingress_rates > 0,
                recv / self.fabric.ingress_rates,
                np.where(recv > 0, np.inf, 0.0),
            )
        return float(max(t_out.max(), t_in.max()))
