"""Scheduling context shared between the simulator and the schedulers.

The simulator exposes the state of all *active* (arrived, unfinished) flows
to the scheduling discipline as flat numpy arrays -- the idiomatic HPC
representation that lets every discipline run vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.fabric import Fabric

__all__ = ["CoflowProgress", "FlowGroups", "SchedulingContext"]


@dataclass
class CoflowProgress:
    """Book-keeping for one coflow during simulation.

    ``sent_bytes`` is the information available to *non-clairvoyant*
    schedulers (Aalo's D-CLAS prioritizes by it); ``total_volume`` and the
    per-flow remaining volumes are only consulted by clairvoyant disciplines
    (SCF, NCF, SEBF).
    """

    coflow_id: int
    arrival_time: float
    total_volume: float
    width: int
    name: str = ""
    sent_bytes: float = 0.0
    completion_time: float | None = None
    deadline: float | None = None
    weight: float = 1.0

    @property
    def absolute_deadline(self) -> float | None:
        """Deadline as an absolute simulation time, or None."""
        if self.deadline is None:
            return None
        return self.arrival_time + self.deadline

    @property
    def finished(self) -> bool:
        return self.completion_time is not None


class FlowGroups:
    """Per-coflow index structure over the flat active-flow arrays.

    Grouping the flows of each coflow with boolean masks costs
    ``O(n_flows)`` per coflow per query -- ``O(n_flows * n_coflows)`` per
    epoch once every discipline asks for every coflow's flows and
    aggregates.  ``FlowGroups`` computes the grouping once (``O(n log n)``)
    and answers every per-coflow query from contiguous slices.  The
    structure only depends on the *identity* of the active flows, not on
    their remaining volumes, so the simulator builds it once per
    ``ActiveFlows.version`` and reuses it across epochs until a flow is
    appended or removed.

    Numerical compatibility: ``indices_of`` returns exactly the array
    ``np.nonzero(coflow_ids == cid)[0]`` would (ascending order), and
    :meth:`value_sums` gathers each group into a contiguous buffer before
    calling ``np.sum`` -- same elements, same order, same pairwise
    summation tree as ``values[coflow_ids == cid].sum()`` -- so callers
    switching from masks to groups get bit-identical floats.
    """

    __slots__ = ("unique_cids", "inverse", "order", "starts", "counts", "_slot")

    def __init__(self, coflow_ids: np.ndarray) -> None:
        self.unique_cids, self.inverse = np.unique(
            coflow_ids, return_inverse=True
        )
        # Stable argsort keeps ascending flow order inside each group.
        self.order = np.argsort(self.inverse, kind="stable")
        self.counts = np.bincount(
            self.inverse, minlength=self.unique_cids.size
        )
        self.starts = np.concatenate(([0], np.cumsum(self.counts)))
        self._slot = {int(c): i for i, c in enumerate(self.unique_cids)}

    @property
    def n_groups(self) -> int:
        return int(self.unique_cids.size)

    def slot(self, coflow_id: int) -> int | None:
        """Group index of a coflow id, or None when it has no flows."""
        return self._slot.get(int(coflow_id))

    def indices_of(self, coflow_id: int) -> np.ndarray:
        """Ascending flow indices of one coflow (empty when unknown)."""
        gi = self._slot.get(int(coflow_id))
        if gi is None:
            return np.empty(0, dtype=self.order.dtype)
        return self.order[self.starts[gi]:self.starts[gi + 1]]

    def value_sums(self, values: np.ndarray) -> list[float]:
        """Per-group sums of a flow-aligned array, in ``unique_cids`` order.

        Bit-identical to ``float(values[coflow_ids == cid].sum())`` for
        each group (see class docstring).
        """
        gathered = values.take(self.order)
        starts = self.starts
        return [
            float(gathered[starts[i]:starts[i + 1]].sum())
            for i in range(self.n_groups)
        ]

    def expand(self, per_group: np.ndarray) -> np.ndarray:
        """Broadcast one value per group back onto the flow axis."""
        return np.asarray(per_group)[self.inverse]

    def all_done_mask(self, done: np.ndarray) -> np.ndarray:
        """Boolean per group: every flow of the group satisfies ``done``."""
        done_counts = np.bincount(
            self.inverse[done], minlength=self.n_groups
        )
        return done_counts == self.counts


@dataclass
class SchedulingContext:
    """Snapshot of simulator state handed to a scheduler at each epoch.

    All flow-level attributes are parallel arrays of length ``n_flows``
    covering only active flows.  A scheduler returns an array of rates
    (bytes/second) aligned with these arrays.

    ``groups`` (optional) is the simulator's cached :class:`FlowGroups`
    over ``coflow_ids``; when present, the per-coflow queries and the bulk
    aggregate methods answer from it instead of scanning the full arrays.
    When absent, every method falls back to the original mask-based
    reference implementation -- the equivalence property tests and the
    hot-path benchmark run both paths against each other.
    """

    time: float
    fabric: Fabric
    srcs: np.ndarray
    dsts: np.ndarray
    remaining: np.ndarray
    coflow_ids: np.ndarray
    progress: dict[int, CoflowProgress] = field(default_factory=dict)
    groups: FlowGroups | None = None

    @property
    def n_flows(self) -> int:
        return int(self.srcs.shape[0])

    def active_coflow_ids(self) -> list[int]:
        """Distinct coflow ids with at least one active flow, ascending."""
        if self.groups is not None:
            return [int(c) for c in self.groups.unique_cids]
        return [int(c) for c in np.unique(self.coflow_ids)]

    def flows_of(self, coflow_id: int) -> np.ndarray:
        """Indices (into the flat arrays) of the coflow's active flows."""
        if self.groups is not None:
            return self.groups.indices_of(coflow_id)
        return np.nonzero(self.coflow_ids == coflow_id)[0]

    def remaining_volume(self, coflow_id: int) -> float:
        """Total unfinished bytes of one coflow."""
        return float(self.remaining[self.coflow_ids == coflow_id].sum())

    def remaining_volumes(self) -> list[float]:
        """Remaining bytes of every active coflow, ``active_coflow_ids`` order."""
        if self.groups is not None:
            return self.groups.value_sums(self.remaining)
        return [self.remaining_volume(c) for c in self.active_coflow_ids()]

    def coflow_rate_sums(self, rates: np.ndarray) -> list[float]:
        """Aggregate rate of every active coflow, ``active_coflow_ids`` order."""
        if self.groups is not None:
            return self.groups.value_sums(rates)
        return [
            float(rates[self.coflow_ids == c].sum())
            for c in self.active_coflow_ids()
        ]

    def remaining_bottlenecks(self) -> list[float]:
        """Gamma of every active coflow's remainder, ``active_coflow_ids`` order.

        Vectorized over all coflows at once when ``groups`` is cached: one
        combined bincount keyed by ``group * n_ports + port`` accumulates
        every (coflow, port) load cell in ascending flow order -- the same
        order the per-coflow :meth:`remaining_bottleneck` bincount uses,
        so the sums (and the resulting Gammas) are bit-identical.
        """
        g = self.groups
        if g is None:
            return [
                self.remaining_bottleneck(c) for c in self.active_coflow_ids()
            ]
        k = g.n_groups
        n = self.fabric.n_ports
        cell = g.inverse * n
        send = np.bincount(
            cell + self.srcs, weights=self.remaining, minlength=k * n
        ).reshape(k, n)
        recv = np.bincount(
            cell + self.dsts, weights=self.remaining, minlength=k * n
        ).reshape(k, n)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_out = np.where(
                self.fabric.egress_rates > 0,
                send / self.fabric.egress_rates,
                np.where(send > 0, np.inf, 0.0),
            )
            t_in = np.where(
                self.fabric.ingress_rates > 0,
                recv / self.fabric.ingress_rates,
                np.where(recv > 0, np.inf, 0.0),
            )
        per = np.maximum(t_out.max(axis=1), t_in.max(axis=1))
        return [float(v) for v in per]

    def remaining_bottleneck(self, coflow_id: int) -> float:
        """Varys' effective bottleneck Gamma_c of the coflow's remainder.

        Computed against the *full* port capacities (the coflow's intrinsic
        finishing time if it had the fabric to itself).
        """
        idx = self.flows_of(coflow_id)
        if idx.size == 0:
            return 0.0
        n = self.fabric.n_ports
        send = np.bincount(self.srcs[idx], weights=self.remaining[idx], minlength=n)
        recv = np.bincount(self.dsts[idx], weights=self.remaining[idx], minlength=n)
        # A failed port has zero capacity; load routed through it would
        # need infinite time, while an idle dead port contributes nothing.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_out = np.where(
                self.fabric.egress_rates > 0,
                send / self.fabric.egress_rates,
                np.where(send > 0, np.inf, 0.0),
            )
            t_in = np.where(
                self.fabric.ingress_rates > 0,
                recv / self.fabric.ingress_rates,
                np.where(recv > 0, np.inf, 0.0),
            )
        return float(max(t_out.max(), t_in.max()))
