"""The coflow abstraction.

A *flow* is a point-to-point transfer ``[src, dst, volume]`` (Chowdhury &
Stoica, HotNets'12; CCF paper §II-B).  A *coflow* is a group of parallel
flows that share a common performance goal -- e.g. all shuffle flows of one
distributed join.  The metric of interest is the *coflow completion time*
(CCT): the finish time of the slowest flow in the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Flow", "Coflow", "coflow_from_matrix"]


@dataclass
class Flow:
    """A single point-to-point data transfer.

    Parameters
    ----------
    src, dst:
        Port (machine) indices in ``[0, n_ports)``.  ``src == dst`` is
        rejected: local data movement consumes no network resources
        (CCF paper §III-A) and must be filtered out before simulation.
    volume:
        Transfer size in bytes.  Must be strictly positive.
    flow_id:
        Unique identifier assigned by the owning :class:`Coflow`.
    """

    src: int
    dst: int
    volume: float
    flow_id: int = -1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(
                f"flow src == dst == {self.src}; local movement is not a network flow"
            )
        if not self.volume > 0:
            raise ValueError(f"flow volume must be > 0, got {self.volume}")
        if self.src < 0 or self.dst < 0:
            raise ValueError("port indices must be non-negative")


@dataclass
class Coflow:
    """A group of parallel flows with a shared completion-time goal.

    Parameters
    ----------
    flows:
        The member flows.  Duplicate ``(src, dst)`` pairs are merged into a
        single flow (the paper notes flows between the same pair of nodes
        are combined "in real implementations", §II-B).
    arrival_time:
        Simulation time (seconds) at which the coflow becomes eligible for
        scheduling.  The CCF paper assumes all flows of a coflow start
        together; online arrivals are supported for the Aalo-style
        schedulers.
    coflow_id:
        Identifier used in simulation results.
    name:
        Optional human-readable label.
    deadline:
        Optional completion deadline in seconds *relative to arrival*.
        Only the deadline-aware scheduler consults it (Varys' deadline
        mode); every other discipline ignores it.
    weight:
        Relative priority weight (default 1).  Consulted by the weighted
        fair-sharing discipline: a weight-2 coflow's flows receive twice
        the rate of weight-1 flows wherever they contend.
    """

    flows: list[Flow] = field(default_factory=list)
    arrival_time: float = 0.0
    coflow_id: int = -1
    name: str = ""
    deadline: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (relative to arrival)")
        if not self.weight > 0:
            raise ValueError("weight must be positive")
        merged: dict[tuple[int, int], float] = {}
        for f in self.flows:
            merged[(f.src, f.dst)] = merged.get((f.src, f.dst), 0.0) + f.volume
        self.flows = [
            Flow(src=s, dst=d, volume=v, flow_id=i)
            for i, ((s, d), v) in enumerate(sorted(merged.items()))
        ]

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def flow_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(srcs, dsts, volumes)`` as flat arrays, cached on the coflow.

        The simulator admits coflows by appending these arrays to its
        active-flow columns; caching avoids rebuilding them from the
        ``Flow`` objects on every (re)admission.  The cache assumes the
        flow list is not mutated after first use -- the constructor
        already canonicalizes (merges + sorts) the flows, and the
        simulator treats coflows as immutable.
        """
        cached = getattr(self, "_flow_arrays", None)
        if cached is None:
            cached = (
                np.array([f.src for f in self.flows], dtype=np.int64),
                np.array([f.dst for f in self.flows], dtype=np.int64),
                np.array([f.volume for f in self.flows], dtype=float),
            )
            self._flow_arrays = cached
        return cached

    @property
    def total_volume(self) -> float:
        """Sum of all flow volumes in bytes (the coflow *size*)."""
        return float(sum(f.volume for f in self.flows))

    @property
    def width(self) -> int:
        """Number of distinct (src, dst) flows (the coflow *width*)."""
        return len(self.flows)

    @property
    def max_port(self) -> int:
        """Largest port index referenced by any flow."""
        if not self.flows:
            return -1
        return max(max(f.src, f.dst) for f in self.flows)

    def port_loads(self, n_ports: int) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate (send_bytes, recv_bytes) per port.

        Returns two arrays of length ``n_ports``: bytes each port must emit
        and ingest for this coflow.  These are the quantities bounded by
        ``T`` in the paper's model (3).
        """
        send = np.zeros(n_ports)
        recv = np.zeros(n_ports)
        for f in self.flows:
            send[f.src] += f.volume
            recv[f.dst] += f.volume
        return send, recv

    def bottleneck(self, n_ports: int, rate: float = 1.0) -> float:
        """The coflow's bandwidth-optimal CCT on an idle fabric.

        Equals ``max(max_i send_i, max_j recv_j) / rate`` -- the "effective
        bottleneck" Gamma of Varys.  With MADD rate allocation every flow
        finishes exactly at this time, so it is also the minimum possible
        CCT for the coflow in isolation.
        """
        if not self.flows:
            return 0.0
        send, recv = self.port_loads(n_ports)
        return float(max(send.max(), recv.max()) / rate)

    def volume_matrix(self, n_ports: int) -> np.ndarray:
        """Dense ``(n_ports, n_ports)`` matrix ``V[i, j]`` of flow volumes."""
        mat = np.zeros((n_ports, n_ports))
        for f in self.flows:
            mat[f.src, f.dst] += f.volume
        return mat


def coflow_from_matrix(
    volumes: np.ndarray | Iterable[Iterable[float]],
    *,
    arrival_time: float = 0.0,
    coflow_id: int = -1,
    name: str = "",
    min_volume: float = 0.0,
    weight: float = 1.0,
) -> Coflow:
    """Build a :class:`Coflow` from a square volume matrix.

    ``volumes[i, j]`` is the number of bytes to move from port ``i`` to
    port ``j``.  The diagonal (local movement) and entries ``<= min_volume``
    are ignored.
    """
    vol = np.asarray(volumes, dtype=float)
    if vol.ndim != 2 or vol.shape[0] != vol.shape[1]:
        raise ValueError(f"volume matrix must be square, got shape {vol.shape}")
    if (vol < 0).any():
        raise ValueError("volume matrix entries must be non-negative")
    srcs, dsts = np.nonzero(vol > min_volume)
    flows = [
        Flow(src=int(i), dst=int(j), volume=float(vol[i, j]))
        for i, j in zip(srcs, dsts)
        if i != j
    ]
    return Coflow(
        flows=flows,
        arrival_time=arrival_time,
        coflow_id=coflow_id,
        name=name,
        weight=weight,
    )
