"""Flow-recovery policies for port failures during simulation.

The dynamics layer (:mod:`repro.network.dynamics`) can kill a port
mid-run by driving its rate to zero.  Any active flow whose source can no
longer send or whose destination can no longer receive is *stranded*; the
simulator hands every stranded flow to a pluggable
:class:`RecoveryPolicy`, which answers with one of three actions:

``abort``
    Give up on the whole coflow.  The coflow is removed from the run and
    reported in ``SimulationResult.failed_coflows``; its already-delivered
    bytes are counted as lost work.
``retry``
    Park the flow until its ports are back, then restart it.  A
    configurable *lost-progress fraction* of the bytes already delivered
    must be re-sent (a dead receiver loses everything it buffered:
    fraction 1; an interrupted sender with durable receiver state loses
    nothing: fraction 0), and repeated failures of the same flow back off
    exponentially before restarting.
``replan``
    Re-run the paper's co-optimization for the lost chunks: data destined
    to a dead node is reassigned to the surviving nodes through
    :class:`repro.core.incremental.IncrementalPlanner` (Algorithm 1's
    step rule, restricted to live destinations and seeded with the
    current outstanding port loads), and the affected flows are
    regenerated mid-run toward their new destinations.  Flows whose
    *source* died cannot be replanned -- the data lives on the dead node
    -- so they fall back to retry semantics.

The :class:`RecoveryManager` owns the mechanics shared by all policies:
stranding detection, the suspended-flow pool, resume scheduling, and the
structured per-event failure log surfaced on ``SimulationResult``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from typing import TYPE_CHECKING

import numpy as np

from repro.network.fabric import Fabric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.incremental import IncrementalPlanner

__all__ = [
    "ActiveFlows",
    "FailureRecord",
    "FabricView",
    "StrandedFlow",
    "Abort",
    "Suspend",
    "Reroute",
    "RecoveryPolicy",
    "AbortPolicy",
    "RetryPolicy",
    "ReplanPolicy",
    "RecoveryManager",
    "make_recovery_policy",
    "RECOVERY_POLICIES",
]


@dataclass
class ActiveFlows:
    """Flat parallel arrays describing the simulator's active flows.

    ``volume0`` is each flow's volume at its latest (re)start and
    ``attempts`` counts how many times it has been stranded -- both are
    only consulted by the recovery layer, but the simulator maintains
    them unconditionally so recovery can engage at any failure event.

    ``version`` increments on every structural change (append / keep) so
    callers can cache per-coflow groupings and other flow-aligned state
    across epochs and rebuild only when the flow set actually changes.

    ``view_factor`` is an optional flow-aligned column of noise factors
    on the scheduler's view of remaining volumes.  It stays ``None``
    unless the owning simulator activates it; once active it rides along
    through every append / keep, with NaN marking rows whose factor has
    not been drawn yet (appends from the recovery layer cannot know the
    noise model, so they leave NaN for the simulator to fill lazily).
    """

    srcs: np.ndarray
    dsts: np.ndarray
    remaining: np.ndarray
    volume0: np.ndarray
    attempts: np.ndarray
    cids: np.ndarray
    version: int = 0
    view_factor: np.ndarray | None = None

    @classmethod
    def empty(cls) -> "ActiveFlows":
        return cls(
            srcs=np.empty(0, dtype=np.int64),
            dsts=np.empty(0, dtype=np.int64),
            remaining=np.empty(0),
            volume0=np.empty(0),
            attempts=np.empty(0, dtype=np.int64),
            cids=np.empty(0, dtype=np.int64),
        )

    @property
    def size(self) -> int:
        return int(self.srcs.shape[0])

    def append(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        remaining: np.ndarray,
        volume0: np.ndarray,
        attempts: np.ndarray,
        cids: np.ndarray,
        view_factor: np.ndarray | None = None,
    ) -> None:
        self.srcs = np.concatenate([self.srcs, srcs]).astype(np.int64)
        self.dsts = np.concatenate([self.dsts, dsts]).astype(np.int64)
        self.remaining = np.concatenate([self.remaining, remaining])
        self.volume0 = np.concatenate([self.volume0, volume0])
        self.attempts = np.concatenate([self.attempts, attempts]).astype(np.int64)
        self.cids = np.concatenate([self.cids, cids]).astype(np.int64)
        if self.view_factor is not None:
            if view_factor is None:
                view_factor = np.full(np.shape(srcs)[0], np.nan)
            self.view_factor = np.concatenate(
                [self.view_factor, np.asarray(view_factor, dtype=float)]
            )
        self.version += 1

    def keep(self, mask: np.ndarray) -> None:
        """Drop every flow where ``mask`` is False."""
        self.srcs = self.srcs[mask]
        self.dsts = self.dsts[mask]
        self.remaining = self.remaining[mask]
        self.volume0 = self.volume0[mask]
        self.attempts = self.attempts[mask]
        self.cids = self.cids[mask]
        if self.view_factor is not None:
            self.view_factor = self.view_factor[mask]
        self.version += 1


@dataclass(frozen=True)
class FailureRecord:
    """One structured entry of the failure log.

    ``kind`` is one of ``port_failed``, ``port_recovered``, ``abort``,
    ``suspend``, ``reroute``, ``local_delivery``, ``resume`` or
    ``unrecoverable``.  Flow-level kinds aggregate per coflow per event
    time; ``bytes_lost`` is the volume that must be re-transmitted (or,
    for aborts, the useful work thrown away).
    """

    time: float
    kind: str
    port: int = -1
    coflow_id: int = -1
    flows: int = 0
    bytes_lost: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class StrandedFlow:
    """A flow pinned to a dead port, as presented to a policy."""

    src: int
    dst: int
    remaining: float
    volume0: float
    coflow_id: int
    attempts: int
    src_dead: bool
    dst_dead: bool

    @property
    def progress(self) -> float:
        """Bytes already delivered before the failure."""
        return max(self.volume0 - self.remaining, 0.0)


@dataclass(frozen=True)
class FabricView:
    """Snapshot handed to policies when a batch of flows strands."""

    time: float
    egress_alive: np.ndarray
    ingress_alive: np.ndarray
    send_load: np.ndarray
    recv_load: np.ndarray

    @property
    def alive(self) -> np.ndarray:
        return self.egress_alive & self.ingress_alive


# -- policy actions ------------------------------------------------------
@dataclass(frozen=True)
class Abort:
    """Fail the stranded flow's whole coflow."""


@dataclass(frozen=True)
class Suspend:
    """Park the flow; restart with ``restart_remaining`` bytes once its
    ports are alive and ``resume_after`` (absolute time) has passed."""

    resume_after: float
    restart_remaining: float
    bytes_lost: float


@dataclass(frozen=True)
class Reroute:
    """Regenerate the flow toward ``new_dst`` with ``volume`` bytes.
    ``new_dst == src`` means the chunk stays local (delivered at once)."""

    new_dst: int
    volume: float
    bytes_lost: float


RecoveryAction = Abort | Suspend | Reroute


class RecoveryPolicy(ABC):
    """Strategy deciding what happens to each stranded flow."""

    #: Registry name; overridden by subclasses.
    name: str = "base"

    def reset(self) -> None:
        """Clear cross-run state (called once per simulation run)."""

    def begin_batch(self, view: FabricView) -> None:
        """Hook invoked once per stranding event, before any decide()."""

    @abstractmethod
    def decide(self, flow: StrandedFlow, view: FabricView) -> RecoveryAction:
        """Return the action for one stranded flow."""

    def decide_batch(
        self, flows: list[StrandedFlow], view: FabricView
    ) -> list[RecoveryAction]:
        """Actions for all flows stranded by one event, aligned by index.

        Default: decide each flow independently.  Policies that must see
        the whole batch (replan keeps each lost chunk together) override
        this.
        """
        return [self.decide(f, view) for f in flows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AbortPolicy(RecoveryPolicy):
    """Fail fast: any stranded flow kills its coflow."""

    name = "abort"

    def decide(self, flow: StrandedFlow, view: FabricView) -> RecoveryAction:
        return Abort()


class RetryPolicy(RecoveryPolicy):
    """Wait for the port to come back, then restart the flow.

    Parameters
    ----------
    lost_progress_fraction:
        Share of the flow's already-delivered bytes that must be re-sent
        on restart.  1.0 (default) models a receiver that lost all
        buffered state; 0.0 resumes exactly where the transfer stopped.
    backoff_base:
        Base delay (seconds) before restarting after the n-th stranding
        of the same flow: ``backoff_base * 2**(n-1)``.  0 (default)
        restarts the instant the port recovers.
    """

    name = "retry"

    def __init__(
        self,
        *,
        lost_progress_fraction: float = 1.0,
        backoff_base: float = 0.0,
    ) -> None:
        if not 0.0 <= lost_progress_fraction <= 1.0:
            raise ValueError("lost_progress_fraction must be in [0, 1]")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        self.lost_progress_fraction = lost_progress_fraction
        self.backoff_base = backoff_base

    def suspend(self, flow: StrandedFlow, now: float) -> Suspend:
        lost = self.lost_progress_fraction * flow.progress
        delay = self.backoff_base * (2.0 ** flow.attempts)
        return Suspend(
            resume_after=now + delay,
            restart_remaining=flow.remaining + lost,
            bytes_lost=lost,
        )

    def decide(self, flow: StrandedFlow, view: FabricView) -> RecoveryAction:
        return self.suspend(flow, view.time)


class ReplanPolicy(RetryPolicy):
    """Re-run Algorithm 1 for chunks whose destination died.

    Destination-dead flows are reassigned to surviving nodes through an
    :class:`IncrementalPlanner` seeded with the current outstanding port
    loads and restricted (via its ``allowed`` mask) to fully-alive
    destinations, so consecutive reassignments spread across survivors
    exactly as the paper's greedy spreads partitions.  The full chunk is
    re-sent: whatever the dead receiver had buffered is gone.

    Source-dead flows (data resident on the failed node) and batches with
    no surviving destination fall back to the inherited retry semantics.
    """

    name = "replan"

    def __init__(
        self,
        *,
        lost_progress_fraction: float = 1.0,
        backoff_base: float = 0.0,
        locality_tiebreak: bool = True,
    ) -> None:
        super().__init__(
            lost_progress_fraction=lost_progress_fraction,
            backoff_base=backoff_base,
        )
        self.locality_tiebreak = locality_tiebreak
        self._planner: "IncrementalPlanner | None" = None

    def reset(self) -> None:
        self._planner = None

    def begin_batch(self, view: FabricView) -> None:
        # Imported here: repro.core depends on repro.network at module
        # load, so the network layer must not import core eagerly.
        from repro.core.incremental import IncrementalPlanner

        alive = view.alive
        if not alive.any():
            self._planner = None
            return
        self._planner = IncrementalPlanner(
            n_nodes=alive.shape[0],
            initial_send=np.where(alive, view.send_load, 0.0),
            initial_recv=np.where(alive, view.recv_load, 0.0),
            locality_tiebreak=self.locality_tiebreak,
            allowed=alive,
        )

    def decide(self, flow: StrandedFlow, view: FabricView) -> RecoveryAction:
        actions = self.decide_batch([flow], view)
        return actions[0]

    def decide_batch(
        self, flows: list[StrandedFlow], view: FabricView
    ) -> list[RecoveryAction]:
        """Reassign each lost chunk -- as one unit -- to a survivor.

        All stranded flows feeding the same dead destination within one
        coflow carry pieces of the same partition, which must stay
        co-located for downstream operators.  They form one chunk column
        of Algorithm 1's h-matrix (``col[src] = bytes resident on src``)
        and are assigned together to a single new destination.
        """
        actions: dict[int, RecoveryAction] = {}
        chunks: dict[tuple[int, int], list[int]] = {}
        for i, f in enumerate(flows):
            if f.src_dead or self._planner is None:
                actions[i] = self.suspend(f, view.time)
            else:
                chunks.setdefault((f.coflow_id, f.dst), []).append(i)
        for (_, _), members in sorted(chunks.items()):
            col = np.zeros(self._planner.n)
            for i in members:
                col[flows[i].src] += flows[i].volume0
            new_dst = self._planner.assign(col)
            for i in members:
                actions[i] = Reroute(
                    new_dst=new_dst,
                    volume=flows[i].volume0,
                    bytes_lost=flows[i].progress,
                )
        return [actions[i] for i in range(len(flows))]


@dataclass
class _Suspended:
    """One parked flow waiting for its ports to come back."""

    src: int
    dst: int
    remaining: float
    volume0: float
    attempts: int
    coflow_id: int
    resume_after: float


class RecoveryManager:
    """Mechanics shared by all recovery policies.

    Owned by one ``CoflowSimulator.run`` invocation: detects stranded
    flows after every fabric change, routes them through the policy,
    keeps the suspended pool, and accumulates the failure log.
    """

    def __init__(self, policy: RecoveryPolicy, n_ports: int) -> None:
        self.policy = policy
        self.n_ports = n_ports
        self.records: list[FailureRecord] = []
        self.failed_coflows: dict[int, float] = {}
        self._suspended: list[_Suspended] = []
        self._was_alive_e = np.ones(n_ports, dtype=bool)
        self._was_alive_i = np.ones(n_ports, dtype=bool)
        policy.reset()

    # -- state queries ---------------------------------------------------
    @property
    def has_suspended(self) -> bool:
        return bool(self._suspended)

    def suspended_coflow_ids(self) -> set[int]:
        """Ids of coflows with at least one parked flow."""
        return {s.coflow_id for s in self._suspended}

    def any_dead(self, fabric: Fabric) -> bool:
        return not (fabric.egress_alive().all() and fabric.ingress_alive().all())

    def next_wakeup(self, fabric: Fabric, now: float) -> float | None:
        """Earliest future resume time among suspended flows whose ports
        are already alive (port recoveries are dynamics events and bound
        the epoch separately)."""
        alive_e = fabric.egress_alive()
        alive_i = fabric.ingress_alive()
        times = [
            s.resume_after
            for s in self._suspended
            if s.resume_after > now + 1e-15
            and alive_e[s.src]
            and alive_i[s.dst]
        ]
        return min(times) if times else None

    # -- the per-epoch step ---------------------------------------------
    def step(
        self,
        fabric: Fabric,
        now: float,
        flows: ActiveFlows,
        progress: dict,
    ) -> tuple[list[int], list[int]]:
        """Record port transitions, resume due flows, strand dead ones.

        Returns ``(aborted_coflow_ids, candidates)`` where ``candidates``
        are coflows that may have just completed through local delivery
        (the caller must check they have no remaining flows).
        """
        alive_e = fabric.egress_alive()
        alive_i = fabric.ingress_alive()
        self._log_port_transitions(now, alive_e, alive_i)

        self._resume_due(now, alive_e, alive_i, flows)

        stranded = ~alive_e[flows.srcs] | ~alive_i[flows.dsts]
        aborted: list[int] = []
        local: list[int] = []
        if stranded.any():
            aborted, local = self._handle_stranded(
                fabric, now, flows, progress, stranded, alive_e, alive_i
            )
        return aborted, local

    def _log_port_transitions(
        self, now: float, alive_e: np.ndarray, alive_i: np.ndarray
    ) -> None:
        died = (self._was_alive_e & ~alive_e) | (self._was_alive_i & ~alive_i)
        recovered = (
            (~self._was_alive_e | ~self._was_alive_i) & alive_e & alive_i
        )
        for p in np.flatnonzero(died):
            self.records.append(
                FailureRecord(time=now, kind="port_failed", port=int(p))
            )
        for p in np.flatnonzero(recovered):
            self.records.append(
                FailureRecord(time=now, kind="port_recovered", port=int(p))
            )
        self._was_alive_e = alive_e.copy()
        self._was_alive_i = alive_i.copy()

    def _resume_due(
        self,
        now: float,
        alive_e: np.ndarray,
        alive_i: np.ndarray,
        flows: ActiveFlows,
    ) -> None:
        due = [
            s
            for s in self._suspended
            if s.resume_after <= now + 1e-15
            and alive_e[s.src]
            and alive_i[s.dst]
            and s.coflow_id not in self.failed_coflows
        ]
        if not due:
            return
        due_ids = {id(s) for s in due}
        self._suspended = [s for s in self._suspended if id(s) not in due_ids]
        flows.append(
            srcs=np.array([s.src for s in due]),
            dsts=np.array([s.dst for s in due]),
            remaining=np.array([s.remaining for s in due]),
            volume0=np.array([s.remaining for s in due]),
            attempts=np.array([s.attempts for s in due]),
            cids=np.array([s.coflow_id for s in due]),
        )
        by_cid: dict[int, int] = {}
        for s in due:
            by_cid[s.coflow_id] = by_cid.get(s.coflow_id, 0) + 1
        for cid, n in sorted(by_cid.items()):
            self.records.append(
                FailureRecord(
                    time=now, kind="resume", coflow_id=cid, flows=n
                )
            )

    def _handle_stranded(
        self,
        fabric: Fabric,
        now: float,
        flows: ActiveFlows,
        progress: dict,
        stranded: np.ndarray,
        alive_e: np.ndarray,
        alive_i: np.ndarray,
    ) -> tuple[list[int], list[int]]:
        n = self.n_ports
        live = ~stranded
        view = FabricView(
            time=now,
            egress_alive=alive_e,
            ingress_alive=alive_i,
            send_load=np.bincount(
                flows.srcs[live], weights=flows.remaining[live], minlength=n
            ),
            recv_load=np.bincount(
                flows.dsts[live], weights=flows.remaining[live], minlength=n
            ),
        )
        self.policy.begin_batch(view)

        keep = np.ones(flows.size, dtype=bool)
        aborted: list[int] = []
        new_flows: list[tuple[int, int, float, float, int, int]] = []
        agg: dict[tuple[int, str], list[float]] = {}

        batch: list[StrandedFlow] = []
        for i in np.flatnonzero(stranded):
            cid = int(flows.cids[i])
            keep[i] = False
            if cid in self.failed_coflows:
                continue
            batch.append(
                StrandedFlow(
                    src=int(flows.srcs[i]),
                    dst=int(flows.dsts[i]),
                    remaining=float(flows.remaining[i]),
                    volume0=float(flows.volume0[i]),
                    coflow_id=cid,
                    attempts=int(flows.attempts[i]),
                    src_dead=not alive_e[flows.srcs[i]],
                    dst_dead=not alive_i[flows.dsts[i]],
                )
            )
        actions = self.policy.decide_batch(batch, view)
        if len(actions) != len(batch):  # pragma: no cover - defensive
            raise ValueError(
                f"recovery policy returned {len(actions)} actions "
                f"for {len(batch)} stranded flows"
            )

        for sf, action in zip(batch, actions):
            cid = sf.coflow_id
            if cid in self.failed_coflows:
                continue
            if isinstance(action, Abort):
                self.failed_coflows[cid] = now
                aborted.append(cid)
                wasted = float(progress[cid].sent_bytes)
                self.records.append(
                    FailureRecord(
                        time=now,
                        kind="abort",
                        coflow_id=cid,
                        flows=1,
                        bytes_lost=wasted,
                        detail=f"stranded flow {sf.src}->{sf.dst}",
                    )
                )
            elif isinstance(action, Suspend):
                self._suspended.append(
                    _Suspended(
                        src=sf.src,
                        dst=sf.dst,
                        remaining=action.restart_remaining,
                        volume0=sf.volume0,
                        attempts=sf.attempts + 1,
                        coflow_id=cid,
                        resume_after=action.resume_after,
                    )
                )
                key = (cid, "suspend")
                agg.setdefault(key, [0.0, 0.0])
                agg[key][0] += 1
                agg[key][1] += action.bytes_lost
            else:  # Reroute
                if action.new_dst == sf.src:
                    key = (cid, "local_delivery")
                else:
                    new_flows.append(
                        (sf.src, action.new_dst, action.volume,
                         action.volume, sf.attempts + 1, cid)
                    )
                    key = (cid, "reroute")
                agg.setdefault(key, [0.0, 0.0])
                agg[key][0] += 1
                agg[key][1] += action.bytes_lost

        # An aborted coflow takes all of its flows down, active and parked.
        if aborted:
            failed = set(aborted)
            keep &= ~np.isin(flows.cids, list(failed))
            self._suspended = [
                s for s in self._suspended if s.coflow_id not in failed
            ]
            new_flows = [f for f in new_flows if f[5] not in failed]

        flows.keep(keep)
        if new_flows:
            flows.append(
                srcs=np.array([f[0] for f in new_flows]),
                dsts=np.array([f[1] for f in new_flows]),
                remaining=np.array([f[2] for f in new_flows], dtype=float),
                volume0=np.array([f[3] for f in new_flows], dtype=float),
                attempts=np.array([f[4] for f in new_flows]),
                cids=np.array([f[5] for f in new_flows]),
            )
        for (cid, kind), (n_f, lost) in sorted(agg.items()):
            self.records.append(
                FailureRecord(
                    time=now,
                    kind=kind,
                    coflow_id=cid,
                    flows=int(n_f),
                    bytes_lost=float(lost),
                )
            )
        local = sorted({cid for (cid, kind) in agg if kind == "local_delivery"})
        return aborted, local

    def abort_unrecoverable(self, now: float) -> list[int]:
        """Fail every coflow still parked with no way to ever resume."""
        aborted = sorted({s.coflow_id for s in self._suspended})
        for cid in aborted:
            flows = [s for s in self._suspended if s.coflow_id == cid]
            self.failed_coflows[cid] = now
            self.records.append(
                FailureRecord(
                    time=now,
                    kind="unrecoverable",
                    coflow_id=cid,
                    flows=len(flows),
                    bytes_lost=float(sum(s.remaining for s in flows)),
                    detail="suspended flows can never resume "
                    "(no recovery event scheduled)",
                )
            )
        self._suspended = []
        return aborted


#: Registry of policy names -> zero-config constructors.
RECOVERY_POLICIES: dict[str, type[RecoveryPolicy]] = {
    "abort": AbortPolicy,
    "retry": RetryPolicy,
    "replan": ReplanPolicy,
}


def make_recovery_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Instantiate a recovery policy by registry name."""
    try:
        cls = RECOVERY_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}; "
            f"choose from {sorted(RECOVERY_POLICIES)}"
        ) from None
    return cls(**kwargs)
