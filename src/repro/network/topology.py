"""Link-capacity topology extension beyond the non-blocking switch.

The CCF paper models the fabric as a non-blocking switch but notes (§II-B,
§V) that the framework "can be easily extended to complex network
conditions (e.g., routing) by adding parameters to these two constraints" --
the RAPIER line of work.  This module provides that extension: a two-level
oversubscribed tree (racks of hosts behind uplinks into a non-blocking
core).  Each flow traverses ``host NIC -> rack uplink -> core -> rack
downlink -> host NIC``; intra-rack flows stay below the uplink.

The extension yields (a) a generalized closed-form lower bound on CCT that
accounts for shared uplinks, and (b) a :class:`repro.network.fabric.Fabric`
-compatible validation hook, so CCF plans can be evaluated under
oversubscription (an ablation the paper leaves to future work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.flow import Coflow

__all__ = ["TwoLevelTopology"]


@dataclass
class TwoLevelTopology:
    """Hosts grouped into racks behind (possibly oversubscribed) uplinks.

    Parameters
    ----------
    n_hosts:
        Number of machines.
    hosts_per_rack:
        Rack size; the last rack may be smaller.
    host_rate:
        NIC speed in bytes/second.
    oversubscription:
        Ratio of aggregate host bandwidth in a rack to its uplink
        bandwidth.  ``1.0`` means a full-bisection network (equivalent to
        the paper's non-blocking switch); ``4.0`` means the uplink carries
        only a quarter of the rack's aggregate NIC bandwidth.
    """

    n_hosts: int
    hosts_per_rack: int
    host_rate: float = 128e6
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.n_hosts <= 0 or self.hosts_per_rack <= 0:
            raise ValueError("n_hosts and hosts_per_rack must be positive")
        if self.host_rate <= 0 or self.oversubscription < 1.0:
            raise ValueError("host_rate > 0 and oversubscription >= 1 required")

    @property
    def n_racks(self) -> int:
        return -(-self.n_hosts // self.hosts_per_rack)

    def rack_of(self, host: int) -> int:
        """Rack index of a host."""
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_rack

    def rack_size(self, rack: int) -> int:
        """Number of hosts in a rack (last rack may be partial)."""
        lo = rack * self.hosts_per_rack
        return min(self.hosts_per_rack, self.n_hosts - lo)

    def uplink_rate(self, rack: int) -> float:
        """Capacity of a rack's uplink (and downlink) in bytes/second."""
        return self.rack_size(rack) * self.host_rate / self.oversubscription

    def optimal_cct(self, coflow: Coflow) -> float:
        """Closed-form bandwidth-optimal CCT under this topology.

        Generalizes the non-blocking bound ``max port load / rate`` with two
        extra constraint families: bytes leaving each rack through its
        uplink and bytes entering each rack through its downlink.  At
        ``oversubscription == 1`` the extra terms can still bind (a rack
        uplink carries the traffic of all of its hosts), but for
        all-to-all-style shuffles they coincide with the NIC bound.
        """
        if coflow.max_port >= self.n_hosts:
            raise ValueError("coflow references host beyond topology size")
        n = self.n_hosts
        send, recv = coflow.port_loads(n)
        nic_bound = max(send.max(), recv.max()) / self.host_rate

        racks = np.arange(n) // self.hosts_per_rack
        up = np.zeros(self.n_racks)
        down = np.zeros(self.n_racks)
        for f in coflow.flows:
            rs, rd = racks[f.src], racks[f.dst]
            if rs != rd:  # intra-rack traffic does not touch uplinks
                up[rs] += f.volume
                down[rd] += f.volume
        uplink_rates = np.array([self.uplink_rate(r) for r in range(self.n_racks)])
        link_bound = max(
            (up / uplink_rates).max(initial=0.0),
            (down / uplink_rates).max(initial=0.0),
        )
        return float(max(nic_bound, link_bound))

    def cct_inflation(self, coflow: Coflow) -> float:
        """Ratio of this topology's optimal CCT to the non-blocking one.

        1.0 means oversubscription does not hurt this coflow; larger values
        quantify how much the paper's non-blocking assumption underestimates
        communication time for rack-concentrated traffic.
        """
        base = coflow.bottleneck(self.n_hosts, rate=self.host_rate)
        if base == 0:
            return 1.0
        return self.optimal_cct(coflow) / base
