"""Lower bounds on the weighted coflow completion-time objective.

The tournament experiment and the LP-ordering scheduler both need a
ground-truth reference: how far is a schedule from optimal?  Exact optima
are out of reach (coflow scheduling is NP-hard even on a single switch,
via concurrent open shop), but the *interval-indexed LP relaxation* of
Qiu, Stein & Zhong (SPAA'15; experimental-analysis follow-up
arXiv:1603.07981) gives a polynomial-size linear program whose optimum is
a certified lower bound on ``sum_k w_k * C_k`` -- the total weighted
completion time -- for *every* feasible schedule.  Reporting each
scheduler's achieved objective divided by this bound yields an
*optimality gap* that is always >= 1 and usually far below the proven
worst-case ratios.

Formulation
-----------
Time is split into geometrically growing intervals ``(tau_{l-1}, tau_l]``
with ``tau_l = tau_0 * growth**l``.  Binary-relaxed variables
``x[k, l] in [0, 1]`` say "coflow ``k`` completes in interval ``l``":

* assignment: ``sum_l x[k, l] == 1`` for every coflow ``k``;
* port capacity: for every port/direction ``p`` and interval ``l``, the
  load of coflows completing by ``tau_l`` fits in the capacity available
  up to ``tau_l``: ``sum_k load_p(k) * sum_{l' <= l} x[k, l'] <=
  rate_p * tau_l``;
* release: ``x[k, l] = 0`` whenever ``tau_l < r_k + Gamma_k`` (a coflow
  cannot complete before its release time plus its isolation bottleneck).

The objective charges ``c[k, l] = max(tau_{l-1}, r_k + Gamma_k)`` when
coflow ``k`` completes in interval ``l``; any feasible schedule induces a
feasible 0/1 assignment whose LP cost is at most its true weighted
completion time, so the LP optimum is a valid lower bound.  Smaller
``growth`` factors tighten the bound at the cost of more intervals.

The LP is assembled sparsely and handed to ``scipy.optimize.linprog``
(method ``highs``), the same solver machinery :mod:`repro.core.relax`
uses for the planner's relaxation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.network.fabric import Fabric
from repro.network.flow import Coflow

__all__ = [
    "IntervalLPSolution",
    "WeightedCCTBound",
    "interval_indexed_lp",
    "weighted_cct_lower_bound",
]

#: Default geometric growth factor between consecutive interval endpoints.
DEFAULT_GROWTH: float = 2.0


@dataclass(frozen=True)
class IntervalLPSolution:
    """Solution of the interval-indexed LP over a raw load matrix.

    Attributes
    ----------
    objective:
        LP optimum: a lower bound on ``sum_k w_k * C_k``.
    completion_times:
        Fractional LP completion time per coflow, ``sum_l c[k,l] x[k,l]``.
        Ordering coflows by this value is the Qiu/Stein/Zhong scheduling
        rule.
    n_intervals:
        Number of geometric intervals the LP used.
    """

    objective: float
    completion_times: np.ndarray
    n_intervals: int


@dataclass(frozen=True)
class WeightedCCTBound:
    """Certified lower bound on an instance's weighted completion time.

    Attributes
    ----------
    lower_bound:
        The LP optimum: no feasible schedule achieves a smaller
        ``sum_k w_k * C_k`` (absolute completion times).
    isolation_bound:
        The trivial bound ``sum_k w_k * (r_k + Gamma_k)``; the LP bound
        always dominates it.
    lp_completion_times:
        Fractional LP completion time per coflow, keyed by ``coflow_id``.
    n_intervals:
        Number of geometric intervals in the LP.
    """

    lower_bound: float
    isolation_bound: float
    lp_completion_times: dict[int, float]
    n_intervals: int

    def gap(self, achieved: float) -> float:
        """Optimality gap ``achieved / lower_bound`` (>= 1 up to fp noise)."""
        if self.lower_bound <= 0:
            return 1.0
        return float(achieved) / self.lower_bound


def _smith_ratio_times(
    loads: np.ndarray, releases: np.ndarray, rates: np.ndarray
) -> np.ndarray:
    """Deterministic fallback ordering key if the LP solver fails.

    Orders by the weighted-bottleneck Smith ratio surrogate
    ``r_k + Gamma_k`` (isolation completion), which every caller already
    has; used only when ``linprog`` reports no solution.
    """
    gamma = (loads / rates[None, :]).max(axis=1)
    return releases + gamma


def interval_indexed_lp(
    loads: np.ndarray,
    weights: Sequence[float] | np.ndarray,
    releases: Sequence[float] | np.ndarray,
    rates: np.ndarray,
    *,
    growth: float = DEFAULT_GROWTH,
    charge: str = "bound",
) -> IntervalLPSolution:
    """Solve the interval-indexed LP over raw per-port load vectors.

    Parameters
    ----------
    loads:
        ``(K, P)`` array: bytes coflow ``k`` must push through port
        resource ``p``.  Callers concatenate egress and ingress loads so
        ``P = 2 * n_ports``.
    weights:
        ``(K,)`` positive weights.
    releases:
        ``(K,)`` release (arrival) times in seconds.
    rates:
        ``(P,)`` strictly positive port capacities in bytes/second.
    growth:
        Geometric factor between interval endpoints (> 1).  Smaller is
        tighter but builds more constraint rows.
    charge:
        Which per-interval completion charge the objective uses.

        * ``"bound"`` (default): ``c[k, l] = max(tau_{l-1}, r_k +
          Gamma_k)`` -- the tightest charge that stays a valid lower
          bound.  Because consecutive early intervals of one coflow can
          carry the *same* charge, the optimum may be indifferent to
          which of them a coflow lands in; fine for bounding, useless
          for ordering.
        * ``"order"``: ``c[k, l] = tau_{l-1}`` -- the classic
          Qiu/Stein/Zhong charge.  The first interval is free, so the
          capacity constraints (not charge ties) decide which coflows
          get the early slots, making the fractional completion times
          discriminate by weight.  Still a valid (if looser) bound,
          since completing in interval ``l`` means ``C_k > tau_{l-1}``.
    """
    if charge not in ("bound", "order"):
        raise ValueError(f"charge must be 'bound' or 'order', got {charge!r}")
    loads = np.asarray(loads, dtype=float)
    weights = np.asarray(weights, dtype=float)
    releases = np.asarray(releases, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if loads.ndim != 2:
        raise ValueError(f"loads must be 2-D (K, P), got shape {loads.shape}")
    n_coflows, n_res = loads.shape
    if rates.shape != (n_res,):
        raise ValueError("rates must match the load matrix's port axis")
    if (rates <= 0).any():
        raise ValueError("port rates must be strictly positive")
    if not growth > 1.0:
        raise ValueError("growth factor must exceed 1")
    if n_coflows == 0:
        return IntervalLPSolution(0.0, np.zeros(0), 0)

    # Earliest possible completion per coflow: release + isolation bottleneck.
    gamma = (loads / rates[None, :]).max(axis=1)
    earliest = releases + gamma
    positive = earliest[earliest > 0]
    if positive.size == 0:
        # All coflows are empty: they complete at their release times.
        return IntervalLPSolution(float(weights @ releases), releases.copy(), 0)

    # Geometric grid from the earliest completion up to a makespan bound
    # (everything run sequentially after the last release).
    tau0 = float(positive.min())
    horizon = float(releases.max() + gamma.sum())
    n_intervals = 1
    while tau0 * growth ** (n_intervals - 1) < horizon:
        n_intervals += 1
    taus = tau0 * growth ** np.arange(n_intervals)
    taus[-1] = max(taus[-1], horizon)
    prev_taus = np.concatenate(([0.0], taus[:-1]))

    # Variable x[k, l] flattened row-major: index = k * L + l.
    n_vars = n_coflows * n_intervals
    if charge == "bound":
        charges = np.maximum(prev_taus[None, :], earliest[:, None])
    else:
        charges = np.broadcast_to(
            prev_taus[None, :], (n_coflows, n_intervals)
        ).copy()
    cost = (weights[:, None] * charges).ravel()

    # Assignment rows: sum_l x[k, l] == 1.
    a_eq = sparse.kron(
        sparse.eye(n_coflows, format="csr"),
        np.ones((1, n_intervals)),
        format="csr",
    )
    b_eq = np.ones(n_coflows)

    # Capacity rows: for each resource p and interval l,
    #   sum_k load[k, p] * sum_{l' <= l} x[k, l'] <= rate_p * tau_l.
    # Build as kron(load_column_matrix, lower_triangular_ones).
    tril = sparse.csr_matrix(np.tril(np.ones((n_intervals, n_intervals))))
    active_res = np.flatnonzero(loads.max(axis=0) > 0)
    if active_res.size:
        a_ub = sparse.kron(
            sparse.csr_matrix(loads[:, active_res].T), tril, format="csr"
        )
        b_ub = (rates[active_res, None] * taus[None, :]).ravel()
    else:
        a_ub = None
        b_ub = None

    # Release constraints as variable bounds: x[k, l] = 0 when tau_l cannot
    # accommodate coflow k's earliest completion.
    upper = np.ones(n_vars)
    feasible = taus[None, :] >= earliest[:, None] * (1 - 1e-12)
    # Guard against fp round-off locking out the final interval entirely.
    feasible[:, -1] = True
    upper[~feasible.ravel()] = 0.0
    bounds = list(zip(np.zeros(n_vars), upper))

    res = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if res.x is None:
        # HiGHS failure (numerical trouble on a degenerate instance):
        # fall back to the trivial isolation bound so callers still get a
        # valid, deterministic answer.
        times = _smith_ratio_times(loads, releases, rates)
        return IntervalLPSolution(float(weights @ times), times, n_intervals)

    x = np.asarray(res.x).reshape(n_coflows, n_intervals)
    completion = (x * charges).sum(axis=1)
    return IntervalLPSolution(float(weights @ completion), completion, n_intervals)


def weighted_cct_lower_bound(
    coflows: Sequence[Coflow],
    fabric: Fabric,
    *,
    growth: float = DEFAULT_GROWTH,
) -> WeightedCCTBound:
    """Certified lower bound on ``sum_k w_k * C_k`` for an instance.

    ``C_k`` is coflow ``k``'s absolute completion time (so the bound is
    release-time aware); subtract ``sum_k w_k * r_k`` to bound the
    weighted *CCT* sum instead.  Every scheduler's achieved objective
    divided by :attr:`WeightedCCTBound.lower_bound` is its optimality
    gap.
    """
    kept = [c for c in coflows if c.flows]
    n_ports = fabric.n_ports
    rates = np.concatenate([fabric.egress_rates, fabric.ingress_rates])
    loads = np.zeros((len(kept), 2 * n_ports))
    for row, c in enumerate(kept):
        send, recv = c.port_loads(n_ports)
        loads[row, :n_ports] = send
        loads[row, n_ports:] = recv
    weights = np.array([c.weight for c in kept], dtype=float)
    releases = np.array([c.arrival_time for c in kept], dtype=float)

    # Flow-less coflows complete at their release instant and contribute
    # w_k * r_k to any schedule's objective; add that constant back in.
    empty_term = sum(c.weight * c.arrival_time for c in coflows if not c.flows)

    sol = interval_indexed_lp(loads, weights, releases, rates, growth=growth)
    gamma = (
        (loads / rates[None, :]).max(axis=1) if kept else np.zeros(0)
    )
    isolation = float(weights @ (releases + gamma)) + empty_term
    lp_times = {
        c.coflow_id: float(t) for c, t in zip(kept, sol.completion_times)
    }
    return WeightedCCTBound(
        lower_bound=sol.objective + empty_term,
        isolation_bound=isolation,
        lp_completion_times=lp_times,
        n_intervals=sol.n_intervals,
    )
