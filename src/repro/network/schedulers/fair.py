"""Per-flow max-min fair sharing (the coflow-agnostic baseline).

Models TCP-like behaviour: every flow independently competes for bandwidth
and the fabric converges to the max-min fair allocation.  Coflow
boundaries are ignored entirely, which is exactly why coflow-aware
disciplines (Varys, Aalo) can beat it on CCT.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import (
    CoflowScheduler,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

__all__ = ["FairSharingScheduler"]


class FairSharingScheduler(CoflowScheduler):
    """(Weighted) max-min fairness across all active flows.

    Parameters
    ----------
    use_weights:
        When True (default), each flow's fair share is scaled by its
        coflow's ``weight`` -- weighted max-min, modelling per-job
        bandwidth priorities.  All weights default to 1, recovering
        plain max-min.
    """

    name = "fair"
    clairvoyant = False

    def __init__(self, *, use_weights: bool = True) -> None:
        self.use_weights = use_weights

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        weights = None
        if self.use_weights and ctx.n_flows:
            if ctx.groups is not None:
                # One progress lookup per coflow, broadcast to the flow
                # axis -- same values as the per-flow comprehension below.
                g = ctx.groups
                weights = g.expand(
                    np.array(
                        [ctx.progress[int(c)].weight for c in g.unique_cids]
                    )
                )
            else:
                weights = np.array(
                    [ctx.progress[int(c)].weight for c in ctx.coflow_ids]
                )
            if np.all(weights == 1.0):
                weights = None
        if ctx.groups is None:
            res_out = ctx.fabric.egress_rates.copy()
            res_in = ctx.fabric.ingress_rates.copy()
            return maxmin_fill_reference(
                ctx.srcs, ctx.dsts, res_out, res_in, weights=weights
            )
        res = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        return maxmin_fill_fast(
            ctx.srcs, ctx.dsts + ctx.fabric.n_ports, res, weights=weights
        )

    def rates_valid_until(
        self, ctx: SchedulingContext, rates: np.ndarray
    ) -> float:
        # The allocation reads only flow endpoints, fabric capacities and
        # static per-coflow weights -- none of which change while the
        # active set and fabric are fixed, so it never expires on its own.
        return np.inf
