"""Aalo's D-CLAS: Discretized Coflow-aware Least-Attained Service.

Aalo (Chowdhury & Stoica, SIGCOMM'15) schedules coflows *without prior
knowledge* of flow sizes.  Each coflow is placed in one of K logical
priority queues according to how many bytes it has **already sent**; queue
thresholds grow geometrically (default: first threshold 10 MB, factor 10).
Small coflows therefore finish in high-priority queues while heavy coflows
gradually sink -- approximating least-attained-service.  Within a queue
coflows are served FIFO; within a coflow, flows share bandwidth max-min
fairly (Aalo has no size information, so MADD is unavailable).
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import (
    CoflowScheduler,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

__all__ = ["DCLASScheduler"]


class DCLASScheduler(CoflowScheduler):
    """Non-clairvoyant priority-queue scheduler (Aalo).

    Parameters
    ----------
    first_threshold:
        Upper sent-bytes bound of the highest-priority queue (default
        10 MB, Aalo's E = 10 MiB rounded).
    multiplier:
        Geometric growth factor between queue thresholds (default 10).
    num_queues:
        Number of discrete queues K (default 10); the lowest queue is
        unbounded.
    queue_weight_decay:
        Aalo shares bandwidth across non-empty queues in a weighted
        fashion rather than by strict priority, so heavy coflows are not
        starved.  Queue ``q`` gets weight ``queue_weight_decay ** q``;
        the default 0 reproduces strict priority (weight only on the
        highest non-empty queue), while Aalo's paper uses ~0.1 ("E/K"
        style decay).
    """

    name = "dclas"
    clairvoyant = False

    def __init__(
        self,
        *,
        first_threshold: float = 10e6,
        multiplier: float = 10.0,
        num_queues: int = 10,
        queue_weight_decay: float = 0.0,
    ) -> None:
        if first_threshold <= 0 or multiplier <= 1 or num_queues < 1:
            raise ValueError("invalid D-CLAS queue parameters")
        if not 0 <= queue_weight_decay < 1:
            raise ValueError("queue_weight_decay must be in [0, 1)")
        self.first_threshold = float(first_threshold)
        self.multiplier = float(multiplier)
        self.num_queues = int(num_queues)
        self.queue_weight_decay = float(queue_weight_decay)
        # Queue boundaries are fixed for the scheduler's lifetime; the
        # hint below consults them every epoch.
        self._thresholds = self.first_threshold * (
            self.multiplier ** np.arange(self.num_queues - 1)
        )

    def queue_of(self, sent_bytes: float) -> int:
        """Queue index (0 = highest priority) for a coflow's attained service."""
        if sent_bytes < self.first_threshold:
            return 0
        q = 1 + int(
            math.floor(
                math.log(sent_bytes / self.first_threshold, self.multiplier)
            )
        )
        return min(q, self.num_queues - 1)

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        rates = np.zeros(ctx.n_flows)
        order = sorted(
            ctx.active_coflow_ids(),
            key=lambda c: (
                self.queue_of(ctx.progress[c].sent_bytes),
                ctx.progress[c].arrival_time,
                c,
            ),
        )
        if ctx.groups is None:
            res_out = ctx.fabric.egress_rates.copy()
            res_in = ctx.fabric.ingress_rates.copy()
            if self.queue_weight_decay > 0:
                self._reserve_weighted_shares(
                    ctx, order, res_out, res_in, rates
                )
            for cid in order:
                maxmin_fill_reference(
                    ctx.srcs, ctx.dsts, res_out, res_in,
                    subset=ctx.flows_of(cid), rates=rates,
                )
            return rates
        dsts_off = ctx.dsts + ctx.fabric.n_ports
        res = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        if self.queue_weight_decay > 0:
            self._reserve_weighted_shares_fast(
                ctx, order, dsts_off, res, rates
            )
            zero = False  # reservations already wrote these flows' rates
        else:
            zero = True  # each subset is written exactly once, from zero
        for cid in order:
            maxmin_fill_fast(
                ctx.srcs, dsts_off, res,
                subset=ctx.flows_of(cid), rates=rates, zero_rates=zero,
            )
        return rates

    def _reserve_weighted_shares(
        self,
        ctx: SchedulingContext,
        order: list[int],
        res_out: np.ndarray,
        res_in: np.ndarray,
        rates: np.ndarray,
    ) -> None:
        """Give lower queues a guaranteed slice before the priority pass.

        Non-empty queues get capacity shares proportional to
        ``decay ** q`` on every port; each queue distributes its slice
        max-min among its coflows' flows.  The subsequent FIFO pass then
        consumes whatever the reservations left, preserving work
        conservation.
        """
        queues: dict[int, list[int]] = {}
        for cid in order:
            q = self.queue_of(ctx.progress[cid].sent_bytes)
            queues.setdefault(q, []).append(cid)
        if len(queues) <= 1:
            return
        weights = {q: self.queue_weight_decay ** q for q in queues}
        total = sum(weights.values())
        # Slices are fractions of the capacity available *before* any
        # reservation; computing them against the shrinking residual
        # would compound the shares and starve low queues anyway.
        base_out = res_out.copy()
        base_in = res_in.copy()
        for q, cids in sorted(queues.items()):
            frac = weights[q] / total
            # A private slice of the fabric for this queue (capped by
            # whatever is actually still free).
            slice_out = np.minimum(base_out * frac, res_out)
            slice_in = np.minimum(base_in * frac, res_in)
            before_out = slice_out.copy()
            before_in = slice_in.copy()
            idx = np.concatenate([ctx.flows_of(c) for c in cids])
            maxmin_fill_reference(
                ctx.srcs, ctx.dsts, slice_out, slice_in,
                subset=idx, rates=rates,
            )
            res_out -= before_out - slice_out
            res_in -= before_in - slice_in
            np.maximum(res_out, 0.0, out=res_out)
            np.maximum(res_in, 0.0, out=res_in)

    def _reserve_weighted_shares_fast(
        self,
        ctx: SchedulingContext,
        order: list[int],
        dsts_off: np.ndarray,
        res: np.ndarray,
        rates: np.ndarray,
    ) -> None:
        """Combined-residual twin of :meth:`_reserve_weighted_shares`.

        Identical arithmetic on the concatenated egress/ingress vector:
        the slice, fill, consumption and clamp are elementwise, so
        operating on the combined array gives the reference floats.
        """
        queues: dict[int, list[int]] = {}
        for cid in order:
            q = self.queue_of(ctx.progress[cid].sent_bytes)
            queues.setdefault(q, []).append(cid)
        if len(queues) <= 1:
            return
        weights = {q: self.queue_weight_decay ** q for q in queues}
        total = sum(weights.values())
        base = res.copy()
        for q, cids in sorted(queues.items()):
            frac = weights[q] / total
            slice_res = np.minimum(base * frac, res)
            before = slice_res.copy()
            idx = np.concatenate([ctx.flows_of(c) for c in cids])
            # Queues are disjoint, so each flow's rate is still zero when
            # its queue's slice is filled.
            maxmin_fill_fast(
                ctx.srcs, dsts_off, slice_res,
                subset=idx, rates=rates, zero_rates=True,
            )
            res -= before - slice_res
            np.maximum(res, 0.0, out=res)

    # D-CLAS deliberately does NOT override ``rates_valid_until``: queue
    # membership advances with attained service, and the hint below
    # ignores thresholds within a guard band above ``sent`` (the
    # ``(1 + 1e-12)`` / ``1e-9`` terms), so a coflow parked just under a
    # threshold is demoted one epoch *after* crossing it, at whatever
    # boundary the simulator hits next.  A validity horizon computed at
    # allocation time cannot reproduce that data-dependent lag, so
    # reusing rates would diverge from the epoch loop bit-for-bit.

    def next_event_hint(self, ctx: SchedulingContext, rates: np.ndarray):
        """Time until some coflow's attained service crosses a threshold.

        Queue membership depends on bytes sent, which grows *during* an
        epoch; without this hint the simulator would hold priorities fixed
        until the next completion and miss demotions.
        """
        thresholds = self._thresholds
        best: float | None = None
        flow_rates = ctx.coflow_rate_sums(rates)
        for cid, flow_rate in zip(ctx.active_coflow_ids(), flow_rates):
            if flow_rate <= 0:
                continue
            sent = ctx.progress[cid].sent_bytes
            ahead = thresholds[thresholds > sent * (1 + 1e-12) + 1e-9]
            if ahead.size == 0:
                continue
            dt = (float(ahead[0]) - sent) / flow_rate
            if best is None or dt < best:
                best = dt
        return best
