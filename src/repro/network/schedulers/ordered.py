"""Ordered clairvoyant coflow schedulers: FIFO, SCF, NCF.

All three share the same machinery: sort active coflows by a priority key,
give each coflow in turn a MADD allocation against the residual port
capacities, then (optionally) backfill leftover bandwidth across all flows
with a max-min pass so the fabric stays work-conserving.  They differ only
in the ordering key -- exactly how CoflowSim organizes them.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import CoflowScheduler, madd_rates, maxmin_fill

__all__ = ["OrderedCoflowScheduler", "FIFOScheduler", "SCFScheduler", "NCFScheduler"]


class OrderedCoflowScheduler(CoflowScheduler):
    """Template: priority ordering + per-coflow MADD + optional backfill.

    Parameters
    ----------
    backfill:
        When True (default), residual capacity left by the priority pass is
        redistributed max-min fairly over all active flows, keeping every
        port busy whenever it has pending traffic (work conservation, as in
        Varys' implementation).
    """

    name = "ordered"

    def __init__(self, *, backfill: bool = True) -> None:
        self.backfill = backfill

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        """Sort key; lower sorts first.  Subclasses override."""
        raise NotImplementedError

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        rates = np.zeros(ctx.n_flows)
        res_out = ctx.fabric.egress_rates.copy()
        res_in = ctx.fabric.ingress_rates.copy()
        order = sorted(
            ctx.active_coflow_ids(), key=lambda c: (*self.priority_key(ctx, c), c)
        )
        for cid in order:
            madd_rates(
                ctx.srcs, ctx.dsts, ctx.remaining, res_out, res_in,
                ctx.flows_of(cid), rates,
            )
        if self.backfill:
            maxmin_fill(ctx.srcs, ctx.dsts, res_out, res_in, rates=rates)
        return rates


class FIFOScheduler(OrderedCoflowScheduler):
    """First-In-First-Out: coflows served strictly in arrival order."""

    name = "fifo"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (ctx.progress[coflow_id].arrival_time,)


class SCFScheduler(OrderedCoflowScheduler):
    """Shortest-Coflow-First: fewest remaining bytes first (SJF analogue)."""

    name = "scf"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (ctx.remaining_volume(coflow_id),)


class NCFScheduler(OrderedCoflowScheduler):
    """Narrowest-Coflow-First: fewest concurrent flows first."""

    name = "ncf"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (int(ctx.flows_of(coflow_id).size),)
