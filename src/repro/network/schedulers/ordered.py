"""Ordered clairvoyant coflow schedulers: FIFO, SCF, NCF.

All three share the same machinery: sort active coflows by a priority key,
give each coflow in turn a MADD allocation against the residual port
capacities, then (optionally) backfill leftover bandwidth across all flows
with a max-min pass so the fabric stays work-conserving.  They differ only
in the ordering key -- exactly how CoflowSim organizes them.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import (
    CoflowScheduler,
    madd_rates_fast,
    madd_rates_reference,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

__all__ = ["OrderedCoflowScheduler", "FIFOScheduler", "SCFScheduler", "NCFScheduler"]


class OrderedCoflowScheduler(CoflowScheduler):
    """Template: priority ordering + per-coflow MADD + optional backfill.

    Parameters
    ----------
    backfill:
        When True (default), residual capacity left by the priority pass is
        redistributed max-min fairly over all active flows, keeping every
        port busy whenever it has pending traffic (work conservation, as in
        Varys' implementation).
    """

    name = "ordered"

    def __init__(self, *, backfill: bool = True) -> None:
        self.backfill = backfill

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        """Sort key; lower sorts first.  Subclasses override."""
        raise NotImplementedError

    def priority_keys(self, ctx: SchedulingContext) -> dict[int, tuple]:
        """Priority key of every active coflow, computed in one pass.

        The default falls back to per-coflow :meth:`priority_key` calls;
        subclasses whose key reduces to a bulk aggregate (remaining
        volume, bottleneck, width) override it so the sort setup costs
        one vectorized sweep instead of ``O(n_flows)`` per coflow.  The
        bulk aggregates are bit-identical to their scalar counterparts,
        so the resulting order -- and allocation -- never changes.
        """
        return {c: self.priority_key(ctx, c) for c in ctx.active_coflow_ids()}

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        rates = np.zeros(ctx.n_flows)
        keys = self.priority_keys(ctx)
        order = sorted(keys, key=lambda c: (*keys[c], c))
        if ctx.groups is None:
            # Reference path: original split-residual kernels.
            res_out = ctx.fabric.egress_rates.copy()
            res_in = ctx.fabric.ingress_rates.copy()
            for cid in order:
                madd_rates_reference(
                    ctx.srcs, ctx.dsts, ctx.remaining, res_out, res_in,
                    ctx.flows_of(cid), rates,
                )
            if self.backfill:
                maxmin_fill_reference(
                    ctx.srcs, ctx.dsts, res_out, res_in, rates=rates
                )
            return rates
        dsts_off = ctx.dsts + ctx.fabric.n_ports
        res = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        for cid in order:
            madd_rates_fast(
                ctx.srcs, dsts_off, ctx.remaining, res,
                ctx.flows_of(cid), rates,
            )
        if self.backfill:
            maxmin_fill_fast(ctx.srcs, dsts_off, res, rates=rates)
        return rates


class FIFOScheduler(OrderedCoflowScheduler):
    """First-In-First-Out: coflows served strictly in arrival order."""

    name = "fifo"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (ctx.progress[coflow_id].arrival_time,)


class SCFScheduler(OrderedCoflowScheduler):
    """Shortest-Coflow-First: fewest remaining bytes first (SJF analogue)."""

    name = "scf"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (ctx.remaining_volume(coflow_id),)

    def priority_keys(self, ctx: SchedulingContext) -> dict[int, tuple]:
        cids = ctx.active_coflow_ids()
        return {c: (v,) for c, v in zip(cids, ctx.remaining_volumes())}


class NCFScheduler(OrderedCoflowScheduler):
    """Narrowest-Coflow-First: fewest concurrent flows first."""

    name = "ncf"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (int(ctx.flows_of(coflow_id).size),)

    def priority_keys(self, ctx: SchedulingContext) -> dict[int, tuple]:
        if ctx.groups is not None:
            return {
                int(c): (int(n),)
                for c, n in zip(ctx.groups.unique_cids, ctx.groups.counts)
            }
        return {
            c: (int(ctx.flows_of(c).size),) for c in ctx.active_coflow_ids()
        }
