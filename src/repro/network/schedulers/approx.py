"""Approximation schedulers with proven weighted-CCT guarantees.

Both disciplines here come from the theory literature on minimizing the
*total weighted completion time* ``sum_k w_k C_k`` of coflows on a
non-blocking switch, and both follow the same two-phase shape:

1. compute a priority *permutation* of the active coflows (this is where
   the approximation guarantee lives), then
2. assign rates with weighted-SEBF machinery: per-coflow MADD in
   permutation order against residual port capacities, plus a work-
   conserving max-min backfill (the :class:`OrderedCoflowScheduler`
   template).

:class:`WeightedApproxScheduler` (``wcct5``) implements the combinatorial
permutation rule analyzed by Shafiee & Ghaderi (arXiv:1704.08357): a
primal-dual "most-loaded-port, cheapest-coflow-last" sweep that is a
5-approximation with release times (4 without).

:class:`LPOrderingScheduler` (``lpcct``) implements the Qiu/Stein/Zhong
rule (SPAA'15; experimental analysis in arXiv:1603.07981): solve the
interval-indexed LP relaxation from :mod:`repro.network.bounds` over the
remaining instance and order coflows by fractional LP completion time, a
deterministic 67/3-approximation.  Their experimental-analysis paper --
whose methodology the ``tournament`` experiment reproduces -- found the
achieved objective is typically within a few percent of the LP bound,
far below the worst-case ratio.

Both schedulers recompute their permutation only when the *set* of
active coflows changes (arrival or completion); between set changes the
order is frozen, which keeps the per-epoch cost at the MADD sweep and
keeps runs deterministic.  Both declare the conservative
``rates_valid_until`` horizon (see the method docstrings) so event
batching stays bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.ordered import OrderedCoflowScheduler

__all__ = ["WeightedApproxScheduler", "LPOrderingScheduler"]


def _remaining_load_matrix(
    ctx: SchedulingContext, cids: list[int]
) -> np.ndarray:
    """``(K, 2 * n_ports)`` remaining bytes per coflow per port direction.

    Columns ``[0, P)`` are egress (send) loads, ``[P, 2P)`` ingress
    (receive) loads -- the same combined-resource layout the fast MADD
    kernels and :func:`repro.network.bounds.interval_indexed_lp` use.
    """
    n_ports = ctx.fabric.n_ports
    loads = np.zeros((len(cids), 2 * n_ports))
    for row, cid in enumerate(cids):
        idx = ctx.flows_of(cid)
        loads[row, :n_ports] = np.bincount(
            ctx.srcs[idx], weights=ctx.remaining[idx], minlength=n_ports
        )
        loads[row, n_ports:] = np.bincount(
            ctx.dsts[idx], weights=ctx.remaining[idx], minlength=n_ports
        )
    return loads


class _PermutationScheduler(OrderedCoflowScheduler):
    """Shared base: cache a computed permutation per active-coflow set."""

    def __init__(self, *, backfill: bool = True) -> None:
        super().__init__(backfill=backfill)
        self._order_key: tuple[int, ...] | None = None
        self._ranks: dict[int, int] = {}

    def reset(self) -> None:
        self._order_key = None
        self._ranks = {}

    def _compute_ranks(
        self, ctx: SchedulingContext, cids: list[int]
    ) -> dict[int, int]:
        raise NotImplementedError

    def priority_keys(self, ctx: SchedulingContext) -> dict[int, tuple]:
        cids = [int(c) for c in ctx.active_coflow_ids()]
        key = tuple(cids)
        if key != self._order_key:
            self._ranks = self._compute_ranks(ctx, cids)
            self._order_key = key
        return {c: (self._ranks[c],) for c in cids}

    def rates_valid_until(self, ctx: SchedulingContext, rates) -> float:
        """Expire immediately: MADD rates track draining volumes.

        The permutation itself is frozen between coflow-set changes, but
        the *rates* are not reusable: each epoch's MADD allocation divides
        remaining volumes by the coflow's current bottleneck, and the
        backfill pass then redistributes slack, so a fresh ``allocate()``
        at a later clock yields bit-different rates even with an
        unchanged flow set.  Returning ``ctx.time`` (the base-class
        contract's "never reuse" horizon) keeps batched and unbatched
        event loops bit-identical.
        """
        return ctx.time


class WeightedApproxScheduler(_PermutationScheduler):
    """Shafiee-Ghaderi 5-approximation for weighted coflow completion time.

    Permutation rule (the combinatorial variant of their algorithm, in
    the largest-load-last tradition of Mastrolilli et al.'s MUSSQ):
    repeatedly find the currently most-loaded port ``b`` over the
    unscheduled coflows' remaining bytes, and schedule *last* the
    unscheduled coflow minimizing ``w_k / d_b(k)`` -- the cheapest
    weight-per-byte coflow on the bottleneck, i.e. the one whose delay
    costs least while relieving the critical port the most.  Rates then
    follow weighted-SEBF over that order.  Guarantee: ``sum w_k C_k <=
    5 * OPT`` with release times (4 without).
    """

    name = "wcct5"

    def _compute_ranks(
        self, ctx: SchedulingContext, cids: list[int]
    ) -> dict[int, int]:
        loads = _remaining_load_matrix(ctx, cids)
        weights = np.array(
            [ctx.progress[c].weight for c in cids], dtype=float
        )
        n = len(cids)
        alive = np.ones(n, dtype=bool)
        ranks: dict[int, int] = {}
        for slot in range(n - 1, -1, -1):
            total = loads[alive].sum(axis=0)
            b = int(np.argmax(total))
            col = loads[:, b]
            ratio = np.full(n, np.inf)
            cand = alive & (col > 0)
            if cand.any():
                ratio[cand] = weights[cand] / col[cand]
            else:
                # Degenerate: no remaining load anywhere -- fall back to
                # retiring the lightest-weight coflow for determinism.
                ratio[alive] = weights[alive]
            # argmin takes the first minimum; rows are in ascending-cid
            # order, so ties break toward the lower coflow id.
            k = int(np.argmin(ratio))
            ranks[cids[k]] = slot
            alive[k] = False
        return ranks


class LPOrderingScheduler(_PermutationScheduler):
    """Qiu/Stein/Zhong LP-ordering scheduler (deterministic 67/3-approx).

    Solves the interval-indexed LP relaxation over the *remaining*
    instance (remaining per-port loads, current fabric rates, all active
    coflows treated as released) and orders coflows by their fractional
    LP completion time; rates then follow weighted-SEBF over that order.
    Guarantee: deterministic ``67/3``-approximation with release times
    (SPAA'15).  Empirically the gap versus the LP lower bound is a small
    constant -- run ``ccf tournament`` to measure it.
    """

    name = "lpcct"

    def _compute_ranks(
        self, ctx: SchedulingContext, cids: list[int]
    ) -> dict[int, int]:
        # Imported lazily: keeps scheduler construction free of scipy.
        from repro.network.bounds import interval_indexed_lp

        loads = _remaining_load_matrix(ctx, cids)
        weights = np.array(
            [ctx.progress[c].weight for c in cids], dtype=float
        )
        rates = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        live = rates[rates > 0]
        if live.size == 0:
            # Every port is down (chaos): no ordering matters; keep the
            # deterministic ascending-cid order until capacity returns.
            return {cid: slot for slot, cid in enumerate(cids)}
        # Dead ports would make the LP infeasible; model them as nearly
        # stalled instead so coflows pinned on them sort last.
        rates = np.where(rates > 0, rates, float(live.max()) * 1e-9)
        sol = interval_indexed_lp(
            loads, weights, np.zeros(len(cids)), rates, charge="order"
        )
        # Ties in fractional completion time (coflows sharing an LP
        # interval) break toward the heavier coflow, then the lower id.
        order = sorted(
            range(len(cids)),
            key=lambda i: (sol.completion_times[i], -weights[i], cids[i]),
        )
        return {cids[i]: slot for slot, i in enumerate(order)}
