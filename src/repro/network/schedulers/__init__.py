"""Inter-coflow scheduling disciplines.

Every discipline implements :class:`repro.network.schedulers.base.CoflowScheduler`:
given a :class:`~repro.network.events.SchedulingContext` it returns a rate
(bytes/second) for each active flow, respecting port capacities.

Available disciplines (mirroring CoflowSim's catalogue):

============  =====================================================
``fair``      per-flow max-min fairness (TCP-like baseline)
``fifo``      coflows served in arrival order (MADD within a coflow)
``scf``       shortest (remaining total bytes) coflow first
``ncf``       narrowest (fewest flows) coflow first
``sebf``      Varys: smallest effective bottleneck first + MADD
``dclas``     Aalo: discretized coflow-aware least-attained service
``deadline``  Varys deadline mode: admission control + just-in-time rates
``wss``       Orchestra: size-weighted shuffle scheduling within coflows
``sequential``  strict one-flow-at-a-time worst case (paper Fig. 2(a))
``wcct5``     Shafiee-Ghaderi 5-approx for weighted CCT (permutation + MADD)
``lpcct``     Qiu/Stein/Zhong LP-ordering scheduler (67/3-approx)
============  =====================================================

``wcct5`` and ``lpcct`` carry proven approximation guarantees on the
total *weighted* completion time; :mod:`repro.network.bounds` computes
the matching LP lower bound so any run can report its optimality gap
(see ``ccf tournament``).
"""

from repro.network.schedulers.approx import (
    LPOrderingScheduler,
    WeightedApproxScheduler,
)
from repro.network.schedulers.base import CoflowScheduler, maxmin_fill
from repro.network.schedulers.dclas import DCLASScheduler
from repro.network.schedulers.deadline import DeadlineScheduler
from repro.network.schedulers.fair import FairSharingScheduler
from repro.network.schedulers.ordered import (
    FIFOScheduler,
    NCFScheduler,
    OrderedCoflowScheduler,
    SCFScheduler,
)
from repro.network.schedulers.sebf import SEBFScheduler
from repro.network.schedulers.sequential import SequentialScheduler
from repro.network.schedulers.wss import WSSScheduler

_REGISTRY = {
    "fair": FairSharingScheduler,
    "fifo": FIFOScheduler,
    "scf": SCFScheduler,
    "ncf": NCFScheduler,
    "sebf": SEBFScheduler,
    "dclas": DCLASScheduler,
    "deadline": DeadlineScheduler,
    "sequential": SequentialScheduler,
    "wss": WSSScheduler,
    "wcct5": WeightedApproxScheduler,
    "lpcct": LPOrderingScheduler,
}

#: All registry names in sorted order -- the CLI's ``choices`` source.
SCHEDULER_NAMES: tuple[str, ...] = tuple(sorted(_REGISTRY))


def make_scheduler(name: str, **kwargs) -> CoflowScheduler:
    """Instantiate a scheduler by its registry name (see module docstring)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "CoflowScheduler",
    "DCLASScheduler",
    "DeadlineScheduler",
    "FIFOScheduler",
    "FairSharingScheduler",
    "LPOrderingScheduler",
    "NCFScheduler",
    "OrderedCoflowScheduler",
    "SCFScheduler",
    "SCHEDULER_NAMES",
    "SEBFScheduler",
    "SequentialScheduler",
    "WSSScheduler",
    "WeightedApproxScheduler",
    "make_scheduler",
    "maxmin_fill",
]
