"""Worst-case strictly sequential schedule (CCF paper, Fig. 2(a)).

The paper motivates coflow scheduling by showing that an uncoordinated
schedule -- nodes transmitting one flow at a time, e.g. "all nodes first
send their data to the first node, then to the second node, and so on" --
serializes transfers and wastes bandwidth.  This discipline models the
pathological extreme: exactly one flow is active at any instant, in
(arrival, coflow, flow) order.  On the paper's toy plan SP2 it yields
CCT = 6 time units versus 4 for the optimal coflow schedule.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import CoflowScheduler

__all__ = ["SequentialScheduler"]


class SequentialScheduler(CoflowScheduler):
    """Serve exactly one flow at full line rate, strictly in order."""

    name = "sequential"
    clairvoyant = False

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        rates = np.zeros(ctx.n_flows)
        if ctx.n_flows == 0:
            return rates
        # Deterministic order: (coflow arrival, coflow id, src, dst).
        if ctx.groups is not None:
            g = ctx.groups
            arrivals = g.expand(
                np.array(
                    [ctx.progress[int(c)].arrival_time for c in g.unique_cids]
                )
            )
        else:
            arrivals = np.array(
                [ctx.progress[int(c)].arrival_time for c in ctx.coflow_ids]
            )
        order = np.lexsort((ctx.dsts, ctx.srcs, ctx.coflow_ids, arrivals))
        head = int(order[0])
        rates[head] = min(
            ctx.fabric.egress_rates[ctx.srcs[head]],
            ctx.fabric.ingress_rates[ctx.dsts[head]],
        )
        return rates

    def rates_valid_until(
        self, ctx: SchedulingContext, rates: np.ndarray
    ) -> float:
        # The head flow is picked by (arrival, coflow, src, dst) -- all
        # static for a fixed active set -- and served at the line rate of
        # its ports, so the allocation holds until the set or fabric moves.
        return np.inf
