"""Scheduler interface and shared rate-allocation primitives.

Two implementations of each primitive live here:

``maxmin_fill_reference`` / ``madd_rates_reference``
    The original split-residual implementations, kept verbatim.  The
    simulator's reference path (``incremental=False``) routes through
    them so ``ccf bench`` measures the seed's true cost, and the
    property tests pin the fast kernels against them bit-for-bit.

``maxmin_fill_fast`` / ``madd_rates_fast``
    Combined-port rewrites: egress cell ``p`` and ingress cell
    ``n_ports + p`` share one residual vector, halving the bincounts,
    divisions, minima and clamps per waterfill iteration.  The frozen
    flows are *compressed out* of the working arrays instead of masked,
    and the unweighted per-port counts are maintained by integer
    subtraction instead of recounted.  Every transformation preserves
    the exact float semantics of the reference (see the inline notes),
    so the allocations -- and therefore simulated CCTs -- are
    bit-identical.

The public ``maxmin_fill`` / ``madd_rates`` keep the original split
signature and delegate to the fast kernels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.network.events import SchedulingContext

__all__ = [
    "CoflowScheduler",
    "maxmin_fill",
    "madd_rates",
    "maxmin_fill_reference",
    "madd_rates_reference",
    "maxmin_fill_fast",
    "madd_rates_fast",
]


class CoflowScheduler(ABC):
    """Base class for inter-coflow scheduling disciplines.

    Subclasses implement :meth:`allocate`, mapping the current simulator
    state to per-flow rates.  Rates must respect the fabric's per-port
    ingress/egress capacities; the simulator validates every allocation.
    """

    #: Registry name; overridden by subclasses.
    name: str = "base"

    #: Whether the discipline inspects remaining volumes (clairvoyant) or
    #: only bytes already sent (non-clairvoyant, e.g. Aalo).
    clairvoyant: bool = True

    @abstractmethod
    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        """Return an array of rates (bytes/s) aligned with ``ctx`` flows."""

    def next_event_hint(
        self, ctx: SchedulingContext, rates: np.ndarray
    ) -> float | None:
        """Upper bound on the epoch length, or ``None`` for no bound.

        The fluid simulator advances between flow completions and coflow
        arrivals; a discipline whose *priorities* change mid-epoch (e.g.
        D-CLAS queue transitions as attained service grows) returns the
        time until its next internal event so the simulator re-invokes it
        there.
        """
        return None

    def rates_valid_until(
        self, ctx: SchedulingContext, rates: np.ndarray
    ) -> float:
        """Absolute time until which the allocation just returned stays valid.

        The simulator's event-horizon path (``batch_events=True``) calls
        this immediately after :meth:`allocate` and *reuses* the returned
        rate array on later epochs as long as three things hold: the
        active flow set is unchanged, the fabric capacities and recovery
        state are unchanged, and the clock is still strictly before the
        returned time.  A discipline may return a time beyond
        ``ctx.time`` only when, under exactly those conditions, a fresh
        :meth:`allocate` would return a bit-identical array.
        :meth:`next_event_hint` still runs every epoch with up-to-date
        ``progress``, so it must not depend on ``allocate`` side effects.

        The base implementation returns ``ctx.time`` -- never reuse --
        which is the only safe answer for any discipline that reads
        remaining volumes (MADD-style clairvoyant schedulers re-rank as
        volumes drain) or mutates internal state in :meth:`allocate`.
        """
        return ctx.time

    def reset(self) -> None:
        """Clear any cross-epoch state (called once per simulation run)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def maxmin_fill_reference(
    srcs: np.ndarray,
    dsts: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    *,
    subset: np.ndarray | None = None,
    rates: np.ndarray | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Progressive-filling (weighted) max-min fair allocation.

    Distributes the residual port capacities ``res_out`` / ``res_in``
    (modified in place) among the flows given by ``subset`` (indices into
    ``srcs``/``dsts``; all flows when ``None``).  Existing ``rates`` are
    incremented, supporting use as a backfill pass after a priority pass.

    Progressive filling raises the rate of all unfrozen flows uniformly
    (or proportionally to ``weights`` -- the weighted max-min of priority
    classes) until some port saturates, freezes the flows crossing that
    port, and repeats -- the classical waterfilling algorithm.

    This is the original implementation; :func:`maxmin_fill_fast` computes
    the same allocation (bit-for-bit) with far fewer array operations.
    """
    n_flows = srcs.shape[0]
    if rates is None:
        rates = np.zeros(n_flows)
    if subset is None:
        subset = np.arange(n_flows)
    if subset.size == 0:
        return rates
    if weights is None:
        w_all = np.ones(n_flows)
    else:
        w_all = np.asarray(weights, dtype=float)
        if w_all.shape != (n_flows,):
            raise ValueError(f"weights must have shape ({n_flows},)")
        if (w_all <= 0).any():
            raise ValueError("weights must be strictly positive")

    n_ports = res_out.shape[0]
    active = np.ones(subset.size, dtype=bool)
    s_src = srcs[subset]
    s_dst = dsts[subset]
    s_w = w_all[subset]

    # Each iteration saturates >= 1 port, so the loop runs <= 2 * n_ports times.
    while active.any():
        cnt_out = np.bincount(
            s_src[active], weights=s_w[active], minlength=n_ports
        )
        cnt_in = np.bincount(
            s_dst[active], weights=s_w[active], minlength=n_ports
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            share_out = np.where(cnt_out > 0, res_out / cnt_out, np.inf)
            share_in = np.where(cnt_in > 0, res_in / cnt_in, np.inf)
        step = min(share_out.min(), share_in.min())
        if not np.isfinite(step):  # pragma: no cover - defensive
            break
        step = max(step, 0.0)
        idx = subset[active]
        rates[idx] += step * s_w[active]
        res_out -= step * cnt_out
        res_in -= step * cnt_in
        np.maximum(res_out, 0.0, out=res_out)
        np.maximum(res_in, 0.0, out=res_in)
        # A port is saturated when its residual is (numerically) zero.
        sat_out = (cnt_out > 0) & (res_out <= 1e-9)
        sat_in = (cnt_in > 0) & (res_in <= 1e-9)
        newly_frozen = sat_out[s_src] | sat_in[s_dst]
        if not (newly_frozen & active).any():
            break
        active &= ~newly_frozen
    return rates


def madd_rates_reference(
    srcs: np.ndarray,
    dsts: np.ndarray,
    remaining: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> bool:
    """Minimum-Allocation-for-Desired-Duration for one coflow (Varys §4).

    Gives every flow of the coflow rate ``remaining / Gamma`` where
    ``Gamma`` is the coflow's effective bottleneck against the *residual*
    capacities, so all flows finish together at the earliest possible time
    without hogging bandwidth.  Updates ``rates`` and the residual arrays in
    place.  Returns ``False`` when the coflow is blocked (some required port
    has no residual capacity).

    This is the original implementation; :func:`madd_rates_fast` computes
    the same allocation (bit-for-bit) on a combined residual vector.
    """
    if subset.size == 0:
        return True
    n_ports = res_out.shape[0]
    send = np.bincount(srcs[subset], weights=remaining[subset], minlength=n_ports)
    recv = np.bincount(dsts[subset], weights=remaining[subset], minlength=n_ports)
    need_out = send > 0
    need_in = recv > 0
    if (res_out[need_out] <= 1e-9).any() or (res_in[need_in] <= 1e-9).any():
        return False
    with np.errstate(divide="ignore", invalid="ignore"):
        gamma = max(
            (send[need_out] / res_out[need_out]).max(initial=0.0),
            (recv[need_in] / res_in[need_in]).max(initial=0.0),
        )
    if gamma <= 0:
        return True
    alloc = remaining[subset] / gamma
    rates[subset] += alloc
    res_out -= np.bincount(srcs[subset], weights=alloc, minlength=n_ports)
    res_in -= np.bincount(dsts[subset], weights=alloc, minlength=n_ports)
    np.maximum(res_out, 0.0, out=res_out)
    np.maximum(res_in, 0.0, out=res_in)
    return True


#: Subset size below which the per-coflow kernels drop to plain-Python
#: scalar arithmetic: for a handful of flows the cost of a numpy call
#: (~1-2us each) dwarfs the arithmetic, and scalar IEEE doubles follow
#: the exact same operation sequence, so results stay bit-identical.
_SCALAR_MAX = 32
#: MADD is a single pass (no iteration), so numpy amortizes better; the
#: scalar version only wins for very narrow coflows.
_MADD_SCALAR_MAX = 4


def _maxmin_small_zero(
    srcs: np.ndarray,
    dsts_off: np.ndarray,
    res: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> np.ndarray:
    """Scalar waterfill for a small subset whose rates start at zero.

    Mirrors the reference iteration exactly: integer per-port counts,
    ``share = res / cnt`` per busy port, one uniform ``step`` (the exact
    minimum), ``res -= step * cnt`` per cell, clamp, freeze.  Because the
    subset's rates are all zero on entry, the per-iteration ``rates[i] +=
    step`` sequence equals assigning the running level at freeze time
    (``0 + s1 + ... + sk`` associates identically), so each flow's rate
    is written once.
    """
    idxs = subset.tolist()
    ss = srcs[subset].tolist()
    ds = dsts_off[subset].tolist()
    item = res.item
    level = 0.0
    while idxs:
        cnt: dict[int, int] = {}
        for p in ss:
            cnt[p] = cnt.get(p, 0) + 1
        for p in ds:
            cnt[p] = cnt.get(p, 0) + 1
        step = np.inf
        for p, c in cnt.items():
            sh = item(p) / c
            if sh < step:
                step = sh
        if not np.isfinite(step):  # pragma: no cover - defensive
            break
        if step < 0.0:  # pragma: no cover - residuals are clamped >= 0
            step = 0.0
        level = level + step
        sat = None
        for p, c in cnt.items():
            v = item(p) - step * c
            if v < 0.0:
                v = 0.0
            res[p] = v
            if v <= 1e-9:
                if sat is None:
                    sat = {p}
                else:
                    sat.add(p)
        if sat is None:
            break
        kept_i: list[int] = []
        kept_s: list[int] = []
        kept_d: list[int] = []
        frozen: list[int] = []
        for i, s, d in zip(idxs, ss, ds):
            if s in sat or d in sat:
                frozen.append(i)
            else:
                kept_i.append(i)
                kept_s.append(s)
                kept_d.append(d)
        if not frozen:
            break
        for i in frozen:
            rates[i] = level
        idxs, ss, ds = kept_i, kept_s, kept_d
    for i in idxs:
        rates[i] = level
    return rates


def _madd_small(
    srcs: np.ndarray,
    dsts_off: np.ndarray,
    remaining: np.ndarray,
    res: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> bool:
    """Scalar MADD for a small coflow; bit-identical to the reference.

    Per-port loads accumulate in flow order (same sequence as the
    bincount), the blocked test and ``Gamma`` cover exactly the ports
    with positive load, and the residual decrement per cell subtracts the
    flow-ordered sum of allocations -- one subtraction per port, exactly
    like ``res -= bincount(...)``.
    """
    sl = srcs[subset].tolist()
    dl = dsts_off[subset].tolist()
    rl = remaining[subset].tolist()
    load: dict[int, float] = {}
    for p, r in zip(sl, rl):
        load[p] = load.get(p, 0.0) + r
    for p, r in zip(dl, rl):
        load[p] = load.get(p, 0.0) + r
    item = res.item
    gamma = 0.0
    for p, ld in load.items():
        if ld <= 0:
            continue
        rp = item(p)
        if rp <= 1e-9:
            return False
        q = ld / rp
        if q > gamma:
            gamma = q
    if gamma <= 0:
        return True
    dec: dict[int, float] = {}
    alloc = []
    for s, d, r in zip(sl, dl, rl):
        a = r / gamma
        alloc.append(a)
        dec[s] = dec.get(s, 0.0) + a
        dec[d] = dec.get(d, 0.0) + a
    # Subset indices are unique, so the fancy += / -= below perform one
    # per-element add per cell -- the same additions as scalar writes.
    rates[subset] += np.asarray(alloc)
    res[np.fromiter(dec.keys(), dtype=np.intp, count=len(dec))] -= (
        np.fromiter(dec.values(), dtype=np.float64, count=len(dec))
    )
    np.maximum(res, 0.0, out=res)
    return True


def maxmin_fill_fast(
    srcs: np.ndarray,
    dsts_off: np.ndarray,
    res: np.ndarray,
    *,
    subset: np.ndarray | None = None,
    rates: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    zero_rates: bool = False,
) -> np.ndarray:
    """Combined-port progressive filling, bit-identical to the reference.

    ``dsts_off`` is ``dsts + n_ports`` and ``res`` the length ``2 *
    n_ports`` concatenation of the egress and ingress residuals (modified
    in place).  Why each rewrite keeps the exact reference floats:

    - One bincount over ``[srcs..., dsts_off...]`` hits disjoint cells
      for the two halves, accumulating each cell in flow order exactly
      like the two separate bincounts.
    - Unweighted per-port counts are whole numbers; maintaining them as
      integers and subtracting the frozen flows' counts is exact, and
      int->float promotion in the divides is exact too.
    - Frozen flows are removed from the working arrays; the survivors
      keep their relative order, so recomputed weighted bincounts
      accumulate in the reference order.
    - ``min`` / ``max`` never round, so one minimum over the combined
      share vector equals the reference's ``min(out.min(), in.min())``.
    - ``rates[idx] += step`` equals the reference's ``+= step * 1.0``.

    ``zero_rates=True`` promises the subset's rates are all zero on
    entry (automatic when ``rates`` is None).  That unlocks the *level*
    shortcut: the reference's per-iteration ``rates[idx] += step`` then
    accumulates ``0 + s1 + ... + sk`` per flow, which is the exact same
    left-associated addition sequence as a running scalar level, so each
    flow's rate can be written once when it freezes.  (Weighted fills
    still add per iteration: ``sum(s_j * w)`` and ``(sum s_j) * w``
    round differently.)
    """
    n_flows = srcs.shape[0]
    if rates is None:
        rates = np.zeros(n_flows)
        zero_rates = True
    if (
        zero_rates
        and weights is None
        and subset is not None
        and 0 < subset.size <= _SCALAR_MAX
    ):
        return _maxmin_small_zero(srcs, dsts_off, res, subset, rates)
    if weights is not None:
        w_all = np.asarray(weights, dtype=float)
        if w_all.shape != (n_flows,):
            raise ValueError(f"weights must have shape ({n_flows},)")
        if (w_all <= 0).any():
            raise ValueError("weights must be strictly positive")
    if subset is None:
        cur_idx: np.ndarray | None = None  # all flows; materialized lazily
        port = np.concatenate((srcs, dsts_off))
        m = n_flows
        cur_w = None if weights is None else w_all
    else:
        if subset.size == 0:
            return rates
        cur_idx = subset
        port = np.concatenate((srcs[subset], dsts_off[subset]))
        m = subset.shape[0]
        cur_w = None if weights is None else w_all[subset]
    if m == 0:
        return rates

    two_n = res.shape[0]
    share = np.empty(two_n)
    use_level = zero_rates and weights is None
    level = 0.0
    if cur_w is None:
        cnt = np.bincount(port, minlength=two_n)
    while True:
        if cur_w is not None:
            cnt = np.bincount(
                port, weights=np.concatenate((cur_w, cur_w)), minlength=two_n
            )
        busy = cnt > 0
        share.fill(np.inf)
        np.divide(res, cnt, out=share, where=busy)
        step = share.min()
        if not np.isfinite(step):  # pragma: no cover - defensive
            break
        step = max(step, 0.0)
        if use_level:
            level = level + step
        elif cur_w is None:
            if cur_idx is None:
                rates += step
            else:
                rates[cur_idx] += step
        else:
            if cur_idx is None:
                rates += step * cur_w
            else:
                rates[cur_idx] += step * cur_w
        res -= step * cnt
        np.maximum(res, 0.0, out=res)
        sat = busy & (res <= 1e-9)
        fr2 = sat[port]
        frozen = fr2[:m] | fr2[m:]
        if not frozen.any():
            break
        if use_level:
            if cur_idx is None:
                rates[np.flatnonzero(frozen)] = level
            else:
                rates[cur_idx[frozen]] = level
        keep = ~frozen
        port = port[np.concatenate((keep, keep))]
        if cur_idx is None:
            cur_idx = np.flatnonzero(keep)
        else:
            cur_idx = cur_idx[keep]
        if cur_w is None:
            # Integer counts of the surviving flows; recomputing equals
            # subtracting the frozen flows' counts exactly.
            cnt = np.bincount(port, minlength=two_n)
        else:
            cur_w = cur_w[keep]
        m = cur_idx.shape[0]
        if m == 0:
            break
    if use_level:
        # Survivors (loop left without freezing them) sit at the final
        # level; frozen flows were written above.
        if cur_idx is None:
            rates.fill(level)
        elif cur_idx.size:
            rates[cur_idx] = level
    return rates


def madd_rates_fast(
    srcs: np.ndarray,
    dsts_off: np.ndarray,
    remaining: np.ndarray,
    res: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> bool:
    """Combined-port MADD, bit-identical to the reference.

    Same conventions as :func:`maxmin_fill_fast`: ``dsts_off = dsts +
    n_ports`` and ``res`` is the combined residual vector (modified in
    place).  The single bincount reaches disjoint cells for the egress
    and ingress halves in flow order, the blocked test is an
    order-independent ``any``, and one ``max`` over the combined loads
    equals the reference's max of the two per-side maxima.
    """
    if subset.size == 0:
        return True
    if subset.size <= _MADD_SCALAR_MAX:
        return _madd_small(srcs, dsts_off, remaining, res, subset, rates)
    two_n = res.shape[0]
    rem = remaining[subset]
    port = np.concatenate((srcs[subset], dsts_off[subset]))
    load = np.bincount(
        port, weights=np.concatenate((rem, rem)), minlength=two_n
    )
    busy = load > 0
    res_busy = res[busy]
    if (res_busy <= 1e-9).any():
        return False
    gamma = (load[busy] / res_busy).max(initial=0.0)
    if gamma <= 0:
        return True
    alloc = rem / gamma
    rates[subset] += alloc
    res -= np.bincount(
        port, weights=np.concatenate((alloc, alloc)), minlength=two_n
    )
    np.maximum(res, 0.0, out=res)
    return True


def maxmin_fill(
    srcs: np.ndarray,
    dsts: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    *,
    subset: np.ndarray | None = None,
    rates: np.ndarray | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Split-residual front door for :func:`maxmin_fill_fast`.

    Keeps the original signature (and in-place residual semantics) while
    delegating the waterfill to the combined-port kernel.
    """
    n_ports = res_out.shape[0]
    res = np.concatenate((res_out, res_in))
    out = maxmin_fill_fast(
        srcs, dsts + n_ports, res, subset=subset, rates=rates, weights=weights
    )
    res_out[:] = res[:n_ports]
    res_in[:] = res[n_ports:]
    return out


def madd_rates(
    srcs: np.ndarray,
    dsts: np.ndarray,
    remaining: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> bool:
    """Split-residual front door for :func:`madd_rates_fast`."""
    n_ports = res_out.shape[0]
    res = np.concatenate((res_out, res_in))
    ok = madd_rates_fast(srcs, dsts + n_ports, remaining, res, subset, rates)
    res_out[:] = res[:n_ports]
    res_in[:] = res[n_ports:]
    return ok
