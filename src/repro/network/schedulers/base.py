"""Scheduler interface and shared rate-allocation primitives."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.network.events import SchedulingContext

__all__ = ["CoflowScheduler", "maxmin_fill", "madd_rates"]


class CoflowScheduler(ABC):
    """Base class for inter-coflow scheduling disciplines.

    Subclasses implement :meth:`allocate`, mapping the current simulator
    state to per-flow rates.  Rates must respect the fabric's per-port
    ingress/egress capacities; the simulator validates every allocation.
    """

    #: Registry name; overridden by subclasses.
    name: str = "base"

    #: Whether the discipline inspects remaining volumes (clairvoyant) or
    #: only bytes already sent (non-clairvoyant, e.g. Aalo).
    clairvoyant: bool = True

    @abstractmethod
    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        """Return an array of rates (bytes/s) aligned with ``ctx`` flows."""

    def next_event_hint(
        self, ctx: SchedulingContext, rates: np.ndarray
    ) -> float | None:
        """Upper bound on the epoch length, or ``None`` for no bound.

        The fluid simulator advances between flow completions and coflow
        arrivals; a discipline whose *priorities* change mid-epoch (e.g.
        D-CLAS queue transitions as attained service grows) returns the
        time until its next internal event so the simulator re-invokes it
        there.
        """
        return None

    def reset(self) -> None:
        """Clear any cross-epoch state (called once per simulation run)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def maxmin_fill(
    srcs: np.ndarray,
    dsts: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    *,
    subset: np.ndarray | None = None,
    rates: np.ndarray | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Progressive-filling (weighted) max-min fair allocation.

    Distributes the residual port capacities ``res_out`` / ``res_in``
    (modified in place) among the flows given by ``subset`` (indices into
    ``srcs``/``dsts``; all flows when ``None``).  Existing ``rates`` are
    incremented, supporting use as a backfill pass after a priority pass.

    Progressive filling raises the rate of all unfrozen flows uniformly
    (or proportionally to ``weights`` -- the weighted max-min of priority
    classes) until some port saturates, freezes the flows crossing that
    port, and repeats -- the classical waterfilling algorithm.
    """
    n_flows = srcs.shape[0]
    if rates is None:
        rates = np.zeros(n_flows)
    if subset is None:
        subset = np.arange(n_flows)
    if subset.size == 0:
        return rates
    if weights is None:
        w_all = np.ones(n_flows)
    else:
        w_all = np.asarray(weights, dtype=float)
        if w_all.shape != (n_flows,):
            raise ValueError(f"weights must have shape ({n_flows},)")
        if (w_all <= 0).any():
            raise ValueError("weights must be strictly positive")

    n_ports = res_out.shape[0]
    active = np.ones(subset.size, dtype=bool)
    s_src = srcs[subset]
    s_dst = dsts[subset]
    s_w = w_all[subset]

    # Each iteration saturates >= 1 port, so the loop runs <= 2 * n_ports times.
    while active.any():
        cnt_out = np.bincount(
            s_src[active], weights=s_w[active], minlength=n_ports
        )
        cnt_in = np.bincount(
            s_dst[active], weights=s_w[active], minlength=n_ports
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            share_out = np.where(cnt_out > 0, res_out / cnt_out, np.inf)
            share_in = np.where(cnt_in > 0, res_in / cnt_in, np.inf)
        step = min(share_out.min(), share_in.min())
        if not np.isfinite(step):  # pragma: no cover - defensive
            break
        step = max(step, 0.0)
        idx = subset[active]
        rates[idx] += step * s_w[active]
        res_out -= step * cnt_out
        res_in -= step * cnt_in
        np.maximum(res_out, 0.0, out=res_out)
        np.maximum(res_in, 0.0, out=res_in)
        # A port is saturated when its residual is (numerically) zero.
        sat_out = (cnt_out > 0) & (res_out <= 1e-9)
        sat_in = (cnt_in > 0) & (res_in <= 1e-9)
        newly_frozen = sat_out[s_src] | sat_in[s_dst]
        if not (newly_frozen & active).any():
            break
        active &= ~newly_frozen
    return rates


def madd_rates(
    srcs: np.ndarray,
    dsts: np.ndarray,
    remaining: np.ndarray,
    res_out: np.ndarray,
    res_in: np.ndarray,
    subset: np.ndarray,
    rates: np.ndarray,
) -> bool:
    """Minimum-Allocation-for-Desired-Duration for one coflow (Varys §4).

    Gives every flow of the coflow rate ``remaining / Gamma`` where
    ``Gamma`` is the coflow's effective bottleneck against the *residual*
    capacities, so all flows finish together at the earliest possible time
    without hogging bandwidth.  Updates ``rates`` and the residual arrays in
    place.  Returns ``False`` when the coflow is blocked (some required port
    has no residual capacity).
    """
    if subset.size == 0:
        return True
    n_ports = res_out.shape[0]
    send = np.bincount(srcs[subset], weights=remaining[subset], minlength=n_ports)
    recv = np.bincount(dsts[subset], weights=remaining[subset], minlength=n_ports)
    need_out = send > 0
    need_in = recv > 0
    if (res_out[need_out] <= 1e-9).any() or (res_in[need_in] <= 1e-9).any():
        return False
    with np.errstate(divide="ignore", invalid="ignore"):
        gamma = max(
            (send[need_out] / res_out[need_out]).max(initial=0.0),
            (recv[need_in] / res_in[need_in]).max(initial=0.0),
        )
    if gamma <= 0:
        return True
    alloc = remaining[subset] / gamma
    rates[subset] += alloc
    res_out -= np.bincount(srcs[subset], weights=alloc, minlength=n_ports)
    res_in -= np.bincount(dsts[subset], weights=alloc, minlength=n_ports)
    np.maximum(res_out, 0.0, out=res_out)
    np.maximum(res_in, 0.0, out=res_in)
    return True
