"""Orchestra's Weighted Shuffle Scheduling (WSS; Chowdhury et al., SIGCOMM'11).

The historical predecessor of coflow scheduling: *within* a shuffle,
allocate each flow a rate proportional to its size, so large flows get
more bandwidth and the whole shuffle finishes sooner than under unweighted
fair sharing.  Orchestra showed up to 1.5x speedups from this alone.

Across coflows WSS has no inter-coflow policy; like per-flow fairness we
process coflows in arrival order against residual capacity, so WSS here
is "FIFO between coflows, size-weighted max-min within a coflow" -- the
natural fluid-model rendering of the original.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import (
    CoflowScheduler,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

__all__ = ["WSSScheduler"]


class WSSScheduler(CoflowScheduler):
    """Size-weighted sharing within each coflow, FIFO across coflows."""

    name = "wss"

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        rates = np.zeros(ctx.n_flows)
        order = sorted(
            ctx.active_coflow_ids(),
            key=lambda c: (ctx.progress[c].arrival_time, c),
        )
        if ctx.groups is None:
            return self._allocate_reference(ctx, order, rates)
        # Combined-residual fast path: one bincount/divide/min per coflow
        # over the concatenated egress+ingress vector.  Each cell still
        # accumulates its flows in order and ``min`` over the combined
        # shares equals ``min(out_min, in_min)``, so the alphas -- and
        # allocations -- match the reference bit-for-bit.
        dsts_off = ctx.dsts + ctx.fabric.n_ports
        res = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        two_n = res.shape[0]
        share = np.empty(two_n)
        for cid in order:
            idx = ctx.flows_of(cid)
            weights = ctx.remaining[idx]
            total = weights.sum()
            if total <= 0:
                continue
            port = np.concatenate((ctx.srcs[idx], dsts_off[idx]))
            load = np.bincount(
                port, weights=np.concatenate((weights, weights)),
                minlength=two_n,
            )
            busy = load > 0
            share.fill(np.inf)
            np.divide(res, load, out=share, where=busy)
            alpha = share.min()
            if not np.isfinite(alpha) or alpha <= 0:
                continue
            alloc = alpha * weights
            rates[idx] += alloc
            res -= np.bincount(
                port, weights=np.concatenate((alloc, alloc)),
                minlength=two_n,
            )
            np.maximum(res, 0.0, out=res)
        # Work conservation: spread any leftover bandwidth.
        maxmin_fill_fast(ctx.srcs, dsts_off, res, rates=rates)
        return rates

    def _allocate_reference(
        self, ctx: SchedulingContext, order: list[int], rates: np.ndarray
    ) -> np.ndarray:
        """Original split-residual implementation (reference path)."""
        res_out = ctx.fabric.egress_rates.copy()
        res_in = ctx.fabric.ingress_rates.copy()
        n = ctx.fabric.n_ports
        for cid in order:
            idx = ctx.flows_of(cid)
            weights = ctx.remaining[idx]
            total = weights.sum()
            if total <= 0:
                continue
            # Proportional shares, scaled to the tightest port constraint
            # (alpha-scaling: rate_f = alpha * w_f with alpha maximal).
            out = np.bincount(ctx.srcs[idx], weights=weights, minlength=n)
            inb = np.bincount(ctx.dsts[idx], weights=weights, minlength=n)
            with np.errstate(divide="ignore", invalid="ignore"):
                alpha_out = np.where(out > 0, res_out / out, np.inf).min()
                alpha_in = np.where(inb > 0, res_in / inb, np.inf).min()
            alpha = min(alpha_out, alpha_in)
            if not np.isfinite(alpha) or alpha <= 0:
                continue
            alloc = alpha * weights
            rates[idx] += alloc
            res_out -= np.bincount(ctx.srcs[idx], weights=alloc, minlength=n)
            res_in -= np.bincount(ctx.dsts[idx], weights=alloc, minlength=n)
            np.maximum(res_out, 0.0, out=res_out)
            np.maximum(res_in, 0.0, out=res_in)
        # Work conservation: spread any leftover bandwidth.
        maxmin_fill_reference(ctx.srcs, ctx.dsts, res_out, res_in, rates=rates)
        return rates
