"""Varys' SEBF: Smallest-Effective-Bottleneck-First (Chowdhury et al., SIGCOMM'14).

A coflow's *effective bottleneck* Gamma is the time it would need on an
idle fabric: ``max_port(bytes_through_port / port_rate)``.  SEBF orders
coflows by the Gamma of their remaining traffic, allocates rates with MADD
(so every flow of the scheduled coflow finishes together at Gamma), and
backfills unused bandwidth.  For a *single* coflow SEBF+MADD is provably
optimal: CCT equals the closed-form bottleneck used by the CCF paper's
model (3) -- a property our test suite cross-validates.
"""

from __future__ import annotations

from repro.network.events import SchedulingContext
from repro.network.schedulers.ordered import OrderedCoflowScheduler

__all__ = ["SEBFScheduler"]


class SEBFScheduler(OrderedCoflowScheduler):
    """Smallest remaining effective bottleneck first + MADD + backfill."""

    name = "sebf"

    def priority_key(self, ctx: SchedulingContext, coflow_id: int) -> tuple:
        return (ctx.remaining_bottleneck(coflow_id),)

    def priority_keys(self, ctx: SchedulingContext) -> dict[int, tuple]:
        cids = ctx.active_coflow_ids()
        return {c: (g,) for c, g in zip(cids, ctx.remaining_bottlenecks())}
