"""Varys' deadline mode: admission control + just-in-time rates.

Varys (§5.3 of the SIGCOMM'14 paper) supports coflows with completion
deadlines: a coflow is *admitted* only if giving every remaining flow the
minimum rate that meets the deadline keeps all ports within capacity,
accounting for the guarantees already handed to admitted coflows.
Admitted coflows receive exactly those minimum rates (finishing exactly
at their deadlines unless backfill speeds them up); rejected and
deadline-less coflows share the leftover bandwidth max-min fairly as
best-effort traffic.

The admission decision is made once, at the first epoch a coflow is seen
(its arrival), and is sticky -- matching Varys, where clients are told at
submission whether the deadline is guaranteed.
"""

from __future__ import annotations

import numpy as np

from repro.network.events import SchedulingContext
from repro.network.schedulers.base import (
    CoflowScheduler,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

__all__ = ["DeadlineScheduler"]


class DeadlineScheduler(CoflowScheduler):
    """Deadline-guaranteeing scheduler with best-effort backfill.

    Parameters
    ----------
    backfill:
        When True (default) leftover capacity is shared among *all*
        unfinished flows, letting admitted coflows beat their deadlines.
        When False, admitted coflows stick to their just-in-time rates
        (finishing exactly at the deadline); best-effort traffic always
        receives the leftover max-min fairly -- the fabric stays
        work-conserving either way.
    """

    name = "deadline"

    def __init__(self, *, backfill: bool = True) -> None:
        self.backfill = backfill
        self._admitted: dict[int, bool] = {}

    def reset(self) -> None:
        self._admitted.clear()

    def admitted(self, coflow_id: int) -> bool | None:
        """Admission verdict for a coflow (None = not seen / no deadline)."""
        return self._admitted.get(coflow_id)

    def allocate(self, ctx: SchedulingContext) -> np.ndarray:
        if ctx.groups is None:
            return self._allocate_reference(ctx)
        # Combined-residual fast path: the per-coflow reservation becomes
        # one bincount over the concatenated egress+ingress cells (same
        # per-cell accumulation order), and admission compares the same
        # loads against the same residuals -- decisions and allocations
        # match the reference bit-for-bit.
        rates = np.zeros(ctx.n_flows)
        n = ctx.fabric.n_ports
        dsts_off = ctx.dsts + n
        res = np.concatenate(
            (ctx.fabric.egress_rates, ctx.fabric.ingress_rates)
        )
        two_n = res.shape[0]

        deadline_ids = [
            c
            for c in ctx.active_coflow_ids()
            if ctx.progress[c].deadline is not None
        ]
        deadline_ids.sort(key=lambda c: (ctx.progress[c].arrival_time, c))

        for cid in deadline_ids:
            prog = ctx.progress[cid]
            idx = ctx.flows_of(cid)
            time_left = prog.absolute_deadline - ctx.time
            if cid not in self._admitted:
                self._admitted[cid] = self._admissible_fast(
                    ctx, dsts_off, idx, time_left, res
                )
            if not self._admitted[cid]:
                continue  # best-effort via backfill
            if time_left <= 0:
                # Past-deadline admitted coflow (only possible through
                # float dust): drain at line rate via backfill.
                continue
            need = ctx.remaining[idx] / time_left
            rates[idx] += need
            res -= np.bincount(
                np.concatenate((ctx.srcs[idx], dsts_off[idx])),
                weights=np.concatenate((need, need)),
                minlength=two_n,
            )
            np.maximum(res, 0.0, out=res)

        if self.backfill:
            maxmin_fill_fast(ctx.srcs, dsts_off, res, rates=rates)
        else:
            # Work conservation for non-guaranteed traffic only.
            g = ctx.groups
            guaranteed = g.expand(
                np.array(
                    [
                        self._admitted.get(int(c), False)
                        for c in g.unique_cids
                    ]
                )
            )
            besteffort = np.flatnonzero(~guaranteed)
            # Only guaranteed coflows were allocated above, so the
            # best-effort flows' rates are still zero.
            maxmin_fill_fast(
                ctx.srcs, dsts_off, res,
                subset=besteffort, rates=rates, zero_rates=True,
            )
        return rates

    def _allocate_reference(self, ctx: SchedulingContext) -> np.ndarray:
        """Original split-residual implementation (reference path)."""
        rates = np.zeros(ctx.n_flows)
        res_out = ctx.fabric.egress_rates.copy()
        res_in = ctx.fabric.ingress_rates.copy()
        n = ctx.fabric.n_ports

        deadline_ids = [
            c
            for c in ctx.active_coflow_ids()
            if ctx.progress[c].deadline is not None
        ]
        deadline_ids.sort(key=lambda c: (ctx.progress[c].arrival_time, c))

        for cid in deadline_ids:
            prog = ctx.progress[cid]
            idx = ctx.flows_of(cid)
            time_left = prog.absolute_deadline - ctx.time
            if cid not in self._admitted:
                self._admitted[cid] = self._admissible(
                    ctx, idx, time_left, res_out, res_in
                )
            if not self._admitted[cid]:
                continue  # best-effort via backfill
            if time_left <= 0:
                # Past-deadline admitted coflow (only possible through
                # float dust): drain at line rate via backfill.
                continue
            need = ctx.remaining[idx] / time_left
            rates[idx] += need
            res_out -= np.bincount(ctx.srcs[idx], weights=need, minlength=n)
            res_in -= np.bincount(ctx.dsts[idx], weights=need, minlength=n)
            np.maximum(res_out, 0.0, out=res_out)
            np.maximum(res_in, 0.0, out=res_in)

        if self.backfill:
            maxmin_fill_reference(
                ctx.srcs, ctx.dsts, res_out, res_in, rates=rates
            )
        else:
            # Work conservation for non-guaranteed traffic only.
            guaranteed = np.array(
                [
                    self._admitted.get(int(c), False)
                    for c in ctx.coflow_ids
                ]
            )
            besteffort = np.flatnonzero(~guaranteed)
            maxmin_fill_reference(
                ctx.srcs, ctx.dsts, res_out, res_in,
                subset=besteffort, rates=rates,
            )
        return rates

    @staticmethod
    def _admissible(
        ctx: SchedulingContext,
        idx: np.ndarray,
        time_left: float,
        res_out: np.ndarray,
        res_in: np.ndarray,
    ) -> bool:
        """Can the coflow's minimum-rate demand fit in the residual caps?"""
        if time_left <= 0:
            return False
        n = ctx.fabric.n_ports
        need = ctx.remaining[idx] / time_left
        out = np.bincount(ctx.srcs[idx], weights=need, minlength=n)
        inb = np.bincount(ctx.dsts[idx], weights=need, minlength=n)
        return bool((out <= res_out * (1 + 1e-9)).all()
                    and (inb <= res_in * (1 + 1e-9)).all())

    @staticmethod
    def _admissible_fast(
        ctx: SchedulingContext,
        dsts_off: np.ndarray,
        idx: np.ndarray,
        time_left: float,
        res: np.ndarray,
    ) -> bool:
        """Combined-residual twin of :meth:`_admissible`.

        One bincount over the concatenated cells carries the same loads,
        and the elementwise capacity comparison over the combined vector
        is the conjunction of the reference's two ``all`` checks.
        """
        if time_left <= 0:
            return False
        need = ctx.remaining[idx] / time_left
        load = np.bincount(
            np.concatenate((ctx.srcs[idx], dsts_off[idx])),
            weights=np.concatenate((need, need)),
            minlength=res.shape[0],
        )
        return bool((load <= res * (1 + 1e-9)).all())

    def next_event_hint(self, ctx: SchedulingContext, rates: np.ndarray):
        """Re-plan at the nearest admitted deadline (rates change there)."""
        best = None
        for cid in ctx.active_coflow_ids():
            dl = ctx.progress[cid].absolute_deadline
            if dl is None or not self._admitted.get(cid, False):
                continue
            dt = dl - ctx.time
            if dt > 0 and (best is None or dt < best):
                best = dt
        return best
