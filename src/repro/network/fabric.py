"""The datacenter fabric model: a non-blocking switch.

Following Varys and the CCF paper (§II-B), the network core is abstracted
as one big non-blocking switch interconnecting all machines: congestion can
only occur at machine NICs (ingress/egress ports), never inside the core.
This matches full-bisection-bandwidth Clos topologies used in production
data centers.

All port rates default to 128 MB/s (CoflowSim's 1 Gbps NIC default), the
value used to convert the paper's byte counts into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Fabric", "DEFAULT_PORT_RATE"]

#: CoflowSim's default NIC speed: 1 Gbps expressed in bytes per second.
DEFAULT_PORT_RATE: float = 128e6


@dataclass
class Fabric:
    """A non-blocking switch with ``n_ports`` machines attached.

    Parameters
    ----------
    n_ports:
        Number of machines (== number of ingress ports == egress ports).
    rate:
        Uniform port capacity in bytes/second.  The paper assumes all ports
        share one normalized unit capacity; heterogeneous rates are
        supported through ``egress_rates`` / ``ingress_rates``.
    egress_rates, ingress_rates:
        Optional per-port capacities overriding ``rate``.
    """

    n_ports: int
    rate: float = DEFAULT_PORT_RATE
    egress_rates: np.ndarray | None = field(default=None)
    ingress_rates: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.n_ports <= 0:
            raise ValueError("fabric needs at least one port")
        if not self.rate > 0:
            raise ValueError("port rate must be positive")
        if self.egress_rates is None:
            self.egress_rates = np.full(self.n_ports, float(self.rate))
        else:
            self.egress_rates = np.asarray(self.egress_rates, dtype=float).copy()
        if self.ingress_rates is None:
            self.ingress_rates = np.full(self.n_ports, float(self.rate))
        else:
            self.ingress_rates = np.asarray(self.ingress_rates, dtype=float).copy()
        for name, arr in (("egress", self.egress_rates), ("ingress", self.ingress_rates)):
            if arr.shape != (self.n_ports,):
                raise ValueError(f"{name}_rates must have shape ({self.n_ports},)")
            if (arr <= 0).any():
                raise ValueError(f"{name}_rates must be strictly positive")

    def egress_alive(self) -> np.ndarray:
        """Boolean mask of ports that can currently send (rate > 0).

        Construction requires strictly positive rates; a zero only appears
        mid-simulation when a failure event from
        :mod:`repro.network.dynamics` kills the direction.
        """
        return self.egress_rates > 0

    def ingress_alive(self) -> np.ndarray:
        """Boolean mask of ports that can currently receive (rate > 0)."""
        return self.ingress_rates > 0

    def alive(self) -> np.ndarray:
        """Boolean mask of fully functional ports (both directions up)."""
        return self.egress_alive() & self.ingress_alive()

    @property
    def uniform(self) -> bool:
        """True when every port has the same ingress and egress rate."""
        return bool(
            np.all(self.egress_rates == self.egress_rates[0])
            and np.all(self.ingress_rates == self.egress_rates[0])
        )

    def validate_rates(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        rates: np.ndarray,
        *,
        rtol: float = 1e-6,
    ) -> None:
        """Check that a rate allocation respects port capacities.

        Raises ``ValueError`` when the aggregate egress rate at any source
        or ingress rate at any destination exceeds the port capacity
        (within relative tolerance ``rtol``).  Used by the simulator to
        assert scheduler feasibility at every epoch.
        """
        if (rates < 0).any():
            raise ValueError("negative flow rate")
        out = np.bincount(srcs, weights=rates, minlength=self.n_ports)
        inb = np.bincount(dsts, weights=rates, minlength=self.n_ports)
        tol_out = self.egress_rates * (1 + rtol)
        tol_in = self.ingress_rates * (1 + rtol)
        if (out > tol_out).any():
            port = int(np.argmax(out - tol_out))
            raise ValueError(
                f"egress capacity violated at port {port}: "
                f"{out[port]:.6g} > {self.egress_rates[port]:.6g}"
            )
        if (inb > tol_in).any():
            port = int(np.argmax(inb - tol_in))
            raise ValueError(
                f"ingress capacity violated at port {port}: "
                f"{inb[port]:.6g} > {self.ingress_rates[port]:.6g}"
            )
