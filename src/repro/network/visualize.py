"""Text-mode visualization of simulation timelines.

Terminal-friendly renderings of a run: a Gantt chart of coflow lifetimes
and a per-epoch fabric-throughput sparkline.  No plotting dependency --
these are meant for examples, debugging and log files.
"""

from __future__ import annotations

from repro.network.simulator import SimulationResult

__all__ = ["gantt", "throughput_sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def gantt(
    result: SimulationResult,
    *,
    width: int = 60,
    names: dict[int, str] | None = None,
) -> str:
    """ASCII Gantt chart of coflow lifetimes (arrival -> completion).

    Parameters
    ----------
    result:
        A finished simulation.
    width:
        Chart width in characters.
    names:
        Optional coflow-id -> label mapping; defaults to ``cf<id>``.
    """
    if not result.completion_times:
        return "(no coflows)"
    if width < 10:
        raise ValueError("width must be at least 10")
    makespan = result.makespan
    if makespan <= 0:
        return "(instantaneous run)"

    lines = []
    label_w = max(
        len((names or {}).get(cid, f"cf{cid}"))
        for cid in result.completion_times
    )
    for cid in sorted(result.completion_times):
        end = result.completion_times[cid]
        start = end - result.ccts[cid]
        a = int(round(start / makespan * (width - 1)))
        b = max(int(round(end / makespan * (width - 1))), a)
        bar = " " * a + "█" * (b - a + 1)
        label = (names or {}).get(cid, f"cf{cid}").rjust(label_w)
        lines.append(f"{label} |{bar:<{width}}| {result.ccts[cid]:.2f}s")
    lines.append(
        f"{'':>{label_w}} +{'-' * width}+ makespan {makespan:.2f}s"
    )
    return "\n".join(lines)


def throughput_sparkline(
    result: SimulationResult, *, width: int = 60
) -> str:
    """Sparkline of aggregate fabric throughput over time.

    Requires the run to have been recorded with ``record_timeline=True``;
    raises otherwise.
    """
    if not result.epochs:
        raise ValueError(
            "no timeline recorded; construct the simulator with "
            "record_timeline=True"
        )
    if width < 1:
        raise ValueError("width must be positive")
    makespan = result.makespan
    if makespan <= 0:
        return ""
    # Time-weighted resampling of the epoch rates onto `width` buckets.
    buckets = [0.0] * width
    for e in result.epochs:
        if e.duration <= 0:
            continue
        lo = e.start / makespan * width
        hi = (e.start + e.duration) / makespan * width
        i = int(lo)
        while i < hi and i < width:
            seg = min(i + 1, hi) - max(i, lo)
            buckets[i] += e.aggregate_rate * seg
            i += 1
    peak = max(buckets) or 1.0
    chars = [
        _BLOCKS[min(int(b / peak * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
        for b in buckets
    ]
    return "".join(chars)
