"""CoflowSim trace-format interoperability.

CoflowSim -- the Java simulator behind Varys, Aalo and the CCF paper's
evaluation -- consumes text traces in the format of the public Facebook
trace::

    <numPorts> <numCoflows>
    <id> <arrivalMillis> <numMappers> <loc...> <numReducers> <loc:MB...>

Each reducer's shuffle volume (in MB) is split equally across the
coflow's mappers.  This module reads that format into our
:class:`~repro.network.flow.Coflow` objects and writes traces back out,
so workloads can flow between this library and the original tool.

Writing is exact for coflows with mapper/reducer structure (every source
sends the same volume to a given destination); general coflows are
rejected rather than silently distorted.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.network.flow import Coflow, Flow

__all__ = ["read_coflowsim_trace", "write_coflowsim_trace"]

_MB = 1e6


def read_coflowsim_trace(path: str | Path) -> tuple[int, list[Coflow]]:
    """Parse a CoflowSim trace file.

    Returns ``(n_ports, coflows)``.  Arrival times are converted from
    milliseconds to seconds, reducer volumes from MB to bytes.
    """
    lines = [
        ln.strip()
        for ln in Path(path).read_text().splitlines()
        if ln.strip() and not ln.lstrip().startswith("#")
    ]
    if not lines:
        raise ValueError(f"{path}: empty trace")
    header = lines[0].split()
    if len(header) != 2:
        raise ValueError(f"{path}: malformed header {lines[0]!r}")
    n_ports, n_coflows = int(header[0]), int(header[1])
    if len(lines) - 1 != n_coflows:
        raise ValueError(
            f"{path}: header promises {n_coflows} coflows, found {len(lines) - 1}"
        )

    coflows: list[Coflow] = []
    for ln in lines[1:]:
        tok = ln.split()
        pos = 0

        def take() -> str:
            nonlocal pos
            if pos >= len(tok):
                raise ValueError(f"truncated coflow line: {ln!r}")
            val = tok[pos]
            pos += 1
            return val

        cid = int(take())
        arrival = float(take()) / 1000.0
        n_mappers = int(take())
        mappers = [int(take()) for _ in range(n_mappers)]
        n_reducers = int(take())
        flows: list[Flow] = []
        for _ in range(n_reducers):
            loc_mb = take()
            if ":" not in loc_mb:
                raise ValueError(f"malformed reducer token {loc_mb!r} in {ln!r}")
            loc_s, mb_s = loc_mb.split(":", 1)
            reducer = int(loc_s)
            total = float(mb_s) * _MB
            per_mapper = total / n_mappers
            for m in mappers:
                if m != reducer and per_mapper > 0:
                    flows.append(Flow(src=m, dst=reducer, volume=per_mapper))
        for port in mappers + [f.dst for f in flows]:
            if port >= n_ports:
                raise ValueError(
                    f"coflow {cid} references port {port} >= {n_ports}"
                )
        coflows.append(
            Coflow(flows=flows, arrival_time=arrival, coflow_id=cid)
        )
    return n_ports, coflows


def _mapper_reducer_structure(
    coflow: Coflow,
) -> tuple[list[int], dict[int, float]]:
    """Decompose a coflow into (mappers, reducer -> total bytes).

    Requires the coflow to be *equal-split*: every present (src, dst)
    pair carries the same volume for a given dst, and every mapper sends
    to every reducer (minus self-loops).  Raises ``ValueError`` otherwise.
    """
    mappers = sorted({f.src for f in coflow.flows})
    reducers: dict[int, dict[int, float]] = {}
    for f in coflow.flows:
        reducers.setdefault(f.dst, {})[f.src] = f.volume
    totals: dict[int, float] = {}
    for dst, by_src in reducers.items():
        expected_srcs = [m for m in mappers if m != dst]
        if sorted(by_src) != expected_srcs:
            raise ValueError(
                f"coflow {coflow.coflow_id}: reducer {dst} does not receive "
                "from every mapper; not representable in CoflowSim format"
            )
        vols = np.array(list(by_src.values()))
        if vols.size and not np.allclose(vols, vols[0], rtol=1e-9):
            raise ValueError(
                f"coflow {coflow.coflow_id}: unequal per-mapper volumes at "
                f"reducer {dst}; not representable in CoflowSim format"
            )
        # CoflowSim divides by ALL mappers including a co-located one.
        totals[dst] = float(vols[0]) * len(mappers) if vols.size else 0.0
    return mappers, totals


def write_coflowsim_trace(
    coflows: list[Coflow], path: str | Path, *, n_ports: int
) -> None:
    """Write coflows in CoflowSim's trace format.

    Only equal-split mapper/reducer coflows are representable; a coflow
    with irregular structure raises ``ValueError``.
    """
    lines = [f"{n_ports} {len(coflows)}"]
    for i, c in enumerate(coflows):
        cid = c.coflow_id if c.coflow_id >= 0 else i
        if c.max_port >= n_ports:
            raise ValueError(f"coflow {cid} exceeds n_ports={n_ports}")
        mappers, totals = _mapper_reducer_structure(c)
        parts = [
            str(cid),
            str(int(round(c.arrival_time * 1000))),
            str(len(mappers)),
            *[str(m) for m in mappers],
            str(len(totals)),
            *[
                f"{dst}:{totals[dst] / _MB:.6g}"
                for dst in sorted(totals)
            ],
        ]
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")
