"""Event-driven flow-level (fluid) coflow simulator.

Substitute for CoflowSim, the measurement back-end of Varys, Aalo and the
CCF paper.  The simulator advances in *epochs*: at each epoch the active
scheduling discipline assigns a rate to every active flow; the epoch lasts
until the next flow completion or coflow arrival; volumes are then drained
fluidly at the assigned rates.  Because at least one flow finishes (or one
coflow arrives) per epoch, a run takes at most ``n_flows + n_coflows``
epochs, each costing one scheduler invocation.

The simulator validates every allocation against the fabric's port
capacities, so an infeasible scheduler fails loudly rather than silently
producing optimistic CCTs.

Fault tolerance: when the attached :class:`FabricDynamics` schedule kills
a port (rate zero), flows pinned to it are detected and handed to the
run's :class:`~repro.network.recovery.RecoveryPolicy` (abort / retry /
replan) instead of deadlocking; every failure and recovery action is
recorded in the structured failure log on :class:`SimulationResult`.

Watchdogs: the epoch loop supervises *itself*.  Three independent
tripwires -- an epoch budget (``max_epochs``), an optional wall-clock
budget (``wall_clock_budget_s``) and a no-progress stall detector
(``stall_epochs`` consecutive epochs without the simulation clock
advancing) -- abort a pathological run with a structured error from
:mod:`repro.core.resilience` (:class:`BudgetExceeded` /
:class:`StallError`, both ``RuntimeError`` subclasses) carrying a crash
report (repro header, active coflows, last observed events) instead of
spinning forever.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> network)
    from repro.core.noise import NoisyEstimates

from repro.network.dynamics import FabricDynamics
from repro.network.events import CoflowProgress, FlowGroups, SchedulingContext
from repro.network.fabric import Fabric
from repro.network.flow import Coflow
from repro.network.recovery import (
    ActiveFlows,
    FailureRecord,
    RecoveryManager,
    RecoveryPolicy,
    make_recovery_policy,
)
from repro.network.schedulers.base import CoflowScheduler
from repro.obs.instrument import Instrumentation, MultiInstrumentation

__all__ = [
    "ArrivalSource",
    "CoflowSimulator",
    "SimulationResult",
    "Epoch",
    "DEFAULT_STALL_EPOCHS",
]

#: Remaining volume below which a flow is considered finished (bytes).
_VOLUME_EPS = 1e-6

#: Default bound on consecutive epochs without simulation-clock progress.
#: Legitimate zero-duration epochs each consume a discrete event (an
#: admission, a dynamics change, a recovery wakeup) and therefore come in
#: short bursts; thousands in a row mean the loop is spinning on a
#: scheduler/dynamics interaction that will never terminate.
DEFAULT_STALL_EPOCHS = 10_000

#: Floor on the scheduler-reported remaining volume under estimate noise:
#: censored flows report "size unknown" as this near-zero value, and a
#: strictly positive view keeps every discipline's allocation well-defined.
_ESTIMATE_FLOOR = 1e-6


class ArrivalSource:
    """Open-loop coflow feed polled by the epoch loop (service mode).

    Unlike the batch path (all coflows known up front) or the
    ``injector`` callback (fired on completions), a source is consulted
    at the top of *every* epoch, which lets an admission controller
    release, defer and shed arrivals against live simulator state.
    Implementations must be deterministic given their seed: the epoch
    loop calls the two methods in a fixed order and never concurrently.

    Subclassing this base is optional -- any object with the same two
    methods works (structural typing); the base exists for
    documentation and as a default no-op implementation.
    """

    def next_time(self, now: float) -> float | None:
        """Earliest future time the source may release a coflow.

        Bounds the epoch length so the loop never overshoots an
        arrival.  None means the source is exhausted -- the run may end
        once in-flight work drains.
        """
        return None

    def take(self, now: float, slack: float) -> list[Coflow]:
        """Coflows released at or before ``now`` (+ ``slack`` ULP grace).

        Called once per epoch before the pending drain.  Released
        coflows may carry an ``arrival_time`` earlier than ``now``
        (a deferred admission); the CCT keeps charging that wait.
        """
        return []


def _arrival_slack(t: float) -> float:
    """Admission tolerance at simulation time ``t``.

    The epoch clock accumulates ``t += dt`` rounding error, so a coflow
    arriving exactly at an epoch boundary can find ``t`` a few ULP short
    of its arrival time.  A fixed absolute epsilon (the old ``1e-15``)
    falls below one ULP once ``t`` exceeds ~4.5 -- at large simulated
    times (arrivals of 1e9 and beyond) boundary arrivals were admitted an
    epoch late.  The slack therefore scales with the float spacing at
    ``t`` while keeping the absolute floor for times near zero.
    """
    return max(1e-15, 4.0 * float(np.spacing(abs(t))))


@dataclass
class Epoch:
    """One simulator step: constant rates over ``[start, start + duration)``."""

    start: float
    duration: float
    active_flows: int
    aggregate_rate: float


class _TimelineCollector(Instrumentation):
    """Builds ``SimulationResult.epochs`` from the epoch event stream.

    The legacy ``record_timeline=True`` path is now just one more
    consumer of the instrumentation stream: the simulator attaches this
    collector (alongside any user-supplied sink) instead of maintaining
    a bespoke parallel timeline.

    ``limit`` bounds memory for long-running (service-mode) runs: only
    the most recent ``limit`` epochs are kept in a ring buffer.  The
    default (None) keeps every epoch, unchanged for batch runs.
    """

    enabled = True

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError(f"timeline limit must be positive, got {limit}")
        self._limit = limit
        self.dropped = 0
        self.epochs: "deque[Epoch] | list[Epoch]" = (
            deque(maxlen=limit) if limit is not None else []
        )

    def epoch(self, *, start, duration, active_flows, aggregate_rate,
              detail=None):
        if self._limit is not None and len(self.epochs) == self._limit:
            self.dropped += 1
        self.epochs.append(
            Epoch(
                start=start,
                duration=duration,
                active_flows=active_flows,
                aggregate_rate=aggregate_rate,
            )
        )


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    completion_times:
        Absolute finish time of each *completed* coflow, keyed by id.
    ccts:
        Coflow completion times (finish - arrival), keyed by coflow id.
    makespan:
        Finish time of the last completed coflow.
    total_bytes:
        Total input volume of all admitted coflows (re-transmissions after
        failures are not double-counted here; see ``bytes_lost``).
    epochs:
        Per-epoch trace.  **Silently empty unless a timeline was
        requested**: construct the simulator with
        ``record_timeline=True`` (the ``ccf simulate`` flag is
        ``--timeline``) or attach an instrumentation sink that records
        epoch samples.  An empty list therefore means "not recorded",
        not "zero epochs" -- ``n_epochs`` is always populated.
    failures:
        Structured failure log: port failures/recoveries and every
        recovery action taken (aborts, suspends, reroutes, resumes) with
        the bytes each one lost.  Empty on failure-free runs.
    failed_coflows:
        Coflows that never completed because the recovery policy aborted
        them (or they were unrecoverable), mapped to the abort time.
        These carry no CCT and are excluded from ``average_cct``.
    n_epochs:
        Number of epoch-loop iterations the run executed.  Unlike
        ``epochs`` it is always recorded (no timeline memory cost) --
        the hot-path benchmark divides it by wall time for epochs/sec.
    """

    completion_times: dict[int, float]
    ccts: dict[int, float]
    makespan: float
    total_bytes: float
    epochs: list[Epoch] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    failed_coflows: dict[int, float] = field(default_factory=dict)
    n_epochs: int = 0
    epochs_dropped: int = 0

    @property
    def average_cct(self) -> float:
        """Mean CCT across completed coflows -- the headline metric."""
        if not self.ccts:
            return 0.0
        return float(np.mean(list(self.ccts.values())))

    @property
    def max_cct(self) -> float:
        """Worst CCT across coflows."""
        if not self.ccts:
            return 0.0
        return float(max(self.ccts.values()))

    def cct_of(self, coflow_id: int) -> float:
        """CCT of one coflow by id."""
        return self.ccts[coflow_id]

    @property
    def timeline_truncated(self) -> bool:
        """True when ``epochs`` is a partial (ring-buffered) timeline.

        A ``timeline_limit`` ring buffer drops the oldest samples once
        full; ``epochs_dropped`` counts them.  Statistics derived from
        ``epochs`` -- busy time, mean epoch duration, the Gantt time
        axis -- describe only the retained window then.  (``n_epochs``
        cannot stand in for this check: it also counts idle fast-forward
        iterations that never emit a timeline sample, so it exceeds
        ``len(epochs)`` even on untruncated runs.)
        """
        return self.epochs_dropped > 0

    @property
    def bytes_lost(self) -> float:
        """Total bytes lost to failures (re-sent or abandoned)."""
        return float(sum(r.bytes_lost for r in self.failures))

    @property
    def n_port_failures(self) -> int:
        """Number of port-failure events observed during the run."""
        return sum(1 for r in self.failures if r.kind == "port_failed")

    def failure_summary(self) -> dict[str, float]:
        """Aggregate failure/recovery counters for experiment tables."""
        kinds = [r.kind for r in self.failures]
        return {
            "port_failures": kinds.count("port_failed"),
            "reroutes": sum(
                r.flows for r in self.failures if r.kind == "reroute"
            ),
            "restarts": sum(
                r.flows for r in self.failures if r.kind == "resume"
            ),
            "aborted_coflows": len(self.failed_coflows),
            "bytes_lost": self.bytes_lost,
        }


class CoflowSimulator:
    """Fluid-flow simulator for a set of coflows on a non-blocking fabric.

    Parameters
    ----------
    fabric:
        The switch model (ports and rates).
    scheduler:
        Inter-coflow scheduling discipline deciding per-epoch rates.
    record_timeline:
        When True, keep an :class:`Epoch` trace on
        ``SimulationResult.epochs`` (memory grows with epochs).  When
        False (the default) ``epochs`` stays empty -- only ``n_epochs``
        counts the iterations.
    timeline_limit:
        With ``record_timeline=True``, keep only the most recent this
        many epochs (ring buffer) so long-running service-mode runs have
        bounded timeline memory.  None (the default) keeps every epoch.
    dynamics:
        Optional schedule of mid-run port-rate changes (and failures).
    recovery:
        Recovery policy (or registry name ``"abort"`` / ``"retry"`` /
        ``"replan"``) applied to flows stranded by port failures.
        Required whenever ``dynamics`` contains failure events.
    estimate_noise:
        Optional :class:`repro.core.noise.NoisyEstimates` degrading the
        *scheduler's view* of remaining flow volumes (seeded per-flow
        multiplicative noise; censored flows report a near-zero size).
        The fluid drain always charges the true bytes, so this measures
        how much schedule quality a discipline loses to inaccurate flow
        information -- non-clairvoyant disciplines (D-CLAS) are immune by
        construction.
    incremental:
        When True (default) the epoch loop runs its vectorized hot path:
        per-coflow flow groups are cached across epochs (rebuilt only
        when the active-flow set changes), the scheduler receives that
        cache through ``SchedulingContext.groups``, and the noise view
        multiplies a flow-aligned factor column instead of looping per
        flow.  When False the original per-flow/per-mask reference path
        runs instead.  Both paths are bit-identical by construction --
        the equivalence is pinned by property tests and re-checked by
        the ``ccf bench`` harness, which times one against the other.
    batch_events:
        When True (default) the epoch loop runs event-horizon batching:
        after each allocation the scheduler reports how long the rate
        array stays valid (:meth:`CoflowScheduler.rates_valid_until`),
        and epochs that change neither the active flow set, the fabric,
        nor the recovery state *reuse* the cached array instead of
        re-invoking the scheduler.  Epoch boundaries are unchanged --
        the loop still stops at every completion, arrival, source poll,
        scheduler hint and fabric event, so results (including
        ``n_epochs``) are bit-identical to ``batch_events=False``;
        only the redundant recomputation is skipped.  The win shows on
        service-mode runs where admission-deferral polls slice the
        timeline into many epochs with an unchanged fleet.  Pass False
        to force a fresh allocation every epoch (the escape hatch, and
        the ``ccf bench`` reference for the large-fleet cases).
    instrumentation:
        Optional :class:`repro.obs.Instrumentation` sink receiving the
        run's event stream: coflow lifecycle transitions (submit ->
        admit -> first-byte -> complete/abort), per-epoch samples and
        every failure-log record.  Defaults to off; with no sink
        attached the epoch loop pays one boolean test per emission site
        and results are bit-identical to an uninstrumented run (pinned
        by property tests and the bench gate).
    wall_clock_budget_s:
        Optional hard bound on the run's *wall-clock* time.  When the
        epoch loop is still running after this many real seconds it
        aborts with :class:`repro.core.resilience.BudgetExceeded`
        carrying a crash report.  None (the default) disables the check
        entirely -- the hot path pays nothing.
    stall_epochs:
        No-progress watchdog: abort with
        :class:`repro.core.resilience.StallError` after this many
        *consecutive* epochs in which the simulation clock did not
        advance.  Such epochs legitimately occur in short bursts (each
        consumes a discrete event); an unbounded streak is the
        signature of an infinite spin.  Defaults to
        :data:`DEFAULT_STALL_EPOCHS`; pass None or 0 to disable.

    Examples
    --------
    >>> from repro.network import Fabric, Coflow, Flow, CoflowSimulator
    >>> from repro.network.schedulers import make_scheduler
    >>> fab = Fabric(n_ports=3, rate=1.0)
    >>> cf = Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0)])
    >>> sim = CoflowSimulator(fab, make_scheduler("sebf"))
    >>> res = sim.run([cf])
    >>> res.makespan  # port 1 must ingest 4 bytes at rate 1
    4.0
    """

    def __init__(
        self,
        fabric: Fabric,
        scheduler: CoflowScheduler,
        *,
        record_timeline: bool = False,
        max_epochs: int = 10_000_000,
        dynamics: "FabricDynamics | None" = None,
        recovery: "RecoveryPolicy | str | None" = None,
        estimate_noise: "NoisyEstimates | None" = None,
        incremental: bool = True,
        batch_events: bool = True,
        instrumentation: "Instrumentation | None" = None,
        wall_clock_budget_s: float | None = None,
        stall_epochs: int | None = DEFAULT_STALL_EPOCHS,
        timeline_limit: int | None = None,
    ) -> None:
        if wall_clock_budget_s is not None and wall_clock_budget_s <= 0:
            raise ValueError(
                f"wall_clock_budget_s must be strictly positive or None, "
                f"got {wall_clock_budget_s}"
            )
        if stall_epochs is not None and stall_epochs < 0:
            raise ValueError(
                f"stall_epochs must be >= 0 or None, got {stall_epochs}"
            )
        self.fabric = fabric
        self.scheduler = scheduler
        self.record_timeline = record_timeline
        self.timeline_limit = timeline_limit
        self.max_epochs = max_epochs
        self.wall_clock_budget_s = wall_clock_budget_s
        self.stall_epochs = stall_epochs or 0
        self.dynamics = dynamics
        self.incremental = incremental
        self.batch_events = batch_events
        self.instrumentation = (
            instrumentation
            if instrumentation is not None and instrumentation.enabled
            else None
        )
        self.estimate_noise = (
            None
            if estimate_noise is None or estimate_noise.is_null
            else estimate_noise
        )
        if isinstance(recovery, str):
            recovery = make_recovery_policy(recovery)
        self.recovery = recovery
        if dynamics is not None:
            dynamics.validate_against(fabric)
            if dynamics.has_failures and recovery is None:
                raise ValueError(
                    "dynamics schedule contains port-failure events "
                    "(rate 0); pass recovery='abort'|'retry'|'replan' "
                    "(or a RecoveryPolicy) so stranded flows are handled"
                )

    def run(
        self,
        coflows: Sequence[Coflow] | Iterable[Coflow],
        *,
        injector: "Callable[[int, float], list[Coflow]] | None" = None,
        on_abort: "Callable[[int, float], list[Coflow]] | None" = None,
        source: "ArrivalSource | None" = None,
    ) -> SimulationResult:
        """Simulate the given coflows to completion and return the result.

        Parameters
        ----------
        coflows:
            Initially known coflows.  May be empty when a ``source`` is
            attached (the open-loop service mode starts cold).
        injector:
            Optional callback ``injector(completed_coflow_id, time)``
            invoked whenever a coflow finishes; any coflows it returns
            join the simulation (their ``arrival_time`` must be >= the
            completion time, and their ids must be fresh).  This is how
            DAG-structured jobs release downstream shuffles.
        on_abort:
            Optional callback ``on_abort(aborted_coflow_id, time)``
            invoked whenever the recovery policy aborts a coflow (or a
            suspended coflow becomes unrecoverable); any coflows it
            returns join the simulation under the same rules as
            ``injector``.  This is how the job-level fault-tolerance
            layer resubmits a failed stage (retried or replanned) as a
            fresh attempt.
        source:
            Optional :class:`ArrivalSource` polled at the top of every
            epoch: ``source.take(t, slack)`` returns coflows released at
            or before ``t`` and ``source.next_time(t)`` bounds the epoch
            length so no arrival is overshot.  Unlike ``injector``
            coflows, source releases may carry an ``arrival_time`` in
            the *past* -- an admission policy that deferred a coflow
            releases it late on purpose, and the CCT must keep charging
            the queueing delay.  The run ends only when the source is
            exhausted (``next_time`` returns None and ``take`` drains
            empty) and no flows remain.
        """
        coflows = list(coflows)
        if not coflows and source is None:
            return SimulationResult({}, {}, 0.0, 0.0)
        coflows = [self._with_id(c, i) for i, c in enumerate(coflows)]
        ids = [c.coflow_id for c in coflows]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate coflow ids: {sorted(ids)}")
        for c in coflows:
            if c.max_port >= self.fabric.n_ports:
                raise ValueError(
                    f"coflow {c.coflow_id} references port {c.max_port} "
                    f">= fabric size {self.fabric.n_ports}"
                )
        self.scheduler.reset()

        # Observability: the legacy ``record_timeline`` epochs list and
        # any user-supplied sink consume one shared event stream -- a
        # timeline collector is just another Instrumentation attached to
        # the same emission sites (see repro.obs).
        obs: Instrumentation | None = self.instrumentation
        collector: _TimelineCollector | None = None
        if self.record_timeline:
            collector = _TimelineCollector(self.timeline_limit)
            obs = (
                collector
                if obs is None
                else MultiInstrumentation([collector, obs])
            )
        track = obs is not None
        wants_flow_events = track and obs.wants_flow_events
        wants_detail = track and (
            obs.wants_flow_events or obs.wants_port_samples
        )
        first_byte_seen: set[int] = set()
        failures_seen = 0

        def sync_failures(manager: RecoveryManager) -> None:
            """Forward newly appended failure-log records to the sink."""
            nonlocal failures_seen
            records = manager.records
            while failures_seen < len(records):
                obs.failure(records[failures_seen])
                failures_seen += 1

        # With dynamics, work on a private fabric copy and a private event
        # schedule so runs are repeatable and the caller's fabric pristine.
        fabric = self.fabric
        dynamics: FabricDynamics | None = None
        recovery: RecoveryManager | None = None
        if self.dynamics is not None:
            fabric = Fabric(
                n_ports=self.fabric.n_ports,
                rate=self.fabric.rate,
                egress_rates=self.fabric.egress_rates,
                ingress_rates=self.fabric.ingress_rates,
            )
            dynamics = FabricDynamics(list(self.dynamics.events))
            if self.recovery is not None:
                recovery = RecoveryManager(self.recovery, fabric.n_ports)

        progress = {
            c.coflow_id: CoflowProgress(
                coflow_id=c.coflow_id,
                arrival_time=c.arrival_time,
                total_volume=c.total_volume,
                width=c.width,
                name=c.name,
                deadline=c.deadline,
                weight=c.weight,
            )
            for c in coflows
        }
        # Min-heap on (arrival, id): O(log n) admission instead of the
        # O(n) ``pop(0)`` + full re-sort the list queue needed.  Ids are
        # unique, so the Coflow payload never gets compared.
        pending: list[tuple[float, int, Coflow]] = [
            (c.arrival_time, c.coflow_id, c) for c in coflows
        ]
        heapq.heapify(pending)
        total_bytes = float(sum(c.total_volume for c in coflows))
        known_ids = {c.coflow_id for c in coflows}
        if track:
            obs.run_start(
                time=0.0, n_coflows=len(coflows), total_bytes=total_bytes
            )
            for c in coflows:
                obs.coflow_submit(
                    c.coflow_id,
                    time=0.0,
                    arrival=c.arrival_time,
                    volume=c.total_volume,
                    width=c.width,
                    name=c.name,
                    weight=c.weight,
                )

        def admit(
            new: list[Coflow], now: float, *, allow_past: bool = False
        ) -> None:
            """Validate and admit callback-provided coflows mid-run.

            ``allow_past`` relaxes the no-time-travel check for source
            releases: a deferred coflow keeps its original arrival time
            (before ``now``) so its CCT honestly includes the queueing
            delay the admission policy imposed.
            """
            nonlocal total_bytes
            if not new:
                return
            for c in new:
                if c.coflow_id < 0 or c.coflow_id in known_ids:
                    raise ValueError(
                        f"injected coflow needs a fresh non-negative id, "
                        f"got {c.coflow_id}"
                    )
                if not allow_past and c.arrival_time < now - 1e-9:
                    raise ValueError(
                        f"injected coflow {c.coflow_id} arrives in the past "
                        f"({c.arrival_time} < {now})"
                    )
                if c.max_port >= self.fabric.n_ports:
                    raise ValueError(
                        f"injected coflow {c.coflow_id} references port "
                        f"{c.max_port} >= fabric size {self.fabric.n_ports}"
                    )
                known_ids.add(c.coflow_id)
                progress[c.coflow_id] = CoflowProgress(
                    coflow_id=c.coflow_id,
                    arrival_time=c.arrival_time,
                    total_volume=c.total_volume,
                    width=c.width,
                    name=c.name,
                    deadline=c.deadline,
                    weight=c.weight,
                )
                total_bytes += c.total_volume
                heapq.heappush(pending, (c.arrival_time, c.coflow_id, c))
                if track:
                    obs.coflow_submit(
                        c.coflow_id,
                        time=now,
                        arrival=c.arrival_time,
                        volume=c.total_volume,
                        width=c.width,
                        name=c.name,
                        weight=c.weight,
                    )

        def inject_after(cid: int, now: float) -> None:
            """Admit the injector's new coflows for a completed one."""
            if injector is not None:
                admit(injector(cid, now), now)

        def resubmit_after(aborted: list[int], now: float) -> None:
            """Hand aborted coflows to ``on_abort`` and admit replacements."""
            if on_abort is None:
                return
            for cid in aborted:
                admit(on_abort(cid, now), now)

        fl = ActiveFlows.empty()
        incremental = self.incremental

        noise = self.estimate_noise
        # Factors are memoized per coflow so a whole coflow's entries can
        # be evicted in O(1) when it completes or aborts -- the old flat
        # ``(cid, src, dst)`` dict grew without bound over the run.
        noise_factors: dict[int, dict[tuple[int, int], float]] = {}
        # Debug/test handle: lets callers verify entries are evicted as
        # coflows leave the system instead of accumulating over the run.
        self._noise_factors = noise_factors
        if noise is not None and incremental:
            # Activate the flow-aligned factor column; rows appended by
            # the recovery layer arrive as NaN and are filled lazily.
            fl.view_factor = np.empty(0)

        def flow_noise_factor(cid: int, src: int, dst: int) -> float:
            per = noise_factors.get(cid)
            if per is None:
                per = noise_factors[cid] = {}
            factor = per.get((src, dst))
            if factor is None:
                factor = noise.flow_factor(cid, src, dst)
                per[(src, dst)] = factor
            return factor

        def scheduler_view(flows: ActiveFlows) -> np.ndarray:
            """Remaining volumes as the discipline sees them (maybe noisy)."""
            if noise is None:
                return flows.remaining
            vf = flows.view_factor
            if vf is not None:
                # Vectorized path: one multiply over the cached factor
                # column; only rows the recovery layer appended since the
                # last epoch (NaN sentinel) hit the per-flow memo.
                missing = np.isnan(vf)
                if missing.any():
                    for i in np.flatnonzero(missing):
                        vf[i] = flow_noise_factor(
                            int(flows.cids[i]),
                            int(flows.srcs[i]),
                            int(flows.dsts[i]),
                        )
                out = flows.remaining * vf
            else:
                out = np.empty(flows.size)
                for i in range(flows.size):
                    out[i] = flows.remaining[i] * flow_noise_factor(
                        int(flows.cids[i]),
                        int(flows.srcs[i]),
                        int(flows.dsts[i]),
                    )
            return np.maximum(out, _ESTIMATE_FLOOR)

        # FlowGroups cache: the grouping only depends on flow identity, so
        # it survives every epoch that neither appends nor removes flows.
        groups_cache: FlowGroups | None = None
        groups_version: int = -1

        def current_groups() -> FlowGroups:
            nonlocal groups_cache, groups_version
            if groups_cache is None or groups_version != fl.version:
                groups_cache = FlowGroups(fl.cids)
                groups_version = fl.version
            return groups_cache

        # Event-horizon rate cache (batch_events): one allocation is
        # reused across epochs while (a) the active flow set is unchanged
        # (``fl.version``), (b) no fabric/recovery mutation occurred since
        # it was computed (``cache_dirty``) and (c) the clock is strictly
        # before the scheduler's self-reported validity horizon.  The
        # epoch *boundaries* are untouched -- only the recomputation is
        # skipped -- so results are bit-identical to ``batch_events=False``.
        batch = self.batch_events
        cached_rates: np.ndarray | None = None
        cached_positive: np.ndarray | None = None
        cache_version = -1
        cache_valid_until = -np.inf
        cache_dirty = True

        t = 0.0
        completion: dict[int, float] = {}

        def complete(cid: int, now: float) -> None:
            completion[cid] = now
            progress[cid].completion_time = now
            noise_factors.pop(cid, None)
            if track:
                obs.coflow_complete(
                    cid, time=now, cct=now - progress[cid].arrival_time
                )
            inject_after(cid, now)

        def watchdog_abort(error):
            """Attach a crash report to a watchdog error and raise it.

            The report carries everything a post-mortem needs: the repro
            header, the simulation clock and epoch count, the active
            coflows with their outstanding bytes, the failure-log tail
            and (when a recording sink is attached) the last observed
            events.
            """
            from dataclasses import asdict

            from repro.core.resilience import crash_report

            active = []
            if fl.size:
                for cid in np.unique(fl.cids)[:20]:
                    mask = fl.cids == cid
                    active.append(
                        {
                            "coflow_id": int(cid),
                            "flows": int(mask.sum()),
                            "remaining_bytes": float(fl.remaining[mask].sum()),
                        }
                    )
            events = None
            if obs is not None:
                for sink in (obs, *getattr(obs, "children", ())):
                    if hasattr(sink, "events"):
                        events = sink.events
                        break
            context = {
                "sim_time": float(t),
                "n_epochs": n_epochs,
                "active_flows": int(fl.size),
                "active_coflows": active,
                "pending_coflows": len(pending),
                "completed_coflows": len(completion),
                "scheduler": getattr(
                    self.scheduler, "name", type(self.scheduler).__name__
                ),
                "max_epochs": self.max_epochs,
                "wall_clock_budget_s": self.wall_clock_budget_s,
                "stall_epochs": self.stall_epochs,
            }
            if recovery is not None and recovery.records:
                context["failures"] = [
                    asdict(r) for r in recovery.records[-10:]
                ]
            error.report = crash_report(error, context=context, events=events)
            raise error

        n_epochs = 0
        stall_limit = self.stall_epochs
        stalled = 0
        last_clock = -np.inf  # strictly below any valid t, including 0.0
        wall_start = (
            time.monotonic() if self.wall_clock_budget_s is not None else 0.0
        )
        for _ in range(self.max_epochs):
            n_epochs += 1
            # Watchdogs (inlined: the stall check is two comparisons per
            # epoch, the wall-clock check only runs when a budget is set).
            if stall_limit:
                if t <= last_clock:
                    stalled += 1
                    if stalled >= stall_limit:
                        from repro.core.resilience import StallError

                        watchdog_abort(
                            StallError(
                                f"simulation clock stalled at t={t:.6g}: "
                                f"{stalled} consecutive epochs without "
                                f"progress (stall_epochs={stall_limit})"
                            )
                        )
                else:
                    stalled = 0
                last_clock = t
            if (
                self.wall_clock_budget_s is not None
                and time.monotonic() - wall_start > self.wall_clock_budget_s
            ):
                from repro.core.resilience import BudgetExceeded

                watchdog_abort(
                    BudgetExceeded(
                        f"simulation exceeded its wall-clock budget of "
                        f"{self.wall_clock_budget_s:.6g}s at t={t:.6g} "
                        f"after {n_epochs} epochs"
                    )
                )
            # Admit coflows that have arrived.  The tolerance scales with
            # the ULP at ``t`` so boundary arrivals are admitted on time
            # even at large simulation clocks (see :func:`_arrival_slack`).
            slack = _arrival_slack(t)
            if source is not None:
                # Open-loop arrivals: whatever the source releases at (or
                # before) ``t`` joins the pending heap now, ahead of the
                # drain below, so a release is admitted the same epoch.
                admit(source.take(t, slack), t, allow_past=True)
            while pending and pending[0][0] <= t + slack:
                _, _, cf = heapq.heappop(pending)
                if track:
                    obs.coflow_admit(cf.coflow_id, time=t)
                if cf.width == 0:
                    # Degenerate coflow with no network flows completes instantly.
                    complete(cf.coflow_id, max(t, cf.arrival_time))
                    continue
                srcs_a, dsts_a, vols_a = cf.flow_arrays()
                if float(vols_a.max()) <= _VOLUME_EPS:
                    # Every flow is below the completion epsilon: the first
                    # epoch would drop them all without draining a byte, so
                    # treat the coflow like width == 0 and finish it now
                    # instead of letting it linger one epoch at zero rate.
                    complete(cf.coflow_id, max(t, cf.arrival_time))
                    continue
                factors = None
                if fl.view_factor is not None:
                    factors = np.array(
                        [
                            flow_noise_factor(cf.coflow_id, int(s), int(d))
                            for s, d in zip(srcs_a, dsts_a)
                        ],
                        dtype=float,
                    )
                # ``ActiveFlows.append`` concatenates (always copies), so
                # handing it the coflow's cached arrays is aliasing-safe.
                fl.append(
                    srcs=srcs_a,
                    dsts=dsts_a,
                    remaining=vols_a,
                    volume0=vols_a,
                    attempts=np.zeros(cf.width, dtype=np.int64),
                    cids=np.full(cf.width, cf.coflow_id),
                    view_factor=factors,
                )

            changed = False
            if dynamics is not None:
                changed = dynamics.apply_due(fabric, t)
                if changed:
                    cache_dirty = True

            # Fault handling: strand flows pinned to dead ports, resume
            # recovered ones, and apply the recovery policy.
            if recovery is not None and (
                changed or recovery.any_dead(fabric) or recovery.has_suspended
            ):
                # The recovery step may strand/resume flows or replan
                # placements; conservatively invalidate the rate cache
                # whenever it runs at all.
                cache_dirty = True
                aborted, local = recovery.step(fabric, t, fl, progress)
                for cid in aborted:
                    noise_factors.pop(cid, None)
                if track:
                    sync_failures(recovery)
                    for cid in aborted:
                        obs.coflow_abort(cid, time=t)
                resubmit_after(aborted, t)
                for cid in local:
                    # Replan kept the chunk on its source: if that was the
                    # coflow's last outstanding flow, the coflow is done.
                    if (
                        cid not in completion
                        and cid not in recovery.failed_coflows
                        and not (fl.cids == cid).any()
                        and cid not in recovery.suspended_coflow_ids()
                    ):
                        complete(cid, t)

            if fl.size == 0:
                waits = []
                if pending:
                    waits.append(pending[0][0])
                if source is not None:
                    nxt_src = source.next_time(t)
                    if nxt_src is not None:
                        waits.append(nxt_src)
                if dynamics is not None:
                    nxt = dynamics.next_event_time(t)
                    if nxt is not None:
                        waits.append(nxt)
                if recovery is not None:
                    wake = recovery.next_wakeup(fabric, t)
                    if wake is not None:
                        waits.append(wake)
                if waits:
                    t = max(min(waits), t)
                    continue
                if recovery is not None and recovery.has_suspended:
                    # Parked flows with no recovery event ever coming.
                    aborted = recovery.abort_unrecoverable(t)
                    for cid in aborted:
                        noise_factors.pop(cid, None)
                    if track:
                        sync_failures(recovery)
                        for cid in aborted:
                            obs.coflow_abort(cid, time=t)
                    resubmit_after(aborted, t)
                    if pending:
                        continue
                break

            ctx = SchedulingContext(
                time=t,
                fabric=fabric,
                srcs=fl.srcs,
                dsts=fl.dsts,
                remaining=scheduler_view(fl),
                coflow_ids=fl.cids,
                progress=progress,
                groups=current_groups() if incremental else None,
            )
            if (
                batch
                and cache_version == fl.version
                and not cache_dirty
                and t < cache_valid_until
            ):
                # Horizon reuse: the discipline promised (through
                # ``rates_valid_until``) that a fresh allocation would be
                # bit-identical under these exact conditions.
                rates = cached_rates
                positive = cached_positive
            else:
                rates = np.asarray(self.scheduler.allocate(ctx), dtype=float)
                if rates.shape != fl.srcs.shape:
                    raise ValueError(
                        f"scheduler returned {rates.shape}, "
                        f"expected {fl.srcs.shape}"
                    )
                fabric.validate_rates(fl.srcs, fl.dsts, rates)
                positive = rates > 0
                if batch:
                    cached_rates = rates
                    cached_positive = positive
                    cache_version = fl.version
                    cache_dirty = False
                    cache_valid_until = self.scheduler.rates_valid_until(
                        ctx, rates
                    )
            if positive.any():
                dt_complete = float(
                    (fl.remaining[positive] / rates[positive]).min()
                )
            else:
                dt_complete = np.inf
            dt_arrival = pending[0][0] - t if pending else np.inf
            dt = min(dt_complete, dt_arrival)
            if source is not None:
                nxt_src = source.next_time(t)
                if nxt_src is not None:
                    dt = min(dt, max(nxt_src - t, 0.0))
            hint = self.scheduler.next_event_hint(ctx, rates)
            if hint is not None and hint > 1e-12:
                dt = min(dt, hint)
            if dynamics is not None:
                nxt = dynamics.next_event_time(t)
                if nxt is not None:
                    dt = min(dt, nxt - t)
            if recovery is not None:
                wake = recovery.next_wakeup(fabric, t)
                if wake is not None:
                    dt = min(dt, wake - t)
            if not np.isfinite(dt):
                raise RuntimeError(
                    f"scheduler starved all {fl.size} active flows at t={t:.6g} "
                    "with no pending arrivals (deadlock)"
                )
            dt = max(dt, 0.0)

            if track:
                if wants_flow_events:
                    for cid in np.unique(fl.cids[positive]):
                        cid = int(cid)
                        if cid not in first_byte_seen:
                            first_byte_seen.add(cid)
                            obs.coflow_first_byte(cid, time=t)
                detail = None
                if wants_detail:
                    n_pending = len(pending)

                    def detail() -> dict:
                        """Expensive sample fields, computed only when a
                        sink asks (called synchronously by obs.epoch)."""
                        d = {
                            "coflows": int(np.unique(fl.cids).size),
                            "queue": n_pending,
                            "residual": float(fl.remaining.sum()),
                        }
                        if obs.wants_port_samples:
                            used_out = np.bincount(
                                fl.srcs, weights=rates,
                                minlength=fabric.n_ports,
                            )
                            used_in = np.bincount(
                                fl.dsts, weights=rates,
                                minlength=fabric.n_ports,
                            )
                            with np.errstate(
                                divide="ignore", invalid="ignore"
                            ):
                                busy_s = np.where(
                                    fabric.egress_rates > 0,
                                    used_out / fabric.egress_rates, 0.0,
                                )
                                busy_r = np.where(
                                    fabric.ingress_rates > 0,
                                    used_in / fabric.ingress_rates, 0.0,
                                )
                            d["port_busy_send"] = [
                                round(float(x), 9) for x in busy_s
                            ]
                            d["port_busy_recv"] = [
                                round(float(x), 9) for x in busy_r
                            ]
                        return d

                obs.epoch(
                    start=t,
                    duration=dt,
                    active_flows=fl.size,
                    aggregate_rate=float(rates.sum()),
                    detail=detail,
                )

            # Drain volumes and credit attained service per coflow.
            delivered = rates * dt
            fl.remaining = fl.remaining - delivered
            if incremental:
                g = current_groups()
                sums = g.value_sums(delivered)
                for gi, cid in enumerate(g.unique_cids):
                    progress[int(cid)].sent_bytes += sums[gi]
            else:
                for cid in np.unique(fl.cids):
                    progress[int(cid)].sent_bytes += float(
                        delivered[fl.cids == cid].sum()
                    )
            t += dt

            done = fl.remaining <= _VOLUME_EPS
            if done.any():
                suspended_cids = (
                    recovery.suspended_coflow_ids()
                    if recovery is not None
                    else set()
                )
                if incremental:
                    g = current_groups()
                    complete_mask = g.all_done_mask(done)
                    for gi in np.flatnonzero(complete_mask):
                        cid = int(g.unique_cids[gi])
                        if cid in suspended_cids:
                            # Other flows of this coflow are parked on a
                            # dead port; the coflow is not finished yet.
                            continue
                        complete(cid, t)
                else:
                    for cid in np.unique(fl.cids[done]):
                        cid = int(cid)
                        if (~done & (fl.cids == cid)).any():
                            continue
                        if cid in suspended_cids:
                            # Other flows of this coflow are parked on a
                            # dead port; the coflow is not finished yet.
                            continue
                        complete(cid, t)
                # Flows of incomplete coflows that drained to zero are
                # removed either way; parked siblings keep the coflow open.
                fl.keep(~done)
        else:
            from repro.core.resilience import BudgetExceeded

            watchdog_abort(
                BudgetExceeded(
                    f"simulation exceeded max_epochs={self.max_epochs} "
                    f"at t={t:.6g}"
                )
            )

        ccts = {
            cid: completion[cid] - progress[cid].arrival_time for cid in completion
        }
        makespan = max(completion.values()) if completion else 0.0
        if track:
            if recovery is not None:
                sync_failures(recovery)
            obs.run_end(time=t, makespan=makespan)
        return SimulationResult(
            completion_times=completion,
            ccts=ccts,
            makespan=makespan,
            total_bytes=total_bytes,
            epochs=list(collector.epochs) if collector is not None else [],
            epochs_dropped=(
                collector.dropped if collector is not None else 0
            ),
            failures=list(recovery.records) if recovery is not None else [],
            failed_coflows=(
                dict(recovery.failed_coflows) if recovery is not None else {}
            ),
            n_epochs=n_epochs,
        )

    @staticmethod
    def _with_id(coflow: Coflow, default_id: int) -> Coflow:
        """Assign sequential ids to coflows that lack one."""
        if coflow.coflow_id < 0:
            return Coflow(
                flows=list(coflow.flows),
                arrival_time=coflow.arrival_time,
                coflow_id=default_id,
                name=coflow.name,
                deadline=coflow.deadline,
                weight=coflow.weight,
            )
        return coflow
