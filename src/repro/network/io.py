"""JSON serialization for coflows and execution plans.

Lets the scheduling layer and the data plane live in different processes:
``ccf plan`` writes a plan's coflow to JSON, ``ccf simulate`` replays any
set of serialized coflows through a chosen discipline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.network.flow import Coflow, Flow

__all__ = [
    "coflow_to_dict",
    "coflow_from_dict",
    "save_coflows",
    "load_coflows",
]

_FORMAT_VERSION = 1


def coflow_to_dict(coflow: Coflow) -> dict[str, Any]:
    """Plain-dict representation of a coflow (stable, versioned)."""
    out: dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "coflow_id": coflow.coflow_id,
        "name": coflow.name,
        "arrival_time": coflow.arrival_time,
        "flows": [
            {"src": f.src, "dst": f.dst, "volume": f.volume} for f in coflow.flows
        ],
    }
    if coflow.deadline is not None:
        out["deadline"] = coflow.deadline
    if coflow.weight != 1.0:
        out["weight"] = coflow.weight
    return out


def coflow_from_dict(data: dict[str, Any]) -> Coflow:
    """Inverse of :func:`coflow_to_dict` with validation."""
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported coflow format version {version}")
    try:
        flows = [
            Flow(src=int(f["src"]), dst=int(f["dst"]), volume=float(f["volume"]))
            for f in data["flows"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed coflow record: {exc}") from exc
    deadline = data.get("deadline")
    return Coflow(
        flows=flows,
        arrival_time=float(data.get("arrival_time", 0.0)),
        coflow_id=int(data.get("coflow_id", -1)),
        name=str(data.get("name", "")),
        deadline=float(deadline) if deadline is not None else None,
        weight=float(data.get("weight", 1.0)),
    )


def save_coflows(coflows: list[Coflow], path: str | Path) -> None:
    """Write coflows to a JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "coflows": [coflow_to_dict(c) for c in coflows],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_coflows(path: str | Path) -> list[Coflow]:
    """Read coflows from a JSON file written by :func:`save_coflows`."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "coflows" not in data:
        raise ValueError(f"{path}: not a coflow file")
    return [coflow_from_dict(c) for c in data["coflows"]]
