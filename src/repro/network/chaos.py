"""Seeded chaos harness: random port failure/repair schedules.

Turns MTBF/MTTR-style reliability parameters into a deterministic
:class:`~repro.network.dynamics.FabricDynamics` schedule of full port
failures (rate to zero) and repairs (original rates restored), so
experiments can subject every scheduler x recovery-policy combination to
*identical* fault sequences.  Failure inter-arrival and repair times are
exponential, the classical memoryless reliability model; the generator is
seeded, so the same configuration always yields the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.fabric import Fabric

__all__ = ["ChaosConfig", "chaos_schedule"]


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of a random failure schedule.

    Parameters
    ----------
    mtbf:
        Mean time between failures (seconds, fleet-wide): failure
        instants arrive as a Poisson process with this mean gap.
    mttr:
        Mean time to repair one failed port (seconds, exponential).
    horizon:
        No *new* failures are injected at or after this time (repairs may
        land later, so every injected failure is eventually repaired and
        the ``retry`` policy can always finish).
    seed:
        RNG seed; equal seeds yield byte-identical schedules.
    ports:
        Optional subset of ports eligible to fail (default: all).
    min_alive:
        Never take a failure that would leave fewer than this many fully
        functional ports (default 1), so ``replan`` always has a
        surviving destination.
    """

    mtbf: float
    mttr: float
    horizon: float
    seed: int = 0
    ports: tuple[int, ...] | None = None
    min_alive: int = 1

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be strictly positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be strictly positive")
        if self.min_alive < 1:
            raise ValueError("min_alive must be >= 1")


def chaos_schedule(config: ChaosConfig, fabric: Fabric) -> FabricDynamics:
    """Generate a seeded failure/repair schedule for ``fabric``.

    Each failure kills both directions of one currently-alive port and is
    paired with a repair event restoring the port's original rates after
    an exponential downtime.  A port cannot fail again while it is down,
    and at least ``config.min_alive`` ports stay up at all times.
    """
    requested = (
        list(config.ports)
        if config.ports is not None
        else list(range(fabric.n_ports))
    )
    for p in requested:
        if not 0 <= p < fabric.n_ports:
            raise ValueError(
                f"chaos port {p} out of range for fabric size {fabric.n_ports}"
            )
    # A port with a zero-rate direction is already dead: "failing" it is
    # a no-op and its repair event would have to restore a rate of zero,
    # which RateEvent.recovery rightly rejects.  Only live ports are
    # eligible to fail.
    candidates = [
        p
        for p in requested
        if fabric.egress_rates[p] > 0 and fabric.ingress_rates[p] > 0
    ]
    if not candidates:
        raise ValueError(
            "no chaos-eligible ports: every requested port has a zero-rate "
            "direction (already dead)"
        )
    if fabric.n_ports <= config.min_alive:
        raise ValueError(
            f"min_alive={config.min_alive} leaves no port eligible to fail "
            f"on a {fabric.n_ports}-port fabric"
        )

    rng = np.random.default_rng(config.seed)
    events: list[RateEvent] = []
    down_until: dict[int, float] = {}
    t = 0.0
    while True:
        t += float(rng.exponential(config.mtbf))
        if t >= config.horizon:
            break
        up = [p for p in candidates if down_until.get(p, 0.0) <= t]
        n_down = sum(1 for r in down_until.values() if r > t)
        if not up or fabric.n_ports - n_down <= config.min_alive:
            continue
        port = int(rng.choice(up))
        repair = t + float(rng.exponential(config.mttr))
        events.append(RateEvent.failure(t, port))
        events.append(
            RateEvent.recovery(
                repair,
                port,
                egress=float(fabric.egress_rates[port]),
                ingress=float(fabric.ingress_rates[port]),
            )
        )
        down_until[port] = repair
    return FabricDynamics(events)
