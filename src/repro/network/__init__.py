"""Network substrate: coflow abstraction, fabric model, and a flow-level simulator.

This subpackage is a from-scratch substitute for CoflowSim (the Java
simulator used by Varys and Aalo, and by the CCF paper as the measurement
back-end).  It provides:

* :mod:`repro.network.flow` -- the ``Flow`` / ``Coflow`` abstraction
  ([src, dst, volume] triples grouped by job).
* :mod:`repro.network.fabric` -- the non-blocking-switch fabric model with
  per-port ingress/egress capacities.
* :mod:`repro.network.simulator` -- an event-driven fluid-flow simulator
  that advances rate allocations between discrete events.
* :mod:`repro.network.schedulers` -- inter-coflow scheduling disciplines:
  per-flow fair sharing, FIFO, SCF, NCF, SEBF (Varys), D-CLAS (Aalo), a
  worst-case sequential schedule used by the paper's motivating example,
  and two weighted-CCT schedulers with proven approximation ratios
  (``wcct5``, ``lpcct``).
* :mod:`repro.network.bounds` -- the interval-indexed LP lower bound on
  total weighted CCT, used to report optimality gaps
  (``ccf tournament``).
* :mod:`repro.network.topology` -- an optional link-capacity extension
  (RAPIER-flavoured) beyond the non-blocking switch.
* :mod:`repro.network.dynamics` / :mod:`repro.network.recovery` /
  :mod:`repro.network.chaos` -- the fault-tolerance layer: scheduled
  rate changes and port failures, pluggable flow-recovery policies
  (abort / retry / replan), and a seeded MTBF/MTTR chaos harness.
"""

from repro.network.bounds import (
    WeightedCCTBound,
    interval_indexed_lp,
    weighted_cct_lower_bound,
)
from repro.network.chaos import ChaosConfig, chaos_schedule
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.recovery import (
    AbortPolicy,
    RecoveryPolicy,
    ReplanPolicy,
    RetryPolicy,
    make_recovery_policy,
)
from repro.network.simulator import CoflowSimulator, SimulationResult

__all__ = [
    "AbortPolicy",
    "ChaosConfig",
    "Coflow",
    "CoflowSimulator",
    "Fabric",
    "FabricDynamics",
    "Flow",
    "RateEvent",
    "RecoveryPolicy",
    "ReplanPolicy",
    "RetryPolicy",
    "SimulationResult",
    "WeightedCCTBound",
    "chaos_schedule",
    "interval_indexed_lp",
    "make_recovery_policy",
    "weighted_cct_lower_bound",
]
