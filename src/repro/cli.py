"""``ccf`` command-line interface: run paper experiments from the shell.

Examples
--------
.. code-block:: console

    $ ccf list
    $ ccf run motivating
    $ ccf run fig5 --quick
    $ ccf run fig7 --scale-factor 60 --nodes 100
    $ ccf sweep fig5 --jobs 4
    $ ccf sweep fig7 --quick --jobs 2 --cache-dir .ccf-cache
    $ ccf sweep psweep --resume
    $ ccf sweep tournament --quick --jobs 2
    $ ccf tournament --quick --json
    $ ccf plan --nodes 50 --scale-factor 3 --strategy ccf --out plan.json
    $ ccf simulate plan.json --scheduler sebf
    $ ccf simulate plan.json --fail-port 0 --fail-at 1 --recover-at 5 \\
          --recovery replan
    $ ccf simulate plan.json --chaos-mtbf 3 --chaos-mttr 2 --recovery retry
    $ ccf simulate plan.json --trace run.jsonl --timeline
    $ ccf simulate plan.json --trace run.trace.json --trace-format chrome
    $ ccf stats run.jsonl
    $ ccf gantt --from-trace run.jsonl
    $ ccf serve --arrivals 2000 --load 0.7 --slo 60 --trace serve.jsonl
    $ ccf serve --load 1.6 --policy load-shedding --slo 60
    $ ccf serve --chaos-mtbf 20 --chaos-mttr 2 --recovery retry
    $ ccf capacity load --budget 60 --probe-arrivals 150
    $ ccf capacity nodes --budget 60 --rate 4e6 --probe-arrivals 150
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.figures import (
    QUICK_N_NODES,
    QUICK_SCALE_FACTOR,
    SweepConfig,
    run_fig5_nodes,
    run_fig6_zipf,
    run_fig7_skew,
)
from repro.core.resilience import ResilienceError
from repro.experiments.registry import EXPERIMENTS, SWEEPS, run_experiment
from repro.network.schedulers import SCHEDULER_NAMES

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_WATCHDOG",
    "EXIT_SLO_BREACH",
    "EXIT_INTERRUPTED",
    "EXIT_CODES",
]

#: The CLI's exit-code contract, shared by every subcommand.  The docs
#: table in docs/architecture.md mirrors this dict and a test asserts
#: they stay in sync.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_WATCHDOG = 3
EXIT_SLO_BREACH = 4
EXIT_INTERRUPTED = 130

EXIT_CODES: dict[int, str] = {
    EXIT_OK: "success",
    EXIT_FAILURE: "run failure (failed coflows, FAIL verdict, regression)",
    EXIT_USAGE: "usage error (bad flags, bad configuration)",
    EXIT_WATCHDOG: "watchdog abort (crash report written)",
    EXIT_SLO_BREACH: "SLO breach (serve: p95 CCT over budget)",
    EXIT_INTERRUPTED: "interrupted (128 + SIGINT)",
}

#: Sweeps that accept a SweepConfig (others run with fixed defaults).
_CONFIGURABLE = {
    "fig5": lambda cfg: run_fig5_nodes(cfg),
    "fig6": lambda cfg: run_fig6_zipf(cfg),
    "fig7": lambda cfg: run_fig7_skew(cfg),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ccf",
        description="Reproduce the CCF paper's evaluation (ICPP 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale (SF={QUICK_SCALE_FACTOR}, {QUICK_N_NODES} nodes) "
        "for sweeps",
    )
    run.add_argument(
        "--scale-factor", type=float, default=None, help="TPC-H scale factor"
    )
    run.add_argument(
        "--nodes", type=int, default=None, help="number of nodes (fig6/fig7 sweeps)"
    )
    run.add_argument(
        "--markdown", action="store_true", help="render the table as markdown"
    )
    run.add_argument(
        "--csv", action="store_true", help="render the table as CSV"
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a grid experiment through the parallel, cache-aware "
        "engine (bit-identical to 'ccf run', but cells fan out over "
        "worker processes and completed cells are memoized on disk)",
    )
    sweep.add_argument("experiment", choices=sorted(SWEEPS))
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial fallback path)",
    )
    sweep.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="cell-cache root (default: $CCF_CACHE_DIR or "
        "~/.cache/ccf/sweeps)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="skip cache lookup and write-back entirely",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: require the cache directory "
        "to exist and report how many cells were restored from it",
    )
    sweep.add_argument(
        "--quick", action="store_true",
        help="the experiment's reduced smoke-test grid "
        f"(figure sweeps: SF={QUICK_SCALE_FACTOR}, {QUICK_N_NODES} nodes)",
    )
    sweep.add_argument(
        "--scale-factor", type=float, default=None,
        help="TPC-H scale factor (figure sweeps only)",
    )
    sweep.add_argument(
        "--nodes", type=int, default=None,
        help="number of nodes (figure sweeps only)",
    )
    sweep.add_argument(
        "--markdown", action="store_true", help="render the table as markdown"
    )
    sweep.add_argument(
        "--csv", action="store_true", help="render the table as CSV"
    )
    sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry failed cells up to N extra times with exponential "
        "backoff and deterministic jitter (default 0 = fail fast)",
    )
    sweep.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="hard wall-clock bound per cell attempt (default: unlimited)",
    )

    tournament = sub.add_parser(
        "tournament",
        help="rank every scheduling discipline on the weighted-CCT "
        "objective: run the tournament grid (schedulers x workload "
        "families x weight distributions) through the sweep engine and "
        "fold it into a scorecard with per-scheduler optimality gaps "
        "against the interval-indexed LP lower bound",
    )
    tournament.add_argument(
        "--quick", action="store_true",
        help="reduced smoke grid (10 ports, 10 coflows, facebook mix, "
        "two weight distributions; still every scheduler)",
    )
    tournament.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial fallback path)",
    )
    tournament.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="cell-cache root (default: $CCF_CACHE_DIR or "
        "~/.cache/ccf/sweeps)",
    )
    tournament.add_argument(
        "--no-cache", action="store_true",
        help="skip cache lookup and write-back entirely",
    )
    tournament.add_argument(
        "--full", action="store_true",
        help="also print the raw per-instance grid under the scorecard",
    )
    tournament.add_argument(
        "--json", action="store_true",
        help="emit {scorecard, grid} as JSON instead of tables",
    )
    tournament.add_argument(
        "--markdown", action="store_true",
        help="render the tables as markdown",
    )
    tournament.add_argument(
        "--csv", action="store_true",
        help="render the scorecard as CSV",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the chaos campaign: named fault scenarios (fabric "
        "chaos, noisy estimates, worker kills, cache corruption, cell "
        "timeouts) executed through the supervised sweep engine and "
        "scored for resilience",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="shrink the workload (the scenario set stays complete)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="sweep workers (default 2; worker-kill scenarios need >= 2)",
    )
    chaos.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="base seed for chaos schedules, noise and retry jitter",
    )
    chaos.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="cell-cache root (default: $CCF_CACHE_DIR or "
        "~/.cache/ccf/sweeps); cache-corruption scenarios corrupt "
        "their own entry here",
    )
    chaos.add_argument(
        "--no-cache", action="store_true",
        help="run cache-less (cache-corruption scenarios lose their "
        "target and quarantine nothing)",
    )
    chaos.add_argument(
        "--no-faults", action="store_true",
        help="leave platform faults dormant (simulated faults only)",
    )
    chaos.add_argument(
        "--report", type=str, default=None, metavar="PATH",
        help="also write a markdown report (tables + scorecard) to PATH",
    )
    chaos.add_argument(
        "--csv", action="store_true",
        help="render the scenario table as CSV on stdout",
    )
    chaos.add_argument(
        "--markdown", action="store_true",
        help="render the tables as markdown on stdout",
    )
    chaos.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write the campaign's platform-event trace (retries, "
        "timeouts, crashes, quarantines) as JSONL to PATH",
    )
    chaos.add_argument(
        "--crash-dir", type=str, default="crash-reports", metavar="DIR",
        help="where WorkerCrash reports are written (default "
        "crash-reports/)",
    )
    chaos.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the fault scenarios and exit",
    )

    plan = sub.add_parser(
        "plan", help="plan a synthetic join workload and export its coflow"
    )
    plan.add_argument("--nodes", type=int, default=50)
    plan.add_argument("--scale-factor", type=float, default=3.0)
    plan.add_argument("--zipf", type=float, default=0.8)
    plan.add_argument("--skew", type=float, default=0.2)
    plan.add_argument(
        "--strategy",
        choices=["hash", "mini", "ccf", "ccf-exact"],
        default="ccf",
    )
    plan.add_argument("--out", type=str, default=None, help="coflow JSON path")

    simulate = sub.add_parser(
        "simulate", help="run a coflow JSON file through the simulator"
    )
    simulate.add_argument("coflow_file", type=str)
    simulate.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default="sebf",
    )
    simulate.add_argument(
        "--rate", type=float, default=128e6, help="port rate in bytes/s"
    )
    simulate.add_argument(
        "--recovery",
        choices=["abort", "retry", "replan"],
        default=None,
        help="flow-recovery policy (required with failure injection)",
    )
    simulate.add_argument(
        "--fail-port",
        type=int,
        action="append",
        default=None,
        metavar="PORT",
        help="kill this port mid-run (repeatable)",
    )
    simulate.add_argument(
        "--fail-at", type=float, default=1.0,
        help="failure time in seconds (with --fail-port)",
    )
    simulate.add_argument(
        "--recover-at", type=float, default=None,
        help="repair time in seconds (with --fail-port; default: never)",
    )
    simulate.add_argument(
        "--fail-direction",
        choices=["both", "ingress", "egress"],
        default="both",
        help="which side of the failed port dies",
    )
    simulate.add_argument(
        "--chaos-mtbf", type=float, default=None,
        help="enable random failures with this mean time between failures (s)",
    )
    simulate.add_argument(
        "--chaos-mttr", type=float, default=2.0,
        help="mean time to repair for chaos failures (s)",
    )
    simulate.add_argument(
        "--chaos-horizon", type=float, default=None,
        help="inject chaos failures only before this time (default: 10x MTBF)",
    )
    simulate.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos failure schedule",
    )
    simulate.add_argument(
        "--stage-policy",
        choices=["fail-job", "retry-stage", "replan-stage",
                 "fail", "retry", "replan"],
        default=None,
        help="job-level fault tolerance: treat each coflow as a stage and "
        "retry/replan failed attempts (needs a failure schedule; "
        "mutually exclusive with the flow-level --recovery)",
    )
    simulate.add_argument(
        "--estimate-noise", type=float, default=None, metavar="SIGMA",
        help="degrade the scheduler's view of remaining flow sizes with "
        "seeded lognormal noise of this sigma (true bytes still drain)",
    )
    simulate.add_argument(
        "--censor", type=float, default=0.0, metavar="FRAC",
        help="fraction of flows whose size the scheduler cannot see "
        "(with --estimate-noise; default 0)",
    )
    simulate.add_argument(
        "--noise-seed", type=int, default=0,
        help="seed for the estimate-noise draws",
    )
    simulate.add_argument(
        "--max-epochs", type=int, default=None, metavar="N",
        help="abort (with a crash report) after this many epochs "
        "(default 10,000,000)",
    )
    simulate.add_argument(
        "--wall-clock-budget", type=float, default=None, metavar="SECONDS",
        help="abort (with a crash report) when the run exceeds this much "
        "real time (default: unlimited)",
    )
    simulate.add_argument(
        "--stall-epochs", type=int, default=None, metavar="N",
        help="abort (with a crash report) after N consecutive epochs "
        "without simulation-clock progress (default 10,000; 0 disables)",
    )
    simulate.add_argument(
        "--crash-dir", type=str, default="crash-reports", metavar="DIR",
        help="where watchdog crash reports are written (default "
        "crash-reports/)",
    )
    simulate.add_argument(
        "--timeline", action="store_true",
        help="record the per-epoch timeline (SimulationResult.epochs is "
        "otherwise empty; memory grows with epochs)",
    )
    simulate.add_argument(
        "--timeline-limit", type=int, default=None, metavar="N",
        help="with --timeline, keep only the most recent N epochs "
        "(ring buffer) so long runs stay bounded in memory",
    )
    simulate.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="capture the run's event stream and write it to PATH "
        "(coflow lifecycle, epoch samples, port utilization, failures)",
    )
    simulate.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome", "prom"],
        default="jsonl",
        help="trace output format: JSONL event log (ccf stats / gantt "
        "--from-trace), Chrome trace_event JSON (Perfetto), or a "
        "Prometheus-style metrics dump",
    )

    stats = sub.add_parser(
        "stats",
        help="summarize a captured JSONL trace: CCT percentiles, per-port "
        "bottleneck attribution, failure counts",
    )
    stats.add_argument("trace_file", type=str)
    stats.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    stats.add_argument(
        "--top-ports", type=int, default=5,
        help="how many bottleneck ports to list (default 5)",
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a markdown report"
    )
    report.add_argument(
        "--out", type=str, default="ccf-report.md", help="output markdown path"
    )
    report.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="subset to run (default: the quick ones; 'all' for everything)",
    )
    report.add_argument(
        "--quick", action="store_true",
        help="reduced scale for the paper-figure sweeps",
    )
    report.add_argument(
        "--from-trace", type=str, default=None, metavar="PATH",
        help="append a trace-summary section (stats + Gantt) rendered "
        "from a captured JSONL trace -- no re-simulation; with no "
        "--experiments the report contains only that section",
    )

    verify = sub.add_parser(
        "verify", help="check every published claim of the paper (PASS/FAIL)"
    )
    verify.add_argument(
        "--scale-factor", type=float, default=60.0,
        help="TPC-H scale factor for the sweeps (600 = paper scale)",
    )
    verify.add_argument("--nodes", type=int, default=100)

    trace_gen = sub.add_parser(
        "trace-gen",
        help="generate a synthetic Facebook-style coflow trace file",
    )
    trace_gen.add_argument("out", type=str, help="output path")
    trace_gen.add_argument(
        "--format", choices=["json", "coflowsim"], default="json"
    )
    trace_gen.add_argument("--ports", type=int, default=40)
    trace_gen.add_argument("--coflows", type=int, default=100)
    trace_gen.add_argument("--arrival-rate", type=float, default=2.0)
    trace_gen.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench",
        help="benchmark the simulator hot path (reference vs incremental)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small-mix smoke subset (CI); keys are a subset of the full run",
    )
    bench.add_argument(
        "--out", type=str, default="BENCH_simulator.json",
        help="where to write the JSON payload ('-' for stdout only)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per case, best wall time wins (default 3: "
        "single draws make the speedup ratio too noisy to gate on)",
    )
    bench.add_argument(
        "--check", metavar="BASELINE", type=str, default=None,
        help="compare per-case speedups against a committed "
        "BENCH_simulator.json and exit non-zero on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.3,
        help="allowed fractional speedup drop vs the baseline "
        "(default 0.3)",
    )

    gantt_cmd = sub.add_parser(
        "gantt",
        help="render an ASCII Gantt chart from a coflow file (simulates) "
        "or from a captured JSONL trace (no re-simulation)",
    )
    gantt_cmd.add_argument("coflow_file", type=str, nargs="?", default=None)
    gantt_cmd.add_argument(
        "--from-trace", type=str, default=None, metavar="PATH",
        help="read a JSONL trace written by 'ccf simulate --trace' "
        "instead of re-running the simulation",
    )
    gantt_cmd.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default="sebf",
    )
    gantt_cmd.add_argument("--rate", type=float, default=128e6)
    gantt_cmd.add_argument("--width", type=int, default=60)

    serve = sub.add_parser(
        "serve",
        help="open-loop service mode: stream seeded coflow arrivals "
        "through an admission policy into the simulator and report "
        "steady-state CCT percentiles (exit 4 on SLO breach)",
    )
    _add_arrival_args(serve)
    serve.add_argument(
        "--load", type=float, default=0.7,
        help="offered utilization target; the port rate is derived so the "
        "stream offers this fraction of fabric capacity (> 1 = overload; "
        "default 0.7)",
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="explicit per-port rate in bytes/s (overrides --load)",
    )
    serve.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default="sebf",
    )
    serve.add_argument(
        "--policy",
        choices=["accept-all", "bounded-queue", "load-shedding", "slo-guard"],
        default="accept-all",
        help="admission policy (default accept-all)",
    )
    serve.add_argument(
        "--watermark", type=float, default=None, metavar="SECONDS",
        help="backlog watermark for bounded-queue / load-shedding "
        "(seconds of work outstanding)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="deferred-coflow cap for bounded-queue",
    )
    serve.add_argument(
        "--slo", type=float, default=None, metavar="SECONDS",
        help="steady-state p95 CCT budget; exit 4 when breached "
        "(also the default budget of --policy slo-guard)",
    )
    serve.add_argument(
        "--chaos-mtbf", type=float, default=None,
        help="soak mode: inject random port failures with this mean time "
        "between failures (s) while arrivals stream in",
    )
    serve.add_argument(
        "--chaos-mttr", type=float, default=1.0,
        help="mean time to repair for soak-mode failures (s)",
    )
    serve.add_argument(
        "--min-alive", type=int, default=2,
        help="chaos never takes the fabric below this many live ports",
    )
    serve.add_argument(
        "--recovery",
        choices=["abort", "retry", "replan"],
        default="retry",
        help="flow-recovery policy for soak-mode failures (default retry)",
    )
    serve.add_argument(
        "--max-epochs", type=int, default=None, metavar="N",
        help="watchdog: abort after this many epochs (default 50,000,000)",
    )
    serve.add_argument(
        "--wall-clock-budget", type=float, default=None, metavar="SECONDS",
        help="watchdog: abort when the run exceeds this much real time",
    )
    serve.add_argument(
        "--crash-dir", type=str, default="crash-reports", metavar="DIR",
        help="where watchdog crash reports are written",
    )
    serve.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="stream the event log (lifecycle + admission rulings) to "
        "PATH as JSONL while running -- bounded memory at any length",
    )
    serve.add_argument(
        "--flush-every", type=int, default=4096, metavar="N",
        help="trace flush interval in events (default 4096)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit the service report as JSON instead of text",
    )

    capacity = sub.add_parser(
        "capacity",
        help="binary-search the p95-CCT knee: the highest sustainable "
        "offered load, or the smallest fabric for a target stream",
    )
    capacity.add_argument(
        "axis", choices=["load", "nodes"],
        help="search axis: 'load' finds the highest offered load within "
        "budget; 'nodes' the smallest fabric (needs --rate)",
    )
    capacity.add_argument(
        "--budget", type=float, required=True, metavar="SECONDS",
        help="p95 CCT budget the knee is measured against",
    )
    _add_arrival_args(capacity)
    capacity.add_argument(
        "--rate", type=float, default=None,
        help="fixed per-port rate in bytes/s (required for the nodes "
        "axis; forbidden for the load axis)",
    )
    capacity.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default="sebf",
    )
    capacity.add_argument(
        "--policy",
        choices=["accept-all", "bounded-queue", "load-shedding", "slo-guard"],
        default="accept-all",
    )
    capacity.add_argument(
        "--lo", type=float, default=None,
        help="search lower bound (default: 0.2 load / 4 nodes)",
    )
    capacity.add_argument(
        "--hi", type=float, default=None,
        help="search upper bound (default: 2.0 load / 128 nodes)",
    )
    capacity.add_argument(
        "--iters", type=int, default=6,
        help="bisection iterations for the load axis (default 6)",
    )
    capacity.add_argument(
        "--probe-arrivals", type=int, default=None, metavar="N",
        help="shorten each probe stream to N arrivals",
    )
    capacity.add_argument(
        "--json", action="store_true",
        help="emit the probe list and knee as JSON",
    )
    return parser


def _add_arrival_args(p: argparse.ArgumentParser) -> None:
    """Arrival-stream flags shared by ``serve`` and ``capacity``."""
    p.add_argument(
        "--ports", type=int, default=24, help="fabric size (default 24)"
    )
    p.add_argument(
        "--users", type=int, default=20,
        help="concurrently active users (default 20)",
    )
    p.add_argument(
        "--qps", type=float, default=0.1,
        help="queries (coflows) per user per second (default 0.1); the "
        "aggregate arrival rate is users * qps",
    )
    p.add_argument(
        "--process", choices=["poisson", "pareto"], default="poisson",
        help="inter-arrival law (pareto = heavy-tailed bursts)",
    )
    p.add_argument(
        "--pareto-alpha", type=float, default=1.5,
        help="tail index of pareto gaps (> 1; smaller = burstier)",
    )
    p.add_argument(
        "--size-mix", choices=["facebook", "zipf"], default="facebook",
        help="coflow size distribution (default facebook four-bin mix)",
    )
    p.add_argument(
        "--zipf-a", type=float, default=2.0,
        help="zipf exponent for --size-mix zipf",
    )
    p.add_argument(
        "--size-scale", type=float, default=0.002,
        help="multiplier on every flow volume (default 0.002 scales the "
        "raw mix down to interactive CCTs)",
    )
    p.add_argument(
        "--arrivals", type=int, default=1000,
        help="stream length in coflows (default 1000)",
    )
    p.add_argument(
        "--horizon", type=float, default=None,
        help="stop generating arrivals after this many seconds",
    )
    p.add_argument("--seed", type=int, default=0, help="stream seed")


def _cmd_plan(args: argparse.Namespace) -> int:
    """Plan a synthetic workload; optionally export the coflow as JSON."""
    from repro.core.framework import CCF
    from repro.network.io import save_coflows
    from repro.workloads.analytic import AnalyticJoinWorkload

    workload = AnalyticJoinWorkload(
        n_nodes=args.nodes,
        scale_factor=args.scale_factor,
        zipf_s=args.zipf,
        skew=args.skew,
    )
    plan = CCF().plan(workload, args.strategy)
    print(plan.describe())
    if args.out:
        save_coflows([plan.to_coflow()], args.out)
        print(f"coflow written to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Replay a coflow JSON file through the chosen discipline."""
    from repro.network.fabric import Fabric
    from repro.network.io import load_coflows
    from repro.network.schedulers import make_scheduler
    from repro.network.simulator import CoflowSimulator

    coflows = load_coflows(args.coflow_file)
    if not coflows:
        print("no coflows in file")
        return 1
    n_ports = max(c.max_port for c in coflows) + 1
    fabric = Fabric(n_ports=n_ports, rate=args.rate)

    dynamics = None
    if args.fail_port and args.chaos_mtbf:
        print("--fail-port and --chaos-mtbf are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.fail_port:
        from repro.network.dynamics import FabricDynamics

        bad = [p for p in args.fail_port if not 0 <= p < n_ports]
        if bad:
            print(f"--fail-port out of range: {bad}", file=sys.stderr)
            return 2
        try:
            dynamics = FabricDynamics.fail(
                time=args.fail_at,
                ports=args.fail_port,
                fabric=fabric,
                recover_at=args.recover_at,
                direction=args.fail_direction,
            )
        except ValueError as exc:
            print(f"invalid failure schedule: {exc}", file=sys.stderr)
            return 2
    elif args.chaos_mtbf:
        from repro.network.chaos import ChaosConfig, chaos_schedule

        try:
            dynamics = chaos_schedule(
                ChaosConfig(
                    mtbf=args.chaos_mtbf,
                    mttr=args.chaos_mttr,
                    horizon=args.chaos_horizon or 10.0 * args.chaos_mtbf,
                    seed=args.chaos_seed,
                ),
                fabric,
            )
        except ValueError as exc:
            print(f"invalid chaos configuration: {exc}", file=sys.stderr)
            return 2
    noise = None
    if args.estimate_noise is not None or args.censor:
        from repro.core.noise import NoisyEstimates

        try:
            noise = NoisyEstimates(
                sigma=args.estimate_noise or 0.0,
                censor_fraction=args.censor,
                seed=args.noise_seed,
            )
        except ValueError as exc:
            print(f"invalid estimate noise: {exc}", file=sys.stderr)
            return 2

    tracer = None
    if args.trace:
        from repro.obs import Tracer, repro_header

        tracer = Tracer(
            header=repro_header(
                scheduler=args.scheduler,
                fabric=fabric,
                seed=args.chaos_seed if args.chaos_mtbf else None,
                coflow_file=args.coflow_file,
                recovery=args.recovery,
                stage_policy=args.stage_policy,
                estimate_noise=args.estimate_noise,
                noise_seed=args.noise_seed if noise is not None else None,
            )
        )

    if args.stage_policy is not None:
        if args.recovery is not None:
            print(
                "--stage-policy (job-level recovery) and --recovery "
                "(flow-level recovery) are mutually exclusive; pick one",
                file=sys.stderr,
            )
            return 2
        if dynamics is None or not dynamics.has_failures:
            print(
                "--stage-policy needs a failure schedule: add --fail-port "
                "or --chaos-mtbf so there is something to recover from",
                file=sys.stderr,
            )
            return 2
        return _simulate_with_stage_policy(
            args, coflows, fabric, dynamics, noise, tracer
        )

    if dynamics is not None and dynamics.has_failures and args.recovery is None:
        print(
            "failure injection needs --recovery {abort,retry,replan} "
            "(flow-level) or --stage-policy (job-level)",
            file=sys.stderr,
        )
        return 2

    if args.timeline_limit is not None:
        if not args.timeline:
            print(
                "--timeline-limit only applies with --timeline",
                file=sys.stderr,
            )
            return 2
        if args.timeline_limit <= 0:
            print(
                f"--timeline-limit must be positive, "
                f"got {args.timeline_limit}",
                file=sys.stderr,
            )
            return 2

    from repro.network.simulator import DEFAULT_STALL_EPOCHS

    sim = CoflowSimulator(
        fabric,
        make_scheduler(args.scheduler),
        dynamics=dynamics,
        recovery=args.recovery,
        estimate_noise=noise,
        record_timeline=args.timeline,
        timeline_limit=args.timeline_limit,
        instrumentation=tracer,
        max_epochs=args.max_epochs or 10_000_000,
        wall_clock_budget_s=args.wall_clock_budget,
        stall_epochs=(
            args.stall_epochs
            if args.stall_epochs is not None
            else DEFAULT_STALL_EPOCHS
        ),
    )
    try:
        res = sim.run(coflows)
    except ResilienceError as exc:
        return _report_watchdog_abort(exc, args)
    print(f"scheduler={args.scheduler} ports={n_ports} rate={args.rate:.3g} B/s")
    for cid in sorted(res.ccts):
        print(f"  coflow {cid}: CCT = {res.ccts[cid]:.3f} s")
    for cid in sorted(res.failed_coflows):
        print(f"  coflow {cid}: FAILED at t={res.failed_coflows[cid]:.3f} s")
    print(f"average CCT: {res.average_cct:.3f} s, makespan: {res.makespan:.3f} s")
    if args.timeline:
        if res.timeline_truncated:
            print(
                f"epoch timeline: last {len(res.epochs)} epochs "
                f"recorded ({res.epochs_dropped} older epochs dropped "
                f"by --timeline-limit {args.timeline_limit})"
            )
        else:
            print(f"epoch timeline: {len(res.epochs)} epochs recorded")
    else:
        print(
            f"epoch timeline not recorded ({res.n_epochs} epochs ran; "
            "pass --timeline to keep it)"
        )
    if dynamics is not None:
        s = res.failure_summary()
        print(
            f"failures: {s['port_failures']} port failures, "
            f"{s['reroutes']} reroutes, {s['restarts']} restarts, "
            f"{s['aborted_coflows']} coflows aborted, "
            f"{s['bytes_lost']:.3g} bytes lost"
        )
    _write_trace(tracer, args)
    return 0 if not res.failed_coflows else 1


def _report_watchdog_abort(exc: ResilienceError, args: argparse.Namespace) -> int:
    """Persist a watchdog crash report and return the abort exit code.

    Exit code 3 distinguishes a supervised abort (stall / budget breach,
    diagnosable from the report) from ordinary failures (1) and CLI
    misuse (2).
    """
    from repro.core.resilience import write_crash_report

    print(f"watchdog abort: {exc}", file=sys.stderr)
    if exc.report is not None:
        path = write_crash_report(exc.report, args.crash_dir)
        print(f"crash report written to {path}", file=sys.stderr)
    return EXIT_WATCHDOG


def _write_trace(tracer, args: argparse.Namespace) -> None:
    """Flush a captured trace to ``--trace`` in ``--trace-format``."""
    if tracer is None:
        return
    from repro.obs import write_trace

    write_trace(tracer, args.trace, args.trace_format)
    print(
        f"trace: {len(tracer.events)} events -> {args.trace} "
        f"({args.trace_format})"
    )


def _simulate_with_stage_policy(
    args, coflows, fabric, dynamics, noise, tracer=None
) -> int:
    """Replay a coflow file with job-level (stage) fault tolerance.

    Each coflow becomes an independent stage of a :class:`JobDAG` with a
    fixed identity assignment that reproduces its flows exactly; the
    failure-aware :class:`DAGExecutor` then retries / replans attempts
    that fabric failures abort, per ``--stage-policy``.
    """
    import numpy as np

    from repro.analytics.dag import DAGExecutor, JobDAG
    from repro.core.model import ShuffleModel

    n_ports = fabric.n_ports
    dag = JobDAG(name="replay")
    for i, cf in enumerate(coflows):
        volumes = np.zeros((n_ports, n_ports))
        for f in cf.flows:
            volumes[f.src, f.dst] += f.volume
        # h = the volume matrix with partitions=nodes and an identity
        # assignment: partition k's bytes are exactly the traffic into
        # node k, so the replayed shuffle equals the file's coflow (and a
        # replan can move any stranded partition to a surviving node).
        name = cf.name or f"cf{i}"
        if name in dag.stage_names:
            name = f"{name}#{i}"
        dag.add(
            name,
            ShuffleModel(h=volumes, rate=args.rate, name=name),
            dest=np.arange(n_ports),
            min_start=cf.arrival_time,
        )
    executor = DAGExecutor(scheduler=args.scheduler, estimate_noise=noise)
    res = executor.run(
        dag,
        strategy="replay",
        dynamics=dynamics,
        stage_policy=args.stage_policy,
        instrumentation=tracer,
    )
    print(
        f"scheduler={args.scheduler} ports={n_ports} rate={args.rate:.3g} B/s "
        f"stage-policy={args.stage_policy}"
    )
    for name in dag.stage_names:
        s = res.stages[name]
        if s.status == "completed":
            print(
                f"  stage {name}: completed at t={s.completion_time:.3f} s "
                f"({s.attempts} attempt{'s' if s.attempts != 1 else ''})"
            )
        else:
            print(f"  stage {name}: {s.status.upper()} ({s.attempts} attempts)")
    for e in res.events:
        print(
            f"  [t={e.time:.3f}] {e.stage} attempt {e.attempt}: "
            f"{e.action} {e.detail}"
        )
    summary = res.failure_summary()
    print(
        f"job {'completed' if res.completed else 'FAILED'}: "
        f"makespan {res.makespan:.3f} s, "
        f"{int(summary['stage_retries'])} retries "
        f"({int(summary['stage_replans'])} replanned), "
        f"{summary['bytes_lost']:.3g} bytes lost"
    )
    _write_trace(tracer, args)
    return 0 if res.completed else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run one grid experiment through the parallel, cache-aware engine."""
    from repro.core.resilience import Backoff
    from repro.experiments.engine import (
        CellCache,
        default_cache_dir,
        derive_seed,
        run_sweep,
    )
    from repro.experiments.registry import build_sweep
    from repro.obs import MetricsRegistry

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"--retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        print(
            f"--cell-timeout must be > 0, got {args.cell_timeout}",
            file=sys.stderr,
        )
        return 2
    if args.no_cache and args.resume:
        print(
            "--no-cache and --resume are mutually exclusive: resuming "
            "means restoring completed cells from the cache",
            file=sys.stderr,
        )
        return 2

    cache = None
    cache_dir = None
    if not args.no_cache:
        from pathlib import Path

        cache_dir = (
            Path(args.cache_dir).expanduser()
            if args.cache_dir
            else default_cache_dir()
        )
        if args.resume and not cache_dir.is_dir():
            print(
                f"--resume: cache directory {cache_dir} does not exist; "
                "nothing to resume from",
                file=sys.stderr,
            )
            return 2
        cache = CellCache(cache_dir)

    try:
        spec = build_sweep(
            args.experiment,
            quick=args.quick,
            scale_factor=args.scale_factor,
            n_nodes=args.nodes,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    retry = None
    if args.retries > 0:
        retry = Backoff(
            max_attempts=args.retries + 1,
            base_delay=0.2,
            max_delay=5.0,
            jitter=0.1,
            seed=derive_seed(0, "sweep-backoff", spec.name),
        )
    metrics = MetricsRegistry()
    try:
        outcome = run_sweep(
            spec,
            jobs=args.jobs,
            cache=cache,
            progress=lambda msg: print(msg, file=sys.stderr),
            metrics=metrics,
            retry=retry,
            cell_timeout_s=args.cell_timeout,
        )
    except KeyboardInterrupt as exc:
        return _report_interrupt(exc, cache_dir)
    if args.resume:
        print(
            f"resumed {outcome.hits}/{outcome.n_cells} cells from cache",
            file=sys.stderr,
        )
    print(
        f"cells: {outcome.n_cells} total | cache hits: {outcome.hits} | "
        f"executed: {outcome.misses} | jobs: {outcome.jobs} | "
        f"{outcome.elapsed_seconds:.2f}s "
        f"cache={cache_dir if cache is not None else 'off'}",
        file=sys.stderr,
    )
    if (
        outcome.retries or outcome.timeouts or outcome.worker_crashes
        or outcome.pool_rebuilds or outcome.quarantined
    ):
        print(
            f"supervision: {outcome.retries} retries | "
            f"{outcome.timeouts} timeouts | "
            f"{outcome.worker_crashes} worker crashes | "
            f"{outcome.pool_rebuilds} pool rebuilds | "
            f"{outcome.quarantined} quarantined",
            file=sys.stderr,
        )
    table = outcome.table
    if args.csv:
        print(table.to_csv(), end="")
    elif args.markdown:
        print(table.to_markdown())
    else:
        print(table.render())
    return 0


def _report_interrupt(exc: KeyboardInterrupt, cache_dir) -> int:
    """Print a partial-progress summary after Ctrl-C and return 130.

    130 is the conventional ``128 + SIGINT`` exit code.  Completed cells
    were flushed to the cache before the interrupt surfaced, so a
    ``--resume`` rerun restores them.
    """
    from repro.experiments.engine import SweepInterrupted

    if isinstance(exc, SweepInterrupted):
        print(f"interrupted: {exc}", file=sys.stderr)
    else:
        print("interrupted", file=sys.stderr)
    if cache_dir is not None:
        print(
            f"completed cells were flushed to {cache_dir}; "
            "rerun with --resume to pick up where you left off",
            file=sys.stderr,
        )
    return EXIT_INTERRUPTED


def _cmd_tournament(args: argparse.Namespace) -> int:
    """Run the tournament grid and print the ranked scorecard."""
    from repro.experiments.engine import CellCache, default_cache_dir, run_sweep
    from repro.experiments.tournament import scorecard, tournament_sweep

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    cache = None
    cache_dir = None
    if not args.no_cache:
        from pathlib import Path

        cache_dir = (
            Path(args.cache_dir).expanduser()
            if args.cache_dir
            else default_cache_dir()
        )
        cache = CellCache(cache_dir)

    spec = tournament_sweep(quick=args.quick)
    try:
        outcome = run_sweep(
            spec,
            jobs=args.jobs,
            cache=cache,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except KeyboardInterrupt as exc:
        return _report_interrupt(exc, cache_dir)
    print(
        f"cells: {outcome.n_cells} total | cache hits: {outcome.hits} | "
        f"executed: {outcome.misses} | jobs: {outcome.jobs} | "
        f"{outcome.elapsed_seconds:.2f}s "
        f"cache={cache_dir if cache is not None else 'off'}",
        file=sys.stderr,
    )
    grid = outcome.table
    card = scorecard(grid)
    if args.json:
        import json

        def rows_of(table):
            return [dict(zip(table.columns, row)) for row in table.rows]

        print(
            json.dumps(
                {"scorecard": rows_of(card), "grid": rows_of(grid)},
                indent=2,
            )
        )
    elif args.csv:
        print(card.to_csv(), end="")
    elif args.markdown:
        print(card.to_markdown())
        if args.full:
            print()
            print(grid.to_markdown())
    else:
        print(card.render())
        if args.full:
            print()
            print(grid.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos campaign with platform faults armed by default."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.resilience import WorkerCrash
    from repro.experiments.chaoscampaign import SCENARIOS, run_campaign
    from repro.experiments.engine import CellCache, default_cache_dir
    from repro.obs import MetricsRegistry, Tracer, repro_header

    if args.list_scenarios:
        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            print(f"{name:<{width}}  {scenario.description}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.scenario:
        unknown = sorted(set(args.scenario) - set(SCENARIOS))
        if unknown:
            print(
                f"unknown scenario(s) {unknown}; "
                f"choose from {sorted(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2

    cache = None
    cache_dir = None
    if not args.no_cache:
        cache_dir = (
            Path(args.cache_dir).expanduser()
            if args.cache_dir
            else default_cache_dir()
        )
        cache = CellCache(cache_dir)

    tracer = None
    if args.trace:
        tracer = Tracer(
            header=repro_header(seed=args.seed, command="chaos")
        )
    fault_dir = None
    if not args.no_faults:
        fault_dir = tempfile.mkdtemp(prefix="ccf-chaos-faults-")
    try:
        out = run_campaign(
            quick=args.quick,
            jobs=args.jobs,
            cache=cache,
            fault_dir=fault_dir,
            seed=args.seed,
            scenarios=tuple(args.scenario) if args.scenario else None,
            progress=lambda msg: print(msg, file=sys.stderr),
            metrics=MetricsRegistry(),
            instrumentation=tracer,
        )
    except KeyboardInterrupt as exc:
        return _report_interrupt(exc, cache_dir)
    except WorkerCrash as exc:
        return _report_watchdog_abort(exc, args)
    finally:
        if fault_dir is not None:
            shutil.rmtree(fault_dir, ignore_errors=True)
        if tracer is not None and args.trace:
            from repro.obs import write_trace

            write_trace(tracer, args.trace, "jsonl")
            print(
                f"trace: {len(tracer.events)} events -> {args.trace} (jsonl)",
                file=sys.stderr,
            )

    rendered = (
        out.table.to_markdown() + "\n\n" + out.resilience.to_markdown()
        if args.markdown
        else out.table.render() + "\n\n" + out.resilience.render()
    )
    if args.csv:
        print(out.table.to_csv(), end="")
    else:
        print(rendered)
    if args.report:
        report_path = Path(args.report).expanduser()
        if report_path.parent != Path(""):
            report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            "# Chaos campaign\n\n"
            + out.table.to_markdown()
            + "\n\n"
            + out.resilience.to_markdown()
            + "\n",
            encoding="utf-8",
        )
        print(f"report written to {report_path}", file=sys.stderr)
    if not out.completed:
        print("chaos campaign FAILED: coflows were lost", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace: CCTs, bottleneck ports, failures."""
    import json

    from repro.obs import read_jsonl, render_summary, summarize_trace

    try:
        header, events = read_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(events, header, top_k_ports=args.top_ports)
    if summary["epochs"].get("truncated"):
        print(
            f"warning: {args.trace_file}: epoch timeline is truncated "
            "(oldest samples missing); epoch-derived statistics cover "
            "only the retained window",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(summary, indent=1))
    else:
        print(render_summary(summary))
    return 0


#: Experiments cheap enough for the default report.
_QUICK_REPORT = (
    "motivating",
    "solver",
    "ablation-heuristic",
    "trace",
    "online",
    "topology",
)


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a batch of experiments and write one markdown report."""
    from pathlib import Path

    names = args.experiments
    if not names:
        if args.from_trace and args.experiments is None:
            names = []  # trace-only report
        else:
            names = list(_QUICK_REPORT)
            if args.quick:
                names += ["fig5", "fig6", "fig7"]
    elif names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    sections = [
        "# CCF experiment report",
        "",
        "Reproduction of Cheng et al., *A Coflow-based Co-optimization "
        "Framework for High-performance Data Analytics* (ICPP 2017).",
        "",
    ]
    for name in names:
        print(f"running {name} ...", flush=True)
        if name in _CONFIGURABLE and args.quick:
            table = _CONFIGURABLE[name](SweepConfig.quick())
        else:
            table = run_experiment(name)
        sections += [f"## {name}", "", table.to_markdown(), ""]
    if args.from_trace:
        section = _trace_report_section(args.from_trace)
        if section is None:
            return 2
        sections += section
    Path(args.out).write_text("\n".join(sections))
    print(f"report written to {args.out}")
    return 0


def _trace_report_section(path: str) -> list[str] | None:
    """Markdown section summarizing a captured JSONL trace."""
    import json

    from repro.network.visualize import gantt
    from repro.obs import (
        names_from_trace,
        read_jsonl,
        render_summary,
        result_from_trace,
        summarize_trace,
    )

    try:
        header, events = read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {path}: {exc}", file=sys.stderr)
        return None
    summary = summarize_trace(events, header)
    res = result_from_trace(events)
    lines = [f"## Trace summary: `{path}`", ""]
    if summary["epochs"].get("truncated"):
        lines += [
            "> **Note:** the epoch timeline in this trace is truncated "
            "(oldest samples missing); epoch-derived statistics and the "
            "Gantt chart cover only the retained window.",
            "",
        ]
    if header:
        lines += [
            "Reproducibility header:",
            "",
            "```json",
            json.dumps(header, indent=1),
            "```",
            "",
        ]
    lines += ["```", render_summary(summary), "```", ""]
    if res.ccts or res.failed_coflows:
        lines += [
            "```",
            gantt(res, names=names_from_trace(events)),
            "```",
            "",
        ]
    return lines


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    """Generate a synthetic trace in JSON or CoflowSim format."""
    from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix

    cfg = CoflowMixConfig(
        n_ports=args.ports,
        n_coflows=args.coflows,
        arrival_rate=args.arrival_rate,
        seed=args.seed,
    )
    coflows = generate_coflow_mix(cfg)
    if args.format == "json":
        from repro.network.io import save_coflows

        save_coflows(coflows, args.out)
    else:
        from repro.network.coflowsim_trace import write_coflowsim_trace

        try:
            write_coflowsim_trace(coflows, args.out, n_ports=args.ports)
        except ValueError as exc:
            print(f"cannot express trace in CoflowSim format: {exc}",
                  file=sys.stderr)
            return 1
    print(
        f"wrote {len(coflows)} coflows over {args.ports} ports to {args.out} "
        f"({args.format})"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark the simulator hot path and emit BENCH_simulator.json."""
    import json

    from repro.experiments.hotpath import (
        check_regression,
        load_baseline,
        run_bench,
    )

    payload = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    text = json.dumps(payload, indent=1)
    # With ``--out -`` stdout IS the JSON document; human-facing chatter
    # must go to stderr or the stream stops parsing.
    chat = sys.stderr if args.out == "-" else sys.stdout
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=chat)
    s = payload["summary"]
    ident = "yes" if s["all_bit_identical"] else "NO -- INVESTIGATE"
    print(
        f"{s['n_cases']} cases; epoch-throughput speedup "
        f"{s['min_speedup']:.2f}x..{s['max_speedup']:.2f}x "
        f"(geomean {s['geomean_speedup']:.2f}x); "
        f"{s['n_fleet_cases']} fleet cases (event-horizon geomean "
        f"{s['fleet_geomean_speedup']:.2f}x); bit-identical: {ident}",
        file=chat,
    )
    if not s["all_bit_identical"]:
        return 1
    if args.check:
        problems = check_regression(
            payload, load_baseline(args.check), tolerance=args.tolerance
        )
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.check} (tolerance {args.tolerance})",
            file=chat,
        )
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    """Print the Gantt chart: simulate a coflow file, or read a trace."""
    from repro.network.visualize import gantt

    if (args.coflow_file is None) == (args.from_trace is None):
        print(
            "gantt needs exactly one input: a coflow JSON file "
            "(simulates) or --from-trace PATH (replays a capture)",
            file=sys.stderr,
        )
        return 2
    if args.from_trace:
        from repro.obs import names_from_trace, read_jsonl, result_from_trace

        try:
            header, events = read_jsonl(args.from_trace)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.from_trace}: {exc}",
                  file=sys.stderr)
            return 2
        res = result_from_trace(events)
        names = names_from_trace(events)
        bits = [
            f"{k}={header[k]}"
            for k in ("scheduler", "version", "git")
            if header.get(k) is not None
        ]
        print(f"trace {args.from_trace}: {len(names)} coflows"
              + (f" ({'  '.join(bits)})" if bits else ""))
        print(gantt(res, names=names, width=args.width))
        return 0

    from repro.network.fabric import Fabric
    from repro.network.io import load_coflows
    from repro.network.schedulers import make_scheduler
    from repro.network.simulator import CoflowSimulator

    coflows = load_coflows(args.coflow_file)
    if not coflows:
        print("no coflows in file", file=sys.stderr)
        return 1
    n_ports = max(c.max_port for c in coflows) + 1
    sim = CoflowSimulator(
        Fabric(n_ports=n_ports, rate=args.rate), make_scheduler(args.scheduler)
    )
    res = sim.run(coflows)
    names = {
        (c.coflow_id if c.coflow_id >= 0 else i): (c.name or f"cf{i}")
        for i, c in enumerate(coflows)
    }
    print(f"scheduler={args.scheduler}, {len(coflows)} coflows, "
          f"{n_ports} ports")
    print(gantt(res, names=names, width=args.width))
    return 0


def _arrival_config_from_args(args: argparse.Namespace):
    """Build the ArrivalConfig shared by serve and capacity."""
    from repro.service import ArrivalConfig

    return ArrivalConfig(
        n_ports=args.ports,
        users=args.users,
        qps_per_user=args.qps,
        process=args.process,
        pareto_alpha=args.pareto_alpha,
        size_mix=args.size_mix,
        zipf_a=args.zipf_a,
        size_scale=args.size_scale,
        max_arrivals=args.arrivals,
        horizon=args.horizon,
        seed=args.seed,
    )


def _serve_policy_params(args: argparse.Namespace) -> dict:
    """Collect the explicit policy overrides from serve flags."""
    params: dict = {}
    if args.watermark is not None:
        params["watermark_s"] = args.watermark
    if args.queue_limit is not None:
        params["queue_limit"] = args.queue_limit
    return params


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run one open-loop service scenario and report it."""
    import json

    from repro.service import ServiceConfig, make_admission_policy, run_service

    try:
        arrival = _arrival_config_from_args(args)
        policy_params = _serve_policy_params(args)
        # Validate the policy/override combination up front so a bad
        # flag pairing (e.g. --queue-limit with accept-all) is a usage
        # error, not a mid-run crash.
        make_admission_policy(args.policy, **policy_params)
        config = ServiceConfig(
            arrival=arrival,
            load=args.load,
            rate=args.rate,
            scheduler=args.scheduler,
            policy=args.policy,
            policy_params=policy_params,
            slo_p95=args.slo,
            chaos_mtbf=args.chaos_mtbf,
            chaos_mttr=args.chaos_mttr,
            min_alive=args.min_alive,
            recovery=args.recovery,
            wall_clock_budget_s=args.wall_clock_budget,
            max_epochs=args.max_epochs or 50_000_000,
        )
    except (ValueError, TypeError) as exc:
        print(f"invalid service configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE

    tracer = None
    if args.trace:
        from repro.obs import StreamingTracer, repro_header

        try:
            tracer = StreamingTracer(
                args.trace,
                flush_every=args.flush_every,
                header=repro_header(
                    seed=args.seed,
                    scheduler=args.scheduler,
                    mode="serve",
                    policy=args.policy,
                    load=args.load,
                ),
            )
        except ValueError as exc:
            print(f"invalid trace configuration: {exc}", file=sys.stderr)
            return EXIT_USAGE

    try:
        report, result, _ = run_service(config, instrumentation=tracer)
    except ResilienceError as exc:
        return _report_watchdog_abort(exc, args)
    finally:
        if tracer is not None:
            tracer.close()

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        _print_service_report(report, args)
    if tracer is not None and not args.json:
        print(f"trace: {tracer.events_written} events -> {args.trace}")
    return EXIT_SLO_BREACH if not report.slo_ok else EXIT_OK


def _print_service_report(report, args: argparse.Namespace) -> None:
    """Human-readable ``ccf serve`` output."""
    print(
        f"service: policy={report.policy} load={report.load:.2f} "
        f"scheduler={args.scheduler} seed={args.seed}"
    )
    print(
        f"arrivals={report.arrivals} admitted={report.admitted} "
        f"shed={report.shed} ({report.shed_fraction:.1%}) "
        f"deferrals={report.deferrals} completed={report.completed} "
        f"aborted={report.aborted}"
    )

    def _line(label: str, d: dict) -> str:
        return (
            f"{label}: p50={d['p50']:.3f} p95={d['p95']:.3f} "
            f"p99={d['p99']:.3f} mean={d['mean']:.3f} max={d['max']:.3f}"
        )

    print(_line("CCT overall (s)", report.overall))
    if report.steady is not None:
        print(
            _line("CCT steady  (s)", report.steady)
            + f"  [warm-up {report.steady['warmup_s']:.3f} s, "
            f"{report.steady['samples']} samples]"
        )
    else:
        print("CCT steady  (s): too few completions for a steady window")
    print(
        f"backlog at drain: {report.backlog_end_s:.3f} s, "
        f"makespan {report.makespan:.3f} s, {report.n_epochs} epochs"
    )
    if report.port_failures:
        print(
            f"soak: {report.port_failures} port failures, "
            f"{report.bytes_lost:.3g} bytes lost"
        )
    if report.slo_p95 is not None:
        verdict = "OK" if report.slo_ok else "BREACH"
        print(
            f"SLO: p95 {report.reported_p95:.3f} s vs budget "
            f"{report.slo_p95:.3f} s -> {verdict}"
        )


def _cmd_capacity(args: argparse.Namespace) -> int:
    """Binary-search the p95-CCT knee along one axis."""
    import json

    from repro.service import (
        ServiceConfig,
        find_load_capacity,
        find_node_capacity,
    )

    if args.axis == "load" and args.rate is not None:
        print(
            "--rate is forbidden on the load axis (the port rate is "
            "derived from each probed load)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.axis == "nodes" and args.rate is None:
        print(
            "the nodes axis needs an explicit --rate (a load-derived "
            "rate would re-absorb any node count)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    try:
        config = ServiceConfig(
            arrival=_arrival_config_from_args(args),
            rate=args.rate,
            scheduler=args.scheduler,
            policy=args.policy,
        )
        if args.axis == "load":
            kwargs = dict(
                budget_s=args.budget,
                iters=args.iters,
                probe_arrivals=args.probe_arrivals,
            )
            if args.lo is not None:
                kwargs["lo"] = args.lo
            if args.hi is not None:
                kwargs["hi"] = args.hi
            result = find_load_capacity(config, **kwargs)
        else:
            kwargs = dict(
                budget_s=args.budget,
                probe_arrivals=args.probe_arrivals,
            )
            if args.lo is not None:
                kwargs["lo"] = int(args.lo)
            if args.hi is not None:
                kwargs["hi"] = int(args.hi)
            result = find_node_capacity(config, **kwargs)
    except ValueError as exc:
        print(f"invalid capacity search: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.json:
        payload = {
            "axis": result.axis,
            "budget_s": result.budget_s,
            "best": result.best,
            "status": result.status,
            "probes": [vars(p) for p in result.probes],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"capacity search: axis={result.axis} "
            f"budget={result.budget_s:.3f} s ({len(result.probes)} probes)"
        )
        print(result.table())
        print(result.describe())
    return EXIT_OK if result.best is not None else EXIT_FAILURE


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "plan":
        return _cmd_plan(args)

    if args.command == "simulate":
        return _cmd_simulate(args)

    if args.command == "sweep":
        return _cmd_sweep(args)

    if args.command == "tournament":
        return _cmd_tournament(args)

    if args.command == "chaos":
        return _cmd_chaos(args)

    if args.command == "stats":
        return _cmd_stats(args)

    if args.command == "report":
        return _cmd_report(args)

    if args.command == "trace-gen":
        return _cmd_trace_gen(args)

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "gantt":
        return _cmd_gantt(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "capacity":
        return _cmd_capacity(args)

    if args.command == "verify":
        from repro.experiments.paper_check import run_paper_check

        table = run_paper_check(
            scale_factor=args.scale_factor, n_nodes=args.nodes
        )
        print(table.render())
        return 0 if "FAIL" not in table.column("verdict") else 1

    name = args.experiment
    if name in _CONFIGURABLE and (args.quick or args.scale_factor or args.nodes):
        cfg = SweepConfig.quick() if args.quick else SweepConfig()
        if args.scale_factor is not None:
            cfg.scale_factor = args.scale_factor
        if args.nodes is not None:
            cfg.n_nodes = args.nodes
        table = _CONFIGURABLE[name](cfg)
    else:
        table = run_experiment(name)

    if args.csv:
        print(table.to_csv(), end="")
    elif args.markdown:
        print(table.to_markdown())
    else:
        print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
