"""Parallel, cache-aware experiment engine behind ``ccf sweep``.

The paper's evaluation (Figures 5-9 and the tables) is a grid of
*independent* simulation cells: each sweep point plans and simulates on
its own, sharing nothing with its neighbours.  This module exploits that
twice:

* **Parallelism** -- the cells of a sweep fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`; serial execution
  (``jobs=1``) stays available as the fallback path and produces
  bit-identical :class:`~repro.experiments.tables.ResultTable`\\ s, since
  every cell is deterministic given its parameters and the table is
  assembled in declaration order regardless of completion order.
* **Memoization** -- each completed cell is written to an on-disk
  content-addressed cache keyed by a canonical hash of (cell parameters,
  sweep name + spec version, repro-header code fields).  Re-running a
  sweep after an unrelated change is a near-instant cache hit, and an
  interrupted sweep resumes from the cells that already completed.

Experiments participate by declaring their grid as a
:class:`SweepSpec`: a list of :class:`Cell`\\ s plus a **module-level**
cell function (module-level so worker processes can unpickle it by
reference) and an assembler that turns the per-cell rows back into the
experiment's ``ResultTable``.

The cache key deliberately excludes the git revision and wall-clock
time: a commit that does not change cell semantics must still hit.  When
an experiment's cell function changes meaning, bump its spec
``version`` to invalidate old entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.experiments.tables import ResultTable

__all__ = [
    "Cell",
    "SweepSpec",
    "SweepOutcome",
    "CellCache",
    "run_sweep",
    "rows_to_table",
    "cell_key",
    "derive_seed",
    "default_cache_dir",
]


@dataclass(frozen=True)
class Cell:
    """One independent sweep point.

    Parameters
    ----------
    label:
        Human-readable cell name for progress lines (``"nodes=300"``).
    params:
        Keyword arguments of the spec's cell function.  Every value must
        be JSON-serializable (numbers, strings, booleans, lists, dicts):
        the parameters are both the call site and the cache identity.
    """

    label: str
    params: dict[str, Any]


@dataclass
class SweepSpec:
    """A sweep experiment declared as a grid of independent cells.

    Parameters
    ----------
    name:
        Registry name of the experiment (also the cache namespace).
    fn:
        Module-level callable invoked as ``fn(**cell.params)`` for each
        cell, returning a JSON-serializable result (typically one table
        row).  It must be importable by reference so worker processes
        can unpickle it.
    cells:
        The grid, in table row order.
    assemble:
        Turns the per-cell results (in ``cells`` order) into the
        experiment's :class:`ResultTable`.  Runs in the parent process
        only, so closures are fine here.
    version:
        Cache-invalidation tag: bump whenever ``fn``'s semantics change
        so stale cached cells cannot be replayed.
    context:
        Extra code-relevant configuration folded into every cell's cache
        key (shared constants that are not per-cell parameters).
    """

    name: str
    fn: Callable[..., Any]
    cells: list[Cell]
    assemble: Callable[[list[Any]], ResultTable]
    version: str = "1"
    context: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` call did.

    Parameters
    ----------
    table:
        The assembled experiment table.
    n_cells:
        Total cells in the grid.
    hits:
        Cells restored from the cache.
    misses:
        Cells actually executed (``n_cells - hits``).
    jobs:
        Worker processes used.
    elapsed_seconds:
        Wall-clock time of the whole sweep.
    """

    table: ResultTable
    n_cells: int
    hits: int
    misses: int
    jobs: int
    elapsed_seconds: float


def rows_to_table(
    title: str, columns: Sequence[str], notes: Sequence[str] = ()
) -> Callable[[list[Any]], ResultTable]:
    """Standard assembler: one cell result per row, notes appended.

    Parameters
    ----------
    title, columns:
        Forwarded to :class:`ResultTable`.
    notes:
        Free-text notes rendered under the table.

    Returns
    -------
    Callable[[list], ResultTable]
        An ``assemble`` callback for :class:`SweepSpec`.
    """

    def assemble(rows: list[Any]) -> ResultTable:
        table = ResultTable(title=title, columns=list(columns))
        for row in rows:
            table.add_row(*row)
        for note in notes:
            table.add_note(note)
        return table

    return assemble


# -- cache identity -----------------------------------------------------


def _canonical(payload: Any) -> str:
    """Canonical JSON: the byte-stable serialization keys are hashed from."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _code_fields() -> dict[str, Any]:
    """Repro-header fields that describe the *code*, not one run.

    Volatile fields are dropped on purpose: ``created_unix`` changes
    every call, and ``git`` changes on every commit -- including commits
    that do not touch the experiment, which must still be cache hits.
    Package/numpy/python versions stay in: a dependency bump may change
    floating-point results, and a stale hit would be silent corruption.
    """
    from repro.obs.header import repro_header

    header = repro_header()
    header.pop("created_unix", None)
    header.pop("git", None)
    return header


def cell_key(spec: SweepSpec, cell: Cell) -> str:
    """Content-addressed identity of one cell.

    SHA-256 over the canonical JSON of (experiment name, spec version,
    spec context, cell parameters, code-describing repro-header fields).

    Raises
    ------
    TypeError
        If a cell parameter is not JSON-serializable (cells must be
        declared with plain data, or they cannot be cached or shipped
        to worker processes).
    """
    payload = {
        "experiment": spec.name,
        "spec_version": spec.version,
        "context": spec.context,
        "params": cell.params,
        "header": _code_fields(),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def derive_seed(base: int, *parts: Any) -> int:
    """Deterministic per-cell seed, stable across runs and processes.

    Hashes ``(base, parts)`` so neighbouring cells get decorrelated
    generators while equal inputs always produce the equal seed --
    required for parallel/serial bit-identity of seeded grids.

    Parameters
    ----------
    base:
        The experiment-level seed.
    parts:
        Cell coordinates (index, axis value, ...); any JSON-able values.

    Returns
    -------
    int
        A seed in ``[0, 2**31)`` suitable for ``numpy.random.default_rng``.
    """
    text = _canonical([int(base), list(parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


def default_cache_dir() -> Path:
    """Cell-cache root: ``$CCF_CACHE_DIR`` or ``~/.cache/ccf/sweeps``."""
    env = os.environ.get("CCF_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "ccf" / "sweeps"


class CellCache:
    """On-disk content-addressed store of completed sweep cells.

    One JSON document per cell under ``root/<key[:2]>/<key>.json``,
    holding the result plus a full reproducibility header for
    provenance.  Writes are atomic (temp file + rename) so a sweep
    killed mid-write never leaves a half-entry; unreadable or corrupt
    entries are treated as misses, never as errors.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where one cell's document lives (sharded by key prefix)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored document for ``key``, or None on any miss."""
        try:
            text = self.path(key).read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            return None  # corrupt entry: recompute rather than crash
        if not isinstance(doc, dict) or "result" not in doc:
            return None
        return doc

    def put(self, key: str, document: dict[str, Any]) -> None:
        """Atomically persist one cell document."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)


# -- execution ----------------------------------------------------------


def _invoke(fn: Callable[..., Any], params: dict[str, Any]) -> tuple[Any, float]:
    """Run one cell (module-level so worker processes can pickle it)."""
    start = time.perf_counter()
    value = fn(**params)
    return value, time.perf_counter() - start


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: CellCache | None = None,
    progress: Callable[[str], None] | None = None,
    metrics: Any = None,
) -> SweepOutcome:
    """Execute a sweep grid: cache lookups, then (parallel) cell runs.

    Cells found in ``cache`` are restored without executing; the rest
    run serially in declaration order (``jobs=1``) or fan out over a
    process pool.  Either way the table is assembled in declaration
    order, so for deterministic cell functions the result is
    bit-identical across ``jobs`` values and across cold/warm caches.

    Completed cells are cached *as they finish*, so an interrupted or
    partially failed sweep resumes from the survivors on the next call.
    If cells fail, the error of the earliest failing cell is re-raised
    after the remaining cells have been collected and cached.

    Parameters
    ----------
    spec:
        The grid to run.
    jobs:
        Worker processes; 1 (default) executes in-process.
    cache:
        Cell store; None disables both lookup and write-back.
    progress:
        Optional sink for one human-readable line per cell.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; receives
        ``sweep_cells_total``, ``sweep_cache_hits_total``,
        ``sweep_cells_executed_total`` counters and a ``sweep_jobs``
        gauge, all labelled by experiment.

    Returns
    -------
    SweepOutcome
        The assembled table plus cache-hit and timing counters.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    say = progress or (lambda msg: None)
    n = len(spec.cells)
    results: list[Any] = [None] * n
    keys: list[str | None] = [None] * n
    pending: list[int] = []
    hits = 0

    for i, cell in enumerate(spec.cells):
        if cache is not None:
            keys[i] = cell_key(spec, cell)
            doc = cache.get(keys[i])
            if doc is not None:
                results[i] = doc["result"]
                hits += 1
                say(f"[{i + 1}/{n}] {spec.name} {cell.label}: cached")
                continue
        pending.append(i)

    def record(i: int, value: Any, elapsed: float) -> None:
        results[i] = value
        cell = spec.cells[i]
        if cache is not None and keys[i] is not None:
            from repro.obs.header import repro_header

            cache.put(
                keys[i],
                {
                    "key": keys[i],
                    "experiment": spec.name,
                    "spec_version": spec.version,
                    "label": cell.label,
                    "params": cell.params,
                    "elapsed_seconds": round(elapsed, 6),
                    "header": repro_header(experiment=spec.name),
                    "result": value,
                },
            )
        say(f"[{i + 1}/{n}] {spec.name} {cell.label}: ran in {elapsed:.2f}s")

    if pending and (jobs == 1 or len(pending) == 1):
        for i in pending:
            value, elapsed = _invoke(spec.fn, spec.cells[i].params)
            record(i, value, elapsed)
    elif pending:
        errors: list[tuple[int, BaseException]] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_invoke, spec.fn, spec.cells[i].params): i
                for i in pending
            }
            for fut in as_completed(futures):
                i = futures[fut]
                try:
                    value, elapsed = fut.result()
                except BaseException as exc:  # cache survivors, raise below
                    errors.append((i, exc))
                    continue
                record(i, value, elapsed)
        if errors:
            raise min(errors, key=lambda e: e[0])[1]

    misses = n - hits
    if metrics is not None:
        labels = {"experiment": spec.name}
        metrics.counter(
            "sweep_cells_total", "sweep cells assembled (hit or run)", labels
        ).inc(n)
        metrics.counter(
            "sweep_cache_hits_total", "cells restored from the cell cache", labels
        ).inc(hits)
        metrics.counter(
            "sweep_cells_executed_total", "cells actually executed", labels
        ).inc(misses)
        metrics.gauge(
            "sweep_jobs", "worker processes of the last sweep", labels
        ).set(jobs)

    return SweepOutcome(
        table=spec.assemble(results),
        n_cells=n,
        hits=hits,
        misses=misses,
        jobs=jobs,
        elapsed_seconds=time.perf_counter() - start,
    )
