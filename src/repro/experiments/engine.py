"""Parallel, cache-aware experiment engine behind ``ccf sweep``.

The paper's evaluation (Figures 5-9 and the tables) is a grid of
*independent* simulation cells: each sweep point plans and simulates on
its own, sharing nothing with its neighbours.  This module exploits that
twice:

* **Parallelism** -- the cells of a sweep fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`; serial execution
  (``jobs=1``) stays available as the fallback path and produces
  bit-identical :class:`~repro.experiments.tables.ResultTable`\\ s, since
  every cell is deterministic given its parameters and the table is
  assembled in declaration order regardless of completion order.
* **Memoization** -- each completed cell is written to an on-disk
  content-addressed cache keyed by a canonical hash of (cell parameters,
  sweep name + spec version, repro-header code fields).  Re-running a
  sweep after an unrelated change is a near-instant cache hit, and an
  interrupted sweep resumes from the cells that already completed.

Experiments participate by declaring their grid as a
:class:`SweepSpec`: a list of :class:`Cell`\\ s plus a **module-level**
cell function (module-level so worker processes can unpickle it by
reference) and an assembler that turns the per-cell rows back into the
experiment's ``ResultTable``.

The cache key deliberately excludes the git revision and wall-clock
time: a commit that does not change cell semantics must still hit.  When
an experiment's cell function changes meaning, bump its spec
``version`` to invalidate old entries.

**Supervised execution.**  Long sweeps die in boring ways: a worker gets
OOM-killed, one cell spins, a cache file is truncated by a full disk.
:func:`run_sweep` survives all three through the
:mod:`repro.core.resilience` primitives -- per-cell hard timeouts
(:class:`~repro.core.resilience.CellTimeout`), bounded retries with
deterministic backoff (:class:`~repro.core.resilience.Backoff`),
process-pool rebuilds that re-dispatch only the cells the dead worker
took with it (bounded, then :class:`~repro.core.resilience.WorkerCrash`)
and per-entry SHA-256 integrity checks that *quarantine* corrupt cache
files instead of crashing a ``--resume``.  None of it changes results:
fault-injected runs stay bit-identical to clean serial runs, because
recovery only ever re-executes deterministic cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.resilience import (
    Backoff,
    CellTimeout,
    WorkerCrash,
    crash_report,
    retry_call,
    run_with_timeout,
)
from repro.experiments.tables import ResultTable

__all__ = [
    "Cell",
    "SweepSpec",
    "SweepOutcome",
    "SweepInterrupted",
    "CellCache",
    "run_sweep",
    "rows_to_table",
    "cell_key",
    "derive_seed",
    "default_cache_dir",
    "result_digest",
]


@dataclass(frozen=True)
class Cell:
    """One independent sweep point.

    Parameters
    ----------
    label:
        Human-readable cell name for progress lines (``"nodes=300"``).
    params:
        Keyword arguments of the spec's cell function.  Every value must
        be JSON-serializable (numbers, strings, booleans, lists, dicts):
        the parameters are both the call site and the cache identity.
    """

    label: str
    params: dict[str, Any]


@dataclass
class SweepSpec:
    """A sweep experiment declared as a grid of independent cells.

    Parameters
    ----------
    name:
        Registry name of the experiment (also the cache namespace).
    fn:
        Module-level callable invoked as ``fn(**cell.params)`` for each
        cell, returning a JSON-serializable result (typically one table
        row).  It must be importable by reference so worker processes
        can unpickle it.
    cells:
        The grid, in table row order.
    assemble:
        Turns the per-cell results (in ``cells`` order) into the
        experiment's :class:`ResultTable`.  Runs in the parent process
        only, so closures are fine here.
    version:
        Cache-invalidation tag: bump whenever ``fn``'s semantics change
        so stale cached cells cannot be replayed.
    context:
        Extra code-relevant configuration folded into every cell's cache
        key (shared constants that are not per-cell parameters).
    """

    name: str
    fn: Callable[..., Any]
    cells: list[Cell]
    assemble: Callable[[list[Any]], ResultTable]
    version: str = "1"
    context: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` call did.

    Parameters
    ----------
    table:
        The assembled experiment table.
    n_cells:
        Total cells in the grid.
    hits:
        Cells restored from the cache.
    misses:
        Cells actually executed (``n_cells - hits``).
    jobs:
        Worker processes used.
    elapsed_seconds:
        Wall-clock time of the whole sweep.
    retries:
        Cell attempts re-run under the retry policy.
    timeouts:
        Cell attempts that hit the per-cell timeout.
    worker_crashes:
        Process-pool breakages observed (workers dying hard).
    pool_rebuilds:
        Pools rebuilt after a breakage (lost cells re-dispatched).
    quarantined:
        Corrupt cache entries moved aside and recomputed.
    """

    table: ResultTable
    n_cells: int
    hits: int
    misses: int
    jobs: int
    elapsed_seconds: float
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, annotated with how far the grid got.

    Subclasses :class:`KeyboardInterrupt` so generic interrupt handling
    keeps working; the extra fields let the CLI print a partial summary
    (completed cells are already flushed to the cache) before exiting
    with the conventional interrupt status 130.
    """

    def __init__(self, completed: int, n_cells: int) -> None:
        super().__init__(f"interrupted after {completed}/{n_cells} cells")
        self.completed = completed
        self.n_cells = n_cells


def rows_to_table(
    title: str, columns: Sequence[str], notes: Sequence[str] = ()
) -> Callable[[list[Any]], ResultTable]:
    """Standard assembler: one cell result per row, notes appended.

    Parameters
    ----------
    title, columns:
        Forwarded to :class:`ResultTable`.
    notes:
        Free-text notes rendered under the table.

    Returns
    -------
    Callable[[list], ResultTable]
        An ``assemble`` callback for :class:`SweepSpec`.
    """

    def assemble(rows: list[Any]) -> ResultTable:
        table = ResultTable(title=title, columns=list(columns))
        for row in rows:
            table.add_row(*row)
        for note in notes:
            table.add_note(note)
        return table

    return assemble


# -- cache identity -----------------------------------------------------


def _canonical(payload: Any) -> str:
    """Canonical JSON: the byte-stable serialization keys are hashed from."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _code_fields() -> dict[str, Any]:
    """Repro-header fields that describe the *code*, not one run.

    Volatile fields are dropped on purpose: ``created_unix`` changes
    every call, and ``git`` changes on every commit -- including commits
    that do not touch the experiment, which must still be cache hits.
    Package/numpy/python versions stay in: a dependency bump may change
    floating-point results, and a stale hit would be silent corruption.
    """
    from repro.obs.header import repro_header

    header = repro_header()
    header.pop("created_unix", None)
    header.pop("git", None)
    return header


def cell_key(spec: SweepSpec, cell: Cell) -> str:
    """Content-addressed identity of one cell.

    SHA-256 over the canonical JSON of (experiment name, spec version,
    spec context, cell parameters, code-describing repro-header fields).

    Raises
    ------
    TypeError
        If a cell parameter is not JSON-serializable (cells must be
        declared with plain data, or they cannot be cached or shipped
        to worker processes).
    """
    payload = {
        "experiment": spec.name,
        "spec_version": spec.version,
        "context": spec.context,
        "params": cell.params,
        "header": _code_fields(),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def derive_seed(base: int, *parts: Any) -> int:
    """Deterministic per-cell seed, stable across runs and processes.

    Hashes ``(base, parts)`` so neighbouring cells get decorrelated
    generators while equal inputs always produce the equal seed --
    required for parallel/serial bit-identity of seeded grids.

    Parameters
    ----------
    base:
        The experiment-level seed.
    parts:
        Cell coordinates (index, axis value, ...); any JSON-able values.

    Returns
    -------
    int
        A seed in ``[0, 2**31)`` suitable for ``numpy.random.default_rng``.
    """
    text = _canonical([int(base), list(parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


def result_digest(value: Any) -> str:
    """Integrity checksum of one cell result: SHA-256 of canonical JSON.

    Stored inside each cache entry and re-verified on every read, so a
    truncated or bit-flipped file is detected instead of silently fed
    into a table.  Canonical JSON (not raw file bytes) keeps the digest
    independent of cosmetic re-serialization.
    """
    return hashlib.sha256(_canonical(value).encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Cell-cache root: ``$CCF_CACHE_DIR`` or ``~/.cache/ccf/sweeps``."""
    env = os.environ.get("CCF_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "ccf" / "sweeps"


class CellCache:
    """On-disk content-addressed store of completed sweep cells.

    One JSON document per cell under ``root/<key[:2]>/<key>.json``,
    holding the result plus a full reproducibility header for
    provenance and a SHA-256 digest of the result
    (:func:`result_digest`).  Writes are atomic (temp file + rename) so
    a sweep killed mid-write never leaves a half-entry.

    Reads verify integrity: an entry that is unparseable, structurally
    wrong or fails its checksum is **quarantined** -- moved to
    ``root/quarantine/`` for post-mortems -- and reported as a miss, so
    the cell is recomputed and a resumed sweep never crashes on (or
    silently trusts) a damaged file.  Entries written before checksums
    existed carry no ``sha256`` field and are still honoured.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Entries moved to quarantine over this instance's lifetime.
        self.quarantined = 0

    def path(self, key: str) -> Path:
        """Where one cell's document lives (sharded by key prefix)."""
        return self.root / key[:2] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        """Where damaged entries are preserved for inspection."""
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> None:
        qdir = self.quarantine_dir()
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.name}.{n}"
        try:
            os.replace(path, target)
        except OSError:
            return  # already removed by a concurrent reader
        self.quarantined += 1

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored document for ``key``, or None on any miss.

        Damaged entries (bad JSON, missing result, checksum mismatch)
        are quarantined before reporting the miss.
        """
        path = self.path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._quarantine(path)  # truncated / garbled: preserve, recompute
            return None
        if not isinstance(doc, dict) or "result" not in doc:
            self._quarantine(path)
            return None
        digest = doc.get("sha256")
        if digest is not None and digest != result_digest(doc["result"]):
            self._quarantine(path)  # bit-flip or tampering: never trust it
            return None
        return doc

    def put(self, key: str, document: dict[str, Any]) -> None:
        """Atomically persist one cell document (checksum stamped here)."""
        if "result" in document and "sha256" not in document:
            document = {**document, "sha256": result_digest(document["result"])}
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)


# -- execution ----------------------------------------------------------


def _invoke(
    fn: Callable[..., Any],
    params: dict[str, Any],
    timeout_s: float | None = None,
    label: str = "cell",
) -> tuple[Any, float]:
    """Run one cell (module-level so worker processes can pickle it).

    The timeout is armed *inside* the worker (SIGALRM on its main
    thread), so a spinning cell raises :class:`CellTimeout` in place
    rather than wedging the pool.
    """
    start = time.perf_counter()
    value = run_with_timeout(lambda: fn(**params), timeout_s, what=label)
    return value, time.perf_counter() - start


def _run_serial(
    spec: SweepSpec,
    pending: list[int],
    record: Callable[[int, Any, float], None],
    retry: Backoff | None,
    cell_timeout_s: float | None,
    stats: dict[str, int],
    note: Callable[..., None],
) -> None:
    """In-process execution path: declaration order, fail-fast.

    Retries and timeouts apply exactly as in the parallel path (the
    SIGALRM timeout arms on this process's main thread instead of a
    worker's), so ``jobs=1`` exercises the same supervision machinery.
    """
    for i in pending:
        cell = spec.cells[i]
        what = f"{spec.name} cell {cell.label}"

        def once() -> tuple[Any, float]:
            return _invoke(spec.fn, cell.params, cell_timeout_s, what)

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            stats["retries"] += 1
            if isinstance(exc, CellTimeout):
                stats["timeouts"] += 1
                note("cell_timeout", cell=cell.label, attempt=attempt,
                     detail=str(exc))
            note("retry", cell=cell.label, attempt=attempt,
                 detail=type(exc).__name__)

        try:
            if retry is not None:
                value, elapsed = retry_call(once, policy=retry, on_retry=on_retry)
            else:
                value, elapsed = once()
        except CellTimeout as exc:  # the final (or only) attempt timed out
            stats["timeouts"] += 1
            note("cell_timeout", cell=cell.label, detail=str(exc))
            raise
        record(i, value, elapsed)


def _run_parallel(
    spec: SweepSpec,
    pending: list[int],
    jobs: int,
    record: Callable[[int, Any, float], None],
    retry: Backoff | None,
    cell_timeout_s: float | None,
    max_pool_rebuilds: int,
    stats: dict[str, int],
    note: Callable[..., None],
    *,
    completed_so_far: Callable[[], int],
    n_cells: int,
) -> None:
    """Process-pool execution path with crash recovery.

    One pool *generation* dispatches every outstanding cell and drains
    completions.  A worker dying hard breaks the whole pool
    (``BrokenProcessPool`` surfaces on every unfinished future); the
    cells those futures carried are collected as *lost* and re-dispatched
    into a fresh generation -- finished cells are never re-run.  After
    ``max_pool_rebuilds`` breakages the sweep gives up with
    :class:`WorkerCrash` carrying a crash report.
    """
    errors: list[tuple[int, BaseException]] = []
    attempts = {i: 0 for i in pending}
    todo = list(pending)
    breaks = 0

    while todo:
        lost: set[int] = set()
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(todo)))

        def dispatch(i: int) -> None:
            fut = pool.submit(
                _invoke, spec.fn, spec.cells[i].params, cell_timeout_s,
                f"{spec.name} cell {spec.cells[i].label}",
            )
            inflight[fut] = i

        inflight: dict[Any, int] = {}
        try:
            for i in todo:
                dispatch(i)
            todo = []
            while inflight:
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                for fut in done:
                    i = inflight.pop(fut)
                    label = spec.cells[i].label
                    try:
                        value, elapsed = fut.result()
                    except (BrokenProcessPool, CancelledError):
                        lost.add(i)  # the dead worker took this cell
                        continue
                    except Exception as exc:
                        attempts[i] += 1
                        if isinstance(exc, CellTimeout):
                            stats["timeouts"] += 1
                            note("cell_timeout", cell=label,
                                 attempt=attempts[i], detail=str(exc))
                        if retry is not None and attempts[i] < retry.max_attempts:
                            pause = retry.delay(attempts[i])
                            stats["retries"] += 1
                            note("retry", cell=label, attempt=attempts[i],
                                 detail=type(exc).__name__)
                            if pause > 0:
                                time.sleep(pause)
                            try:
                                dispatch(i)
                            except BrokenProcessPool:
                                lost.add(i)
                        else:
                            errors.append((i, exc))
                        continue
                    record(i, value, elapsed)
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            done_n = completed_so_far()
            note("interrupt", detail=f"{done_n}/{n_cells} cells completed")
            raise SweepInterrupted(done_n, n_cells) from None
        finally:
            pool.shutdown()

        if not lost:
            break
        stats["worker_crashes"] += 1
        breaks += 1
        note("worker_crash",
             detail=f"pool broke; {len(lost)} cells lost")
        if breaks > max_pool_rebuilds:
            labels = [spec.cells[i].label for i in sorted(lost)]
            err = WorkerCrash(
                f"process pool broke {breaks} times "
                f"(max_pool_rebuilds={max_pool_rebuilds}); "
                f"{len(lost)} cells still unfinished"
            )
            err.report = crash_report(err, context={
                "experiment": spec.name,
                "lost_cells": labels[:20],
                "pool_rebuilds": breaks - 1,
                "completed": completed_so_far(),
                "n_cells": n_cells,
            })
            raise err
        stats["pool_rebuilds"] += 1
        note("pool_rebuild", attempt=breaks,
             detail=f"re-dispatching {len(lost)} lost cells")
        todo = sorted(lost)

    if errors:
        raise min(errors, key=lambda e: e[0])[1]


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: CellCache | None = None,
    progress: Callable[[str], None] | None = None,
    metrics: Any = None,
    retry: Backoff | None = None,
    cell_timeout_s: float | None = None,
    max_pool_rebuilds: int = 3,
    instrumentation: Any = None,
) -> SweepOutcome:
    """Execute a sweep grid: cache lookups, then (parallel) cell runs.

    Cells found in ``cache`` are restored without executing; the rest
    run serially in declaration order (``jobs=1``) or fan out over a
    process pool.  Either way the table is assembled in declaration
    order, so for deterministic cell functions the result is
    bit-identical across ``jobs`` values and across cold/warm caches --
    and across faults: retries, timeouts and pool rebuilds only ever
    *re-execute* deterministic cells, never change them.

    Completed cells are cached *as they finish*, so an interrupted or
    partially failed sweep resumes from the survivors on the next call.
    If cells fail, the error of the earliest failing cell is re-raised
    after the remaining cells have been collected and cached.  A worker
    process dying hard (OOM kill, segfault) breaks the pool; the pool is
    rebuilt and only the cells the dead worker took are re-dispatched,
    up to ``max_pool_rebuilds`` times before :class:`WorkerCrash`.
    ``KeyboardInterrupt`` is re-raised as :class:`SweepInterrupted`
    after cancelling undispatched cells, so callers can report partial
    progress; everything already recorded stays cached.

    Parameters
    ----------
    spec:
        The grid to run.
    jobs:
        Worker processes; 1 (default) executes in-process.
    cache:
        Cell store; None disables both lookup and write-back.
    progress:
        Optional sink for one human-readable line per cell.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; receives
        ``sweep_cells_total``, ``sweep_cache_hits_total``,
        ``sweep_cells_executed_total``, ``sweep_retries_total``,
        ``sweep_cell_timeouts_total``, ``sweep_worker_crashes_total``,
        ``sweep_pool_rebuilds_total``, ``sweep_quarantined_total``
        counters and a ``sweep_jobs`` gauge, all labelled by experiment.
    retry:
        Optional :class:`Backoff` policy: failed cell attempts are
        re-run (with backoff sleeps) up to ``retry.max_attempts`` times
        before the failure counts.  None (default) fails fast.
    cell_timeout_s:
        Optional hard wall-clock bound per cell attempt, enforced by
        SIGALRM inside the worker; overruns raise :class:`CellTimeout`
        (retryable like any other failure).
    max_pool_rebuilds:
        How many pool breakages to absorb before giving up with
        :class:`WorkerCrash`.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`; receives one
        ``platform_event`` per retry / timeout / crash / rebuild /
        quarantine / interrupt, stamped with wall-clock time.

    Returns
    -------
    SweepOutcome
        The assembled table plus cache-hit, fault and timing counters.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if max_pool_rebuilds < 0:
        raise ValueError(f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}")
    start = time.perf_counter()
    say = progress or (lambda msg: None)
    n = len(spec.cells)
    results: list[Any] = [None] * n
    keys: list[str | None] = [None] * n
    pending: list[int] = []
    hits = 0
    stats = {
        "retries": 0,
        "timeouts": 0,
        "worker_crashes": 0,
        "pool_rebuilds": 0,
        "quarantined": 0,
    }

    def note(event: str, *, cell: str = "", attempt: int = 0,
             detail: str = "") -> None:
        if instrumentation is not None and instrumentation.enabled:
            instrumentation.platform_event(
                event, time=time.time(), experiment=spec.name,
                cell=cell, attempt=attempt, detail=detail,
            )

    for i, cell in enumerate(spec.cells):
        if cache is not None:
            keys[i] = cell_key(spec, cell)
            before = cache.quarantined
            doc = cache.get(keys[i])
            if cache.quarantined > before:
                stats["quarantined"] += cache.quarantined - before
                note("quarantine", cell=cell.label,
                     detail="cache entry failed integrity check")
                say(f"[{i + 1}/{n}] {spec.name} {cell.label}: "
                    "cache entry quarantined, recomputing")
            if doc is not None:
                results[i] = doc["result"]
                hits += 1
                say(f"[{i + 1}/{n}] {spec.name} {cell.label}: cached")
                continue
        pending.append(i)

    completed = hits

    def record(i: int, value: Any, elapsed: float) -> None:
        nonlocal completed
        results[i] = value
        completed += 1
        cell = spec.cells[i]
        if cache is not None and keys[i] is not None:
            from repro.obs.header import repro_header

            cache.put(
                keys[i],
                {
                    "key": keys[i],
                    "experiment": spec.name,
                    "spec_version": spec.version,
                    "label": cell.label,
                    "params": cell.params,
                    "elapsed_seconds": round(elapsed, 6),
                    "header": repro_header(experiment=spec.name),
                    "result": value,
                },
            )
        say(f"[{i + 1}/{n}] {spec.name} {cell.label}: ran in {elapsed:.2f}s")

    if pending and (jobs == 1 or len(pending) == 1):
        try:
            _run_serial(
                spec, pending, record, retry, cell_timeout_s, stats, note
            )
        except SweepInterrupted:
            raise
        except KeyboardInterrupt:
            note("interrupt", detail=f"{completed}/{n} cells completed")
            raise SweepInterrupted(completed, n) from None
    elif pending:
        _run_parallel(
            spec, pending, jobs, record, retry, cell_timeout_s,
            max_pool_rebuilds, stats, note,
            completed_so_far=lambda: completed, n_cells=n,
        )

    misses = n - hits
    if metrics is not None:
        labels = {"experiment": spec.name}
        metrics.counter(
            "sweep_cells_total", "sweep cells assembled (hit or run)", labels
        ).inc(n)
        metrics.counter(
            "sweep_cache_hits_total", "cells restored from the cell cache", labels
        ).inc(hits)
        metrics.counter(
            "sweep_cells_executed_total", "cells actually executed", labels
        ).inc(misses)
        metrics.counter(
            "sweep_retries_total", "cell attempts re-run under retry", labels
        ).inc(stats["retries"])
        metrics.counter(
            "sweep_cell_timeouts_total", "cell attempts that timed out", labels
        ).inc(stats["timeouts"])
        metrics.counter(
            "sweep_worker_crashes_total", "process-pool breakages", labels
        ).inc(stats["worker_crashes"])
        metrics.counter(
            "sweep_pool_rebuilds_total", "pools rebuilt after a crash", labels
        ).inc(stats["pool_rebuilds"])
        metrics.counter(
            "sweep_quarantined_total", "corrupt cache entries quarantined",
            labels,
        ).inc(stats["quarantined"])
        metrics.gauge(
            "sweep_jobs", "worker processes of the last sweep", labels
        ).set(jobs)

    return SweepOutcome(
        table=spec.assemble(results),
        n_cells=n,
        hits=hits,
        misses=misses,
        jobs=jobs,
        elapsed_seconds=time.perf_counter() - start,
        retries=stats["retries"],
        timeouts=stats["timeouts"],
        worker_crashes=stats["worker_crashes"],
        pool_rebuilds=stats["pool_rebuilds"],
        quarantined=stats["quarantined"],
    )
