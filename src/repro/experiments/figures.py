"""Figures 5, 6 and 7: the paper's three evaluation sweeps.

Each sweep compares Hash / Mini / CCF over the TPC-H-derived workload
(SF 600, ~1 TB, p = 15 n, 128 MB/s ports) and reports the two panels of
each figure: (a) network traffic in GB and (b) network communication time
in seconds.  Defaults reproduce the paper's exact sweep points; pass a
smaller ``scale_factor`` or sweep list for quick runs.

The grids are declared as cell lists for
:mod:`repro.experiments.engine`: ``run_fig5_nodes`` & co are the serial
fallback path, while ``ccf sweep fig5 --jobs N`` fans the same cells out
over worker processes and memoizes each in the on-disk cell cache --
both produce bit-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.framework import CCF, DEFAULT_STRATEGIES
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = [
    "SweepConfig",
    "run_fig5_nodes",
    "run_fig6_zipf",
    "run_fig7_skew",
    "fig5_sweep",
    "fig6_sweep",
    "fig7_sweep",
    "QUICK_SCALE_FACTOR",
    "QUICK_N_NODES",
]

#: Paper sweep points.
FIG5_NODES = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
FIG6_ZIPF = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
FIG7_SKEW = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Reduced scale shared by ``ccf run --quick`` and ``ccf sweep --quick``
#: (the single source of truth; the CLI must not redeclare these).
QUICK_SCALE_FACTOR = 30.0
QUICK_N_NODES = 50


@dataclass
class SweepConfig:
    """Shared knobs of the three sweeps (paper defaults)."""

    scale_factor: float = 600.0
    n_nodes: int = 500
    zipf_s: float = 0.8
    skew: float = 0.2
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    ccf: CCF = field(default_factory=CCF)

    @classmethod
    def quick(cls) -> "SweepConfig":
        """The reduced-scale config behind every ``--quick`` flag."""
        return cls(scale_factor=QUICK_SCALE_FACTOR, n_nodes=QUICK_N_NODES)

    def workload(self, **overrides) -> AnalyticJoinWorkload:
        params = dict(
            n_nodes=self.n_nodes,
            scale_factor=self.scale_factor,
            zipf_s=self.zipf_s,
            skew=self.skew,
        )
        params.update(overrides)
        return AnalyticJoinWorkload(**params)


def _ccf_knobs(ccf: CCF) -> dict:
    """The JSON-able constructor knobs of a :class:`CCF` front-end.

    Cells rebuild the framework from these in the worker process; they
    are also part of the cell's cache identity.
    """
    return {
        "skew_handling": ccf.skew_handling,
        "sort_partitions": ccf.sort_partitions,
        "locality_tiebreak": ccf.locality_tiebreak,
        "exact_time_limit": ccf.exact_time_limit,
        "exact_max_variables": ccf.exact_max_variables,
    }


def _figure_cell(
    *,
    axis,
    n_nodes: int,
    scale_factor: float,
    zipf_s: float,
    skew: float,
    strategies: Sequence[str],
    ccf: dict,
) -> list:
    """One sweep point: plan every strategy over one workload.

    Parameters
    ----------
    axis:
        The swept value, echoed as the row's first column.
    n_nodes, scale_factor, zipf_s, skew:
        :class:`~repro.workloads.analytic.AnalyticJoinWorkload` knobs
        (one of them equals ``axis``, depending on the figure).
    strategies:
        Strategy names to plan, in column order.
    ccf:
        :func:`_ccf_knobs` dict rebuilding the :class:`CCF` front-end.

    Returns
    -------
    list
        ``[axis, traffic_gb, cct_s, ...]`` -- one table row.
    """
    framework = CCF(**ccf)
    wl = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=scale_factor, zipf_s=zipf_s, skew=skew
    )
    cmp = framework.compare(wl, strategies=tuple(strategies))
    row: list = [axis]
    for s in strategies:
        row += [cmp.traffic(s) / 1e9, cmp.cct(s)]
    return row


def _figure_spec(
    config: SweepConfig,
    name: str,
    axis_name: str,
    axis_values: Sequence,
    override_key: str,
    title: str,
) -> SweepSpec:
    """Declare one figure sweep as an engine cell grid."""
    cols = [axis_name]
    for s in config.strategies:
        cols += [f"{s}_traffic_gb", f"{s}_cct_s"]
    cells = []
    for v in axis_values:
        params = dict(
            n_nodes=config.n_nodes,
            scale_factor=config.scale_factor,
            zipf_s=config.zipf_s,
            skew=config.skew,
        )
        params[override_key] = v
        cells.append(
            Cell(
                label=f"{axis_name}={v}",
                params=dict(
                    axis=v,
                    strategies=list(config.strategies),
                    ccf=_ccf_knobs(config.ccf),
                    **params,
                ),
            )
        )
    return SweepSpec(
        name=name,
        fn=_figure_cell,
        cells=cells,
        assemble=rows_to_table(title, cols),
    )


def _resolve_config(
    config: SweepConfig | None,
    quick: bool,
    scale_factor: float | None,
    n_nodes: int | None,
) -> SweepConfig:
    config = config or (SweepConfig.quick() if quick else SweepConfig())
    if scale_factor is not None:
        config.scale_factor = scale_factor
    if n_nodes is not None:
        config.n_nodes = n_nodes
    return config


def fig5_sweep(
    config: SweepConfig | None = None,
    nodes: Sequence[int] = FIG5_NODES,
    *,
    quick: bool = False,
    scale_factor: float | None = None,
    n_nodes: int | None = None,
) -> SweepSpec:
    """Figure 5's node sweep as an engine cell grid.

    Parameters
    ----------
    config:
        Sweep knobs; defaults to paper scale (or the shared ``--quick``
        scale when ``quick`` is set).
    nodes:
        The swept node counts.
    quick, scale_factor, n_nodes:
        CLI-style overrides applied on top of ``config``.

    Returns
    -------
    SweepSpec
        One cell per node count, consumed by
        :func:`repro.experiments.engine.run_sweep`.
    """
    config = _resolve_config(config, quick, scale_factor, n_nodes)
    return _figure_spec(
        config,
        "fig5",
        "nodes",
        nodes,
        "n_nodes",
        "Figure 5: traffic (GB) and communication time (s) vs number of nodes",
    )


def fig6_sweep(
    config: SweepConfig | None = None,
    zipfs: Sequence[float] = FIG6_ZIPF,
    *,
    quick: bool = False,
    scale_factor: float | None = None,
    n_nodes: int | None = None,
) -> SweepSpec:
    """Figure 6's Zipf sweep as an engine cell grid (see :func:`fig5_sweep`)."""
    config = _resolve_config(config, quick, scale_factor, n_nodes)
    return _figure_spec(
        config,
        "fig6",
        "zipf",
        zipfs,
        "zipf_s",
        "Figure 6: traffic (GB) and communication time (s) vs Zipf factor",
    )


def fig7_sweep(
    config: SweepConfig | None = None,
    skews: Sequence[float] = FIG7_SKEW,
    *,
    quick: bool = False,
    scale_factor: float | None = None,
    n_nodes: int | None = None,
) -> SweepSpec:
    """Figure 7's skew sweep as an engine cell grid (see :func:`fig5_sweep`)."""
    config = _resolve_config(config, quick, scale_factor, n_nodes)
    return _figure_spec(
        config,
        "fig7",
        "skew",
        skews,
        "skew",
        "Figure 7: traffic (GB) and communication time (s) vs skewness",
    )


def run_fig5_nodes(
    config: SweepConfig | None = None,
    nodes: Sequence[int] = FIG5_NODES,
) -> ResultTable:
    """Figure 5: vary the number of nodes (zipf = 0.8, skew = 20 %).

    Parameters
    ----------
    config:
        Sweep knobs (paper defaults when omitted).
    nodes:
        Node counts to sweep.

    Returns
    -------
    ResultTable
        One row per node count, traffic and CCT per strategy.  Serial
        engine path; ``ccf sweep fig5 --jobs N`` runs the same grid in
        parallel with caching, bit-identically.
    """
    return run_sweep(fig5_sweep(config, nodes)).table


def run_fig6_zipf(
    config: SweepConfig | None = None,
    zipfs: Sequence[float] = FIG6_ZIPF,
) -> ResultTable:
    """Figure 6: vary the Zipf factor (500 nodes, skew = 20 %).

    Parameters
    ----------
    config:
        Sweep knobs (paper defaults when omitted).
    zipfs:
        Zipf exponents to sweep.

    Returns
    -------
    ResultTable
        One row per Zipf factor, traffic and CCT per strategy.
    """
    return run_sweep(fig6_sweep(config, zipfs)).table


def run_fig7_skew(
    config: SweepConfig | None = None,
    skews: Sequence[float] = FIG7_SKEW,
) -> ResultTable:
    """Figure 7: vary the skewness (500 nodes, zipf = 0.8).

    Parameters
    ----------
    config:
        Sweep knobs (paper defaults when omitted).
    skews:
        Skew fractions to sweep.

    Returns
    -------
    ResultTable
        One row per skew point, traffic and CCT per strategy.
    """
    return run_sweep(fig7_sweep(config, skews)).table
