"""Figures 5, 6 and 7: the paper's three evaluation sweeps.

Each sweep compares Hash / Mini / CCF over the TPC-H-derived workload
(SF 600, ~1 TB, p = 15 n, 128 MB/s ports) and reports the two panels of
each figure: (a) network traffic in GB and (b) network communication time
in seconds.  Defaults reproduce the paper's exact sweep points; pass a
smaller ``scale_factor`` or sweep list for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.framework import CCF, DEFAULT_STRATEGIES
from repro.experiments.tables import ResultTable
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["SweepConfig", "run_fig5_nodes", "run_fig6_zipf", "run_fig7_skew"]

#: Paper sweep points.
FIG5_NODES = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
FIG6_ZIPF = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
FIG7_SKEW = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass
class SweepConfig:
    """Shared knobs of the three sweeps (paper defaults)."""

    scale_factor: float = 600.0
    n_nodes: int = 500
    zipf_s: float = 0.8
    skew: float = 0.2
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    ccf: CCF = field(default_factory=CCF)

    def workload(self, **overrides) -> AnalyticJoinWorkload:
        params = dict(
            n_nodes=self.n_nodes,
            scale_factor=self.scale_factor,
            zipf_s=self.zipf_s,
            skew=self.skew,
        )
        params.update(overrides)
        return AnalyticJoinWorkload(**params)


def _sweep(
    config: SweepConfig,
    axis_name: str,
    axis_values: Sequence,
    override_key: str,
    title: str,
) -> ResultTable:
    cols = [axis_name]
    for s in config.strategies:
        cols += [f"{s}_traffic_gb", f"{s}_cct_s"]
    table = ResultTable(title=title, columns=cols)
    for v in axis_values:
        wl = config.workload(**{override_key: v})
        cmp = config.ccf.compare(wl, strategies=config.strategies)
        row = [v]
        for s in config.strategies:
            row += [cmp.traffic(s) / 1e9, cmp.cct(s)]
        table.add_row(*row)
    return table


def run_fig5_nodes(
    config: SweepConfig | None = None,
    nodes: Sequence[int] = FIG5_NODES,
) -> ResultTable:
    """Figure 5: vary the number of nodes (zipf = 0.8, skew = 20 %)."""
    config = config or SweepConfig()
    return _sweep(
        config,
        "nodes",
        nodes,
        "n_nodes",
        "Figure 5: traffic (GB) and communication time (s) vs number of nodes",
    )


def run_fig6_zipf(
    config: SweepConfig | None = None,
    zipfs: Sequence[float] = FIG6_ZIPF,
) -> ResultTable:
    """Figure 6: vary the Zipf factor (500 nodes, skew = 20 %)."""
    config = config or SweepConfig()
    return _sweep(
        config,
        "zipf",
        zipfs,
        "zipf_s",
        "Figure 6: traffic (GB) and communication time (s) vs Zipf factor",
    )


def run_fig7_skew(
    config: SweepConfig | None = None,
    skews: Sequence[float] = FIG7_SKEW,
) -> ResultTable:
    """Figure 7: vary the skewness (500 nodes, zipf = 0.8)."""
    config = config or SweepConfig()
    return _sweep(
        config,
        "skew",
        skews,
        "skew",
        "Figure 7: traffic (GB) and communication time (s) vs skewness",
    )
