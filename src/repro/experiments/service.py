"""Overload experiment: graceful degradation of the admission policies.

The open-loop service mode (:mod:`repro.service`) promises *graceful
degradation*: past the fabric's capacity an admission policy must trade
work away (shed or defer coflows) to keep the latency of what it admits
within budget, where ``accept-all`` lets the backlog -- and with it p95
CCT -- grow without bound.  This experiment makes that claim a table:
the same seeded arrival stream is played at several offered loads
through each policy, and every cell reports the shed fraction next to
the steady-state p95 against a common SLO budget.

The grid is an ordinary engine sweep (``ccf sweep overload``): cells are
independent pure functions of their parameters, so they parallelize,
cache and resume like any other experiment.

Expected shape (the acceptance demo): at 1.6x capacity ``accept-all``
blows the 60 s budget several times over while ``load-shedding`` and
``slo-guard`` shed 5-25% of arrivals and keep p95 within budget.
"""

from __future__ import annotations

from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable

# NOTE: repro.service is imported lazily inside the cell function --
# repro.service itself uses the experiment engine (derive_seed), and an
# eager import here would close that loop during package init.

__all__ = ["overload_sweep", "run_overload"]

#: The demo's common SLO budget (seconds).  60 s is robust across seeds
#: at the default stream scale: the overloaded accept-all lands at
#: 150-250 s while the shedding policies stay in the 20-50 s range.
DEFAULT_SLO_S = 60.0

#: Offered-load grid: healthy, at the knee, and well past capacity.
DEFAULT_LOADS = (0.7, 1.1, 1.6)

#: Policy order for the table (the paper-style "columns").
DEFAULT_POLICIES = (
    "accept-all",
    "bounded-queue",
    "load-shedding",
    "slo-guard",
)


def _overload_cell(
    *,
    policy: str,
    load: float,
    arrivals: int,
    users: int,
    qps_per_user: float,
    n_ports: int,
    seed: int,
    slo: float,
) -> list:
    """One (policy, load) cell: run the scenario, return a table row.

    Module-level (not a closure) so sweep workers can pickle it.
    """
    from repro.service import ArrivalConfig, ServiceConfig, run_service

    config = ServiceConfig(
        arrival=ArrivalConfig(
            n_ports=n_ports,
            users=users,
            qps_per_user=qps_per_user,
            max_arrivals=arrivals,
            seed=seed,
        ),
        load=load,
        policy=policy,
        slo_p95=slo,
    )
    report, _, _ = run_service(config)
    return [
        policy,
        load,
        report.arrivals,
        report.admitted,
        report.shed,
        round(report.shed_fraction, 4),
        report.deferrals,
        round(report.reported_p95, 3),
        round(report.overall["p99"], 3),
        round(report.backlog_end_s, 3),
        "yes" if report.slo_ok else "NO",
    ]


def overload_sweep(
    *,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    arrivals: int = 400,
    users: int = 20,
    qps_per_user: float = 0.1,
    n_ports: int = 24,
    seed: int = 7,
    slo: float = DEFAULT_SLO_S,
    quick: bool = False,
) -> SweepSpec:
    """The overload grid: loads x policies, one service run per cell.

    Parameters
    ----------
    loads:
        Offered utilizations to play the stream at (> 1 is overload).
    policies:
        Admission policies to compare at every load.
    arrivals, users, qps_per_user, n_ports, seed:
        Stream shape; each cell replays the *same* seeded arrivals, so
        differences down a column are purely the policy's doing.
    slo:
        Common p95 budget the ``slo_ok`` verdict checks.
    quick:
        Shrink to 150 arrivals and the two extreme loads -- the CI
        smoke grid; still covers every policy.

    Returns
    -------
    SweepSpec
        One cell per (load, policy) pair.
    """
    if quick:
        arrivals = 150
        loads = (loads[0], loads[-1]) if len(loads) > 1 else loads
    cells = [
        Cell(
            label=f"load={load:g},policy={policy}",
            params=dict(
                policy=policy,
                load=load,
                arrivals=arrivals,
                users=users,
                qps_per_user=qps_per_user,
                n_ports=n_ports,
                seed=seed,
                slo=slo,
            ),
        )
        for load in loads
        for policy in policies
    ]
    return SweepSpec(
        name="overload",
        fn=_overload_cell,
        cells=cells,
        assemble=rows_to_table(
            "Overload: admission policies vs offered load "
            f"(p95 budget {slo:g} s)",
            [
                "policy",
                "load",
                "arrivals",
                "admitted",
                "shed",
                "shed_frac",
                "deferrals",
                "p95_s",
                "p99_s",
                "backlog_end_s",
                "slo_ok",
            ],
            notes=(
                "every cell replays the same seeded arrival stream; the "
                "port rate is derived so the stream offers 'load' x "
                "fabric capacity (load > 1 = overload)",
                "p95_s is the steady-state (post-warm-up) percentile "
                "when a steady window exists, overall otherwise",
                "graceful degradation: past capacity, shedding policies "
                "keep p95 within budget by trading arrivals away; "
                "accept-all admits everything and lets latency collapse",
            ),
        ),
    )


def run_overload() -> ResultTable:
    """The overload grid at registry defaults, serial (``ccf run``)."""
    return run_sweep(overload_sweep()).table
