"""Exact-MILP vs heuristic: solve-time scaling and optimality gap (§III-B).

The paper justifies Algorithm 1 with one anecdote: Gurobi needs more than
half an hour for a single join at n = 500, p = 7500.  This experiment
reproduces the *scaling behaviour* with the HiGHS solver on a ladder of
instance sizes, and additionally measures how far the heuristic's ``T``
is from the proven optimum -- a quantity the paper does not report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.exact import ccf_exact
from repro.core.heuristic import ccf_heuristic
from repro.core.relax import ccf_lp_rounding
from repro.experiments.tables import ResultTable
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["run_solver_scaling", "DEFAULT_SIZES"]

#: (n_nodes, partitions) ladder; p = 15 n as in the paper.
DEFAULT_SIZES: tuple[tuple[int, int], ...] = (
    (4, 60),
    (6, 90),
    (8, 120),
    (10, 150),
    (12, 180),
)


@dataclass
class SolverPoint:
    """One ladder point of the scaling study."""

    n_nodes: int
    partitions: int
    exact_seconds: float
    heuristic_seconds: float
    optimal_t: float
    heuristic_t: float

    @property
    def gap_percent(self) -> float:
        """Relative gap of the heuristic over the proven optimum."""
        if self.optimal_t == 0:
            return 0.0
        return 100.0 * (self.heuristic_t - self.optimal_t) / self.optimal_t


def run_solver_scaling(
    sizes: Sequence[tuple[int, int]] = DEFAULT_SIZES,
    *,
    scale_factor: float = 0.01,
    zipf_s: float = 0.8,
    skew: float = 0.2,
    time_limit: float | None = 120.0,
) -> ResultTable:
    """Solve the same instances exactly and heuristically; tabulate both.

    ``scale_factor`` is kept tiny: the MILP's difficulty depends on the
    instance *structure* (n x p binary variables), not on the byte
    magnitudes.

    Parameters
    ----------
    sizes:
        Swept ``(n_nodes, partitions)`` instance shapes.
    scale_factor, zipf_s, skew:
        Workload knobs shared by every instance.
    time_limit:
        Per-instance wall-clock budget for the exact MILP; ``None``
        means unbounded.

    Returns
    -------
    ResultTable
        One row per instance: solve times and achieved ``T`` for the
        exact MILP, LP rounding and Algorithm 1, plus the heuristic's
        optimality gap.
    """
    table = ResultTable(
        title="Exact MILP (HiGHS) vs LP rounding vs Algorithm 1",
        columns=[
            "nodes",
            "partitions",
            "exact_s",
            "lp_s",
            "heuristic_s",
            "optimal_T_mb",
            "lp_bound_T_mb",
            "heuristic_T_mb",
            "gap_%",
        ],
    )
    for n, p in sizes:
        wl = AnalyticJoinWorkload(
            n_nodes=n,
            partitions=p,
            scale_factor=scale_factor,
            zipf_s=zipf_s,
            skew=skew,
        )
        model = wl.shuffle_model(skew_handling=True)
        exact = ccf_exact(model, time_limit=time_limit)
        lp = ccf_lp_rounding(model)
        start = time.perf_counter()
        dest = ccf_heuristic(model)
        heur_seconds = time.perf_counter() - start
        heur_t = model.evaluate(dest).bottleneck_bytes
        point = SolverPoint(
            n_nodes=n,
            partitions=p,
            exact_seconds=exact.solve_seconds,
            heuristic_seconds=heur_seconds,
            optimal_t=model.evaluate(exact.dest).bottleneck_bytes,
            heuristic_t=heur_t,
        )
        table.add_row(
            n,
            p,
            point.exact_seconds,
            lp.solve_seconds,
            point.heuristic_seconds,
            point.optimal_t / 1e6,
            lp.lp_lower_bound / 1e6,
            point.heuristic_t / 1e6,
            point.gap_percent,
        )
    table.add_note(
        "paper: Gurobi exceeds 30 min at n=500, p=7500; Algorithm 1 replaces it"
    )
    return table
