"""Reproduction at a glance: the paper's headline numbers in one second.

Combines the exact motivating-example numbers with the closed-form
predictor (validated against the planner in the test suite) to print the
paper's headline speedup bands at full SF-600 scale without running any
planner -- the instant sanity check behind ``ccf summary``.
"""

from __future__ import annotations

from repro.core.predictor import predict_ccts
from repro.experiments.motivating import MotivatingExample
from repro.experiments.tables import ResultTable
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["run_summary"]


def run_summary(*, scale_factor: float = 600.0) -> ResultTable:
    """One table: every headline claim, paper value vs this build.

    Parameters
    ----------
    scale_factor:
        TPC-H scale for the closed-form figure-5/6/7 headline rows
        (600.0 is the paper's full scale).

    Returns
    -------
    ResultTable
        One row per headline claim, with the paper's published value
        next to the value this build computes.
    """
    table = ResultTable(
        title="Reproduction at a glance (closed form, full paper scale)",
        columns=["headline", "paper", "this build"],
    )

    ex = MotivatingExample.build()
    table.add_row(
        "Fig.1 traffic of hash / suboptimal / minimal plans",
        "8 / 7 / 6 tuples",
        f"{ex.traffic(ex.sp0_hash):.0f} / {ex.traffic(ex.sp1_suboptimal):.0f} "
        f"/ {ex.traffic(ex.sp2_traffic_optimal):.0f} tuples",
    )
    table.add_row(
        "Fig.2 CCT of minimal-traffic plan (worst / optimal)",
        "6 / 4 units",
        f"{ex.simulated_cct(ex.sp2_traffic_optimal, 'sequential'):.0f} / "
        f"{ex.optimal_cct(ex.sp2_traffic_optimal):.0f} units",
    )
    table.add_row(
        "Fig.2 CCT of the co-optimized plan",
        "3 units",
        f"{ex.optimal_cct(ex.ccf_dest):.0f} units",
    )

    # Fig. 5 band over the node sweep.
    preds = [
        predict_ccts(AnalyticJoinWorkload(n_nodes=n, scale_factor=scale_factor))
        for n in (100, 1000)
    ]
    vs_mini = [p.speedup_over_mini for p in preds]
    vs_hash = [p.speedup_over_hash for p in preds]
    table.add_row(
        "Fig.5 CCF speedup over Mini (100 -> 1000 nodes)",
        "8.1 - 15.2x",
        f"{min(vs_mini):.1f} - {max(vs_mini):.1f}x",
    )
    table.add_row(
        "Fig.5 CCF speedup over Hash",
        "2.1 - 3.7x",
        f"{min(vs_hash):.1f} - {max(vs_hash):.1f}x",
    )

    # Fig. 6 extremes at 500 nodes.
    uniform = predict_ccts(
        AnalyticJoinWorkload(n_nodes=500, scale_factor=scale_factor, zipf_s=0.0)
    )
    table.add_row(
        "Fig.6 speedup over Mini at zipf = 0 (most uniform)",
        "up to 395x",
        f"{uniform.speedup_over_mini:.0f}x",
    )

    # Fig. 7 constants.
    skew0 = predict_ccts(
        AnalyticJoinWorkload(n_nodes=500, scale_factor=scale_factor, skew=0.0)
    )
    table.add_row(
        "Fig.7 CCF advantage over Hash at zero skew",
        "~50 s",
        f"{skew0.hash_cct - skew0.ccf_cct:.0f} s",
    )
    sweep = [
        predict_ccts(
            AnalyticJoinWorkload(
                n_nodes=500, scale_factor=scale_factor, skew=s
            )
        ).speedup_over_mini
        for s in (0.0, 0.25, 0.5)
    ]
    table.add_row(
        "Fig.7 speedup over Mini across the skew sweep",
        "~12.8x constant",
        f"{min(sweep):.1f} - {max(sweep):.1f}x",
    )
    table.add_note(
        "bands from the closed-form predictor (validated against the "
        "planner within a few percent); `ccf verify` re-derives them from "
        "actual plans"
    )
    return table
