"""Experiment registry: one entry per paper artifact.

Two registries live here:

* :data:`EXPERIMENTS` -- name -> zero-argument runner returning a
  :class:`ResultTable` (the ``ccf run`` surface; always serial).
* :data:`SWEEPS` -- the subset whose grids are declared as engine cell
  lists; :func:`build_sweep` turns a name plus CLI-style overrides into
  a :class:`~repro.experiments.engine.SweepSpec` for ``ccf sweep``.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablation import (
    heuristic_ablation_sweep,
    run_heuristic_ablation,
    run_scheduler_ablation,
    scheduler_ablation_sweep,
)
from repro.experiments.chaoscampaign import campaign_sweep, run_chaos
from repro.experiments.crossover import crossover_sweep, run_broadcast_crossover
from repro.experiments.dagrecovery import run_dag_recovery
from repro.experiments.engine import SweepSpec
from repro.experiments.extensions import (
    run_online_vs_oblivious,
    run_topology_sweep,
    run_trace_schedulers,
)
from repro.experiments.figures import (
    fig5_sweep,
    fig6_sweep,
    fig7_sweep,
    run_fig5_nodes,
    run_fig6_zipf,
    run_fig7_skew,
)
from repro.experiments.motivating import run_motivating
from repro.experiments.psweep import psweep_sweep, run_partition_sweep
from repro.experiments.querybench import queries_sweep, run_query_suite
from repro.experiments.service import overload_sweep, run_overload
from repro.experiments.robustness import (
    recovery_sweep,
    robustness_sweep,
    run_failure_recovery,
    run_robustness,
)
from repro.experiments.solver import run_solver_scaling
from repro.experiments.summary import run_summary
from repro.experiments.tables import ResultTable
from repro.experiments.tournament import run_tournament, tournament_sweep
from repro.experiments.validation import run_model_validation

__all__ = ["EXPERIMENTS", "SWEEPS", "build_sweep", "run_experiment"]

#: Name -> zero-argument runner returning a ResultTable.
EXPERIMENTS: dict[str, Callable[[], ResultTable]] = {
    "motivating": run_motivating,
    "fig5": run_fig5_nodes,
    "fig6": run_fig6_zipf,
    "fig7": run_fig7_skew,
    "solver": run_solver_scaling,
    "ablation-sched": run_scheduler_ablation,
    "ablation-heuristic": run_heuristic_ablation,
    "trace": run_trace_schedulers,
    "online": run_online_vs_oblivious,
    "topology": run_topology_sweep,
    "queries": run_query_suite,
    "robustness": run_robustness,
    "recovery": run_failure_recovery,
    "dag-recovery": run_dag_recovery,
    "validation": run_model_validation,
    "crossover": run_broadcast_crossover,
    "psweep": run_partition_sweep,
    "chaos": run_chaos,
    "overload": run_overload,
    "tournament": run_tournament,
    "summary": run_summary,
}


#: Name -> keyword-only SweepSpec factory accepting at least ``quick``.
#: Keys are a subset of :data:`EXPERIMENTS`: the grid-shaped experiments
#: whose cells are independent and engine-runnable.
SWEEPS: dict[str, Callable[..., SweepSpec]] = {
    "fig5": fig5_sweep,
    "fig6": fig6_sweep,
    "fig7": fig7_sweep,
    "ablation-sched": scheduler_ablation_sweep,
    "ablation-heuristic": heuristic_ablation_sweep,
    "queries": queries_sweep,
    "robustness": robustness_sweep,
    "recovery": recovery_sweep,
    "crossover": crossover_sweep,
    "psweep": psweep_sweep,
    "chaos": campaign_sweep,
    "overload": overload_sweep,
    "tournament": tournament_sweep,
}

#: Sweeps accepting the figure-style --scale-factor / --nodes overrides.
_FIGURE_SWEEPS = frozenset({"fig5", "fig6", "fig7"})


def run_experiment(name: str) -> ResultTable:
    """Run one registered experiment with paper defaults.

    Parameters
    ----------
    name:
        A key of :data:`EXPERIMENTS`.

    Returns
    -------
    ResultTable
        The experiment's table at paper defaults.

    Raises
    ------
    ValueError
        If ``name`` is not registered.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner()


def build_sweep(
    name: str,
    *,
    quick: bool = False,
    scale_factor: float | None = None,
    n_nodes: int | None = None,
) -> SweepSpec:
    """Build the cell grid of one sweep-capable experiment.

    Parameters
    ----------
    name:
        A key of :data:`SWEEPS`.
    quick:
        Use the experiment's reduced smoke-test grid.
    scale_factor, n_nodes:
        Workload overrides; only the figure sweeps (fig5/fig6/fig7)
        accept them.

    Returns
    -------
    SweepSpec
        The grid, ready for :func:`repro.experiments.engine.run_sweep`.

    Raises
    ------
    ValueError
        If ``name`` is not sweep-capable, or a figure-only override is
        passed to a non-figure sweep.
    """
    try:
        factory = SWEEPS[name]
    except KeyError:
        raise ValueError(
            f"experiment {name!r} is not sweep-capable; "
            f"choose from {sorted(SWEEPS)}"
        ) from None
    if name in _FIGURE_SWEEPS:
        return factory(quick=quick, scale_factor=scale_factor, n_nodes=n_nodes)
    if scale_factor is not None or n_nodes is not None:
        raise ValueError(
            f"--scale-factor/--nodes only apply to figure sweeps "
            f"({sorted(_FIGURE_SWEEPS)}), not {name!r}"
        )
    return factory(quick=quick)
