"""Experiment registry: one entry per paper artifact."""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablation import run_heuristic_ablation, run_scheduler_ablation
from repro.experiments.crossover import run_broadcast_crossover
from repro.experiments.dagrecovery import run_dag_recovery
from repro.experiments.extensions import (
    run_online_vs_oblivious,
    run_topology_sweep,
    run_trace_schedulers,
)
from repro.experiments.figures import run_fig5_nodes, run_fig6_zipf, run_fig7_skew
from repro.experiments.motivating import run_motivating
from repro.experiments.psweep import run_partition_sweep
from repro.experiments.querybench import run_query_suite
from repro.experiments.robustness import run_failure_recovery, run_robustness
from repro.experiments.solver import run_solver_scaling
from repro.experiments.summary import run_summary
from repro.experiments.tables import ResultTable
from repro.experiments.validation import run_model_validation

__all__ = ["EXPERIMENTS", "run_experiment"]

#: Name -> zero-argument runner returning a ResultTable.
EXPERIMENTS: dict[str, Callable[[], ResultTable]] = {
    "motivating": run_motivating,
    "fig5": run_fig5_nodes,
    "fig6": run_fig6_zipf,
    "fig7": run_fig7_skew,
    "solver": run_solver_scaling,
    "ablation-sched": run_scheduler_ablation,
    "ablation-heuristic": run_heuristic_ablation,
    "trace": run_trace_schedulers,
    "online": run_online_vs_oblivious,
    "topology": run_topology_sweep,
    "queries": run_query_suite,
    "robustness": run_robustness,
    "recovery": run_failure_recovery,
    "dag-recovery": run_dag_recovery,
    "validation": run_model_validation,
    "crossover": run_broadcast_crossover,
    "psweep": run_partition_sweep,
    "summary": run_summary,
}


def run_experiment(name: str) -> ResultTable:
    """Run one registered experiment with paper defaults."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner()
