"""Hot-path benchmark harness for the coflow simulator (``ccf bench``).

Times the simulator's vectorized epoch loop (``incremental=True``, the
default) against the original per-flow/per-mask reference path
(``incremental=False``) on the canonical 50-port x 200-coflow mix, and
verifies on every run that the two produce **bit-identical**
``SimulationResult``s -- same CCT floats, same epoch counts, same failure
logs -- across the tier-1 scenarios (plain, chaos, noise, on_abort).

The emitted ``BENCH_simulator.json`` has five sections:

``cases``
    End-to-end epoch throughput (epochs/sec) per scheduler x scenario,
    reference vs incremental, with the bit-identity verdict.
``fleet``
    Large-fleet service-mode cases (10^4+ flows through ``run_service``
    under overload with a bounded-queue admission policy) timing the
    event-horizon path (``batch_events=True``) against the plain epoch
    loop (``batch_events=False``); both sides run the incremental
    kernels, so the ratio isolates the rate-reuse win.  Bit-identity is
    checked the same way as ``cases``.
``scaling``
    Wall time against problem size (n_coflows, and the resulting
    n_flows) for one scheduler, showing how the two paths scale.
``micro``
    Component microbenchmarks of the three rewritten hot spots --
    noise-view construction, per-coflow aggregation, and the admission
    queue -- timed in isolation.  These are where the epoch loop spent
    its redundant work; the end-to-end ratio is smaller because the
    bit-identity constraint pins the waterfill's sequential arithmetic,
    which both paths must execute step for step.
``summary``
    Aggregates used by the CI regression gate.

The harness is deliberately deterministic (fixed workload seeds, fixed
chaos schedule, fixed noise seed) so that two runs on the same machine
differ only by timer noise; ``check_regression`` compares each case's
reference/incremental speedup against a committed baseline with a
configurable tolerance (the ratio cancels machine-speed drift that
absolute epochs/sec cannot).
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.noise import NoisyEstimates
from repro.core.resilience import Backoff
from repro.network import CoflowSimulator, Fabric
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.events import FlowGroups
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.service.arrivals import ArrivalConfig, ArrivalStream
from repro.service.loop import ServiceConfig, run_service
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix

__all__ = [
    "CaseSpec",
    "FleetSpec",
    "default_cases",
    "fleet_cases",
    "run_case",
    "run_fleet_case",
    "run_micro",
    "run_bench",
    "check_regression",
]

SCENARIOS = ("plain", "chaos", "noise", "on_abort")

#: Canonical benchmark mix (the ISSUE's 50-node x 200-coflow target).
FULL_MIX = dict(n_ports=50, n_coflows=200, arrival_rate=40.0, seed=1)

#: Small mix used by ``--quick`` (CI smoke) -- its case keys are a
#: subset of the full baseline's, so quick runs can be checked against
#: the committed full JSON.
QUICK_MIX = dict(n_ports=20, n_coflows=60, arrival_rate=8.0, seed=3)


@dataclass(frozen=True)
class CaseSpec:
    """One benchmark case: a scheduler on a scenario on a mix."""

    scheduler: str
    scenario: str
    n_ports: int
    n_coflows: int
    arrival_rate: float
    seed: int

    @property
    def key(self) -> str:
        return (
            f"{self.scheduler}/{self.scenario}/"
            f"p{self.n_ports}c{self.n_coflows}"
            f"a{self.arrival_rate:g}s{self.seed}"
        )


def default_cases(*, quick: bool = False) -> list[CaseSpec]:
    """The benchmark matrix.

    Quick mode runs the small mix only (two schedulers, two scenarios);
    the full run covers four schedulers x four scenarios on the
    canonical mix *plus* every quick case, so the quick keys always
    exist in a full baseline.
    """
    quick_cases = [
        CaseSpec(s, sc, **QUICK_MIX)
        for s in ("sebf", "fair")
        for sc in ("plain", "noise")
    ]
    if quick:
        return quick_cases
    full_cases = [
        CaseSpec(s, sc, **FULL_MIX)
        for s in ("sebf", "dclas", "fair", "wss")
        for sc in SCENARIOS
    ]
    return quick_cases + full_cases


def _mix(spec: CaseSpec) -> list[Coflow]:
    cfg = CoflowMixConfig(
        n_ports=spec.n_ports,
        n_coflows=spec.n_coflows,
        arrival_rate=spec.arrival_rate,
        seed=spec.seed,
    )
    return generate_coflow_mix(cfg)


def _chaos() -> FabricDynamics:
    """Fixed failure/recovery schedule (ports exist in every mix used)."""
    return FabricDynamics(
        [
            RateEvent.failure(2.0e7, 3),
            RateEvent.recovery(5.0e7, 3, egress=1.0, ingress=1.0),
            RateEvent.failure(8.0e7, 11),
            RateEvent.recovery(1.1e8, 11, egress=1.0, ingress=1.0),
            RateEvent.failure(1.4e8, 7),
            RateEvent.recovery(1.7e8, 7, egress=1.0, ingress=1.0),
        ]
    )


def _retry_factory(base: int) -> Callable[[int, float], list[Coflow]]:
    """Deterministic ``on_abort`` callback: resubmit at half volume."""
    originals: dict[int, Coflow] = {}

    def remember(coflows: Sequence[Coflow]) -> None:
        for c in coflows:
            originals[c.coflow_id] = c

    def resubmit(cid: int, now: float) -> list[Coflow]:
        orig = originals.get(cid)
        if orig is None or cid >= base:  # don't retry a retry
            return []
        clone = Coflow(
            flows=[
                Flow(f.src, f.dst, f.volume * 0.5) for f in orig.flows
            ],
            arrival_time=now,
            coflow_id=base + cid,
            name=f"retry-{cid}",
        )
        originals[clone.coflow_id] = clone
        return [clone]

    resubmit.remember = remember  # type: ignore[attr-defined]
    return resubmit


def _build(spec: CaseSpec, *, incremental: bool):
    """Simulator + run kwargs for one case (fresh state every call)."""
    coflows = _mix(spec)
    kwargs: dict = {}
    sim_kwargs: dict = {"incremental": incremental}
    if spec.scenario == "chaos":
        sim_kwargs["dynamics"] = _chaos()
        sim_kwargs["recovery"] = "retry"
    elif spec.scenario == "noise":
        sim_kwargs["estimate_noise"] = NoisyEstimates(
            sigma=0.3, censor_fraction=0.1, seed=7
        )
    elif spec.scenario == "on_abort":
        sim_kwargs["dynamics"] = _chaos()
        sim_kwargs["recovery"] = "abort"
        cb = _retry_factory(base=1_000_000)
        cb.remember(coflows)  # type: ignore[attr-defined]
        kwargs["on_abort"] = cb
    fabric = Fabric(n_ports=spec.n_ports, rate=1.0)
    sim = CoflowSimulator(
        fabric, make_scheduler(spec.scheduler), **sim_kwargs
    )
    return sim, coflows, kwargs


def _fingerprint(result) -> dict:
    """Everything that must match bit-for-bit between the two paths."""
    return {
        "ccts": dict(sorted(result.ccts.items())),
        "completion_times": dict(sorted(result.completion_times.items())),
        "n_epochs": result.n_epochs,
        "failed_coflows": sorted(result.failed_coflows),
        "failures": [
            (r.kind, r.time, r.flows) for r in result.failures
        ],
    }


def run_case(spec: CaseSpec, *, repeats: int = 1) -> dict:
    """Time both paths on one case; best-of-``repeats`` wall time."""
    out: dict = {
        "scheduler": spec.scheduler,
        "scenario": spec.scenario,
        "n_ports": spec.n_ports,
        "n_coflows": spec.n_coflows,
        "arrival_rate": spec.arrival_rate,
        "seed": spec.seed,
    }
    prints: dict[str, dict] = {}
    for label, incremental in (("ref", False), ("inc", True)):
        best = math.inf
        result = None
        for _ in range(max(1, repeats)):
            sim, coflows, kwargs = _build(spec, incremental=incremental)
            t0 = time.perf_counter()
            result = sim.run(coflows, **kwargs)
            best = min(best, time.perf_counter() - t0)
        prints[label] = _fingerprint(result)
        out[label] = {
            "wall_s": round(best, 4),
            "epochs_per_sec": round(result.n_epochs / best, 2),
        }
    out["n_flows"] = int(
        sum(len(c.flows) for c in _mix(spec))
    )
    out["n_epochs"] = prints["inc"]["n_epochs"]
    out["bit_identical"] = prints["ref"] == prints["inc"]
    out["speedup"] = round(
        out["ref"]["wall_s"] / out["inc"]["wall_s"], 3
    )
    return out


# ---------------------------------------------------------------------------
# Large-fleet service-mode cases (event-horizon batching)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetSpec:
    """One large-fleet service case: an overloaded ``run_service`` run.

    The recipe that makes these cases meaningful: a fast-sharing
    discipline whose allocation stays valid between fleet changes
    (``fair``), a ``bounded-queue`` admission policy with a watermark
    well below the backlog the overload builds, and a fast-cadence
    retry backoff, so most epochs are deferral re-polls on an unchanged
    fleet -- exactly the epochs the event-horizon cache elides.
    """

    scheduler: str
    size_mix: str
    n_ports: int
    users: int
    max_arrivals: int
    load: float
    watermark_s: float
    queue_limit: int
    seed: int

    @property
    def key(self) -> str:
        return (
            f"fleet/{self.scheduler}/{self.size_mix}/"
            f"p{self.n_ports}u{self.users}a{self.max_arrivals}"
            f"l{self.load:g}w{self.watermark_s:g}"
            f"q{self.queue_limit}s{self.seed}"
        )


#: Deferral retry cadence for every fleet case: many cheap re-polls
#: (the workload the horizon cache targets) instead of the policy's
#: default patient exponential backoff.
_FLEET_BACKOFF = dict(
    max_attempts=60,
    base_delay=0.1,
    multiplier=1.2,
    max_delay=1.0,
    jitter=0.1,
)


def fleet_cases(*, quick: bool = False) -> list[FleetSpec]:
    """The large-fleet matrix (10^4+ offered flows per full case).

    As with :func:`default_cases`, the quick (CI smoke) case is also
    part of the full set so its key exists in a full baseline.
    """
    quick_cases = [
        FleetSpec(
            "fair", "facebook", n_ports=32, users=40, max_arrivals=260,
            load=1.8, watermark_s=30.0, queue_limit=256, seed=11,
        )
    ]
    if quick:
        return quick_cases
    full_cases = [
        FleetSpec(
            "fair", "facebook", n_ports=96, users=80, max_arrivals=1000,
            load=1.8, watermark_s=90.0, queue_limit=1024, seed=7,
        ),
        FleetSpec(
            "fair", "facebook", n_ports=64, users=60, max_arrivals=1200,
            load=2.0, watermark_s=45.0, queue_limit=1024, seed=5,
        ),
        FleetSpec(
            "fair", "facebook", n_ports=128, users=110, max_arrivals=1300,
            load=1.9, watermark_s=75.0, queue_limit=1024, seed=17,
        ),
        FleetSpec(
            "fair", "zipf", n_ports=96, users=90, max_arrivals=1300,
            load=2.0, watermark_s=75.0, queue_limit=2048, seed=3,
        ),
        # Deep-deferral regime: the watermark is far below the backlog
        # the overload builds, so admission re-polls dominate the epoch
        # count and rate reuse pays off most.
        FleetSpec(
            "fair", "facebook", n_ports=80, users=70, max_arrivals=1400,
            load=2.1, watermark_s=35.0, queue_limit=1024, seed=13,
        ),
        FleetSpec(
            "fair", "facebook", n_ports=64, users=64, max_arrivals=1500,
            load=2.2, watermark_s=30.0, queue_limit=1536, seed=23,
        ),
    ]
    return quick_cases + full_cases


def _fleet_config(spec: FleetSpec, *, batch_events: bool) -> ServiceConfig:
    return ServiceConfig(
        arrival=ArrivalConfig(
            n_ports=spec.n_ports,
            users=spec.users,
            max_arrivals=spec.max_arrivals,
            seed=spec.seed,
            size_mix=spec.size_mix,
        ),
        load=spec.load,
        scheduler=spec.scheduler,
        policy="bounded-queue",
        policy_params={
            "watermark_s": spec.watermark_s,
            "queue_limit": spec.queue_limit,
            "backoff": Backoff(**_FLEET_BACKOFF),
        },
        batch_events=batch_events,
    )


def run_fleet_case(spec: FleetSpec, *, repeats: int = 1) -> dict:
    """Time ``batch_events`` on vs off on one fleet case.

    Both sides run the incremental kernels (the PR 3 path); the ratio
    therefore isolates the event-horizon rate reuse.  ``n_flows`` counts
    the *offered* flows of the arrival stream -- admission sheds some of
    them, identically on both sides.
    """
    out: dict = {
        "scheduler": spec.scheduler,
        "size_mix": spec.size_mix,
        "n_ports": spec.n_ports,
        "users": spec.users,
        "max_arrivals": spec.max_arrivals,
        "load": spec.load,
        "watermark_s": spec.watermark_s,
        "queue_limit": spec.queue_limit,
        "seed": spec.seed,
    }
    arrival = _fleet_config(spec, batch_events=True).arrival
    out["n_flows"] = int(sum(len(c) for c in ArrivalStream(arrival)))
    prints: dict[str, dict] = {}
    for label, batch in (("ref", False), ("inc", True)):
        best = math.inf
        result = None
        report = None
        for _ in range(max(1, repeats)):
            config = _fleet_config(spec, batch_events=batch)
            t0 = time.perf_counter()
            report, result, _controller = run_service(config)
            best = min(best, time.perf_counter() - t0)
        prints[label] = _fingerprint(result)
        out[label] = {
            "wall_s": round(best, 4),
            "epochs_per_sec": round(result.n_epochs / best, 2),
        }
    out["n_epochs"] = prints["inc"]["n_epochs"]
    out["completed"] = report.completed
    out["shed"] = report.shed
    out["deferrals"] = report.deferrals
    out["bit_identical"] = prints["ref"] == prints["inc"]
    out["speedup"] = round(out["ref"]["wall_s"] / out["inc"]["wall_s"], 3)
    return out


# ---------------------------------------------------------------------------
# Component microbenchmarks
# ---------------------------------------------------------------------------


def _micro_noise_view(n_flows: int = 2000, loops: int = 200) -> dict:
    """Noise-view build: per-flow memoized loop vs factor-column multiply."""
    rng = np.random.default_rng(0)
    cids = rng.integers(0, 200, size=n_flows)
    srcs = rng.integers(0, 50, size=n_flows)
    dsts = rng.integers(0, 50, size=n_flows)
    remaining = rng.uniform(1e6, 1e8, size=n_flows)
    noise = NoisyEstimates(sigma=0.3, censor_fraction=0.1, seed=7)
    memo = {
        (int(c), int(s), int(d)): noise.flow_factor(int(c), int(s), int(d))
        for c, s, d in zip(cids, srcs, dsts)
    }
    keys = list(zip(cids.tolist(), srcs.tolist(), dsts.tolist()))

    t0 = time.perf_counter()
    for _ in range(loops):
        np.array([memo[k] for k in keys]) * remaining
    ref = (time.perf_counter() - t0) / loops

    column = np.array([memo[k] for k in keys])
    t0 = time.perf_counter()
    for _ in range(loops):
        remaining * column
    inc = (time.perf_counter() - t0) / loops
    return {
        "what": "scheduler_view noise factors, per epoch "
        f"({n_flows} flows)",
        "ref_us": round(ref * 1e6, 2),
        "inc_us": round(inc * 1e6, 2),
        "speedup": round(ref / inc, 1),
    }


def _micro_aggregates(
    n_flows: int = 2000, n_coflows: int = 200, loops: int = 200
) -> dict:
    """Per-coflow volume sums: boolean-mask scans vs FlowGroups."""
    rng = np.random.default_rng(0)
    cids = np.sort(rng.integers(0, n_coflows, size=n_flows))
    remaining = rng.uniform(1e6, 1e8, size=n_flows)
    unique = np.unique(cids)

    t0 = time.perf_counter()
    for _ in range(loops):
        [float(remaining[cids == c].sum()) for c in unique]
    ref = (time.perf_counter() - t0) / loops

    groups = FlowGroups(cids)
    t0 = time.perf_counter()
    for _ in range(loops):
        groups.value_sums(remaining)
    inc = (time.perf_counter() - t0) / loops
    return {
        "what": "per-coflow remaining-volume sums, per epoch "
        f"({n_coflows} coflows x {n_flows} flows)",
        "ref_us": round(ref * 1e6, 2),
        "inc_us": round(inc * 1e6, 2),
        "speedup": round(ref / inc, 1),
    }


def _micro_bottlenecks(
    n_flows: int = 2000, n_coflows: int = 200, n_ports: int = 50,
    loops: int = 100,
) -> dict:
    """SEBF priority keys: per-coflow masked bincounts vs one keyed bincount."""
    rng = np.random.default_rng(0)
    cids = np.sort(rng.integers(0, n_coflows, size=n_flows))
    srcs = rng.integers(0, n_ports, size=n_flows)
    dsts = rng.integers(0, n_ports, size=n_flows)
    remaining = rng.uniform(1e6, 1e8, size=n_flows)
    unique = np.unique(cids)

    def ref_keys() -> list[float]:
        out = []
        for c in unique:
            mask = cids == c
            send = np.bincount(
                srcs[mask], weights=remaining[mask], minlength=n_ports
            )
            recv = np.bincount(
                dsts[mask], weights=remaining[mask], minlength=n_ports
            )
            out.append(float(max(send.max(), recv.max())))
        return out

    groups = FlowGroups(cids)

    def inc_keys() -> list[float]:
        k = groups.n_groups
        cell = groups.inverse * n_ports
        send = np.bincount(
            cell + srcs, weights=remaining, minlength=k * n_ports
        ).reshape(k, n_ports)
        recv = np.bincount(
            cell + dsts, weights=remaining, minlength=k * n_ports
        ).reshape(k, n_ports)
        return np.maximum(send.max(axis=1), recv.max(axis=1)).tolist()

    assert ref_keys() == inc_keys()
    t0 = time.perf_counter()
    for _ in range(loops):
        ref_keys()
    ref = (time.perf_counter() - t0) / loops
    t0 = time.perf_counter()
    for _ in range(loops):
        inc_keys()
    inc = (time.perf_counter() - t0) / loops
    return {
        "what": "per-coflow bottleneck loads (scheduler priority keys), "
        f"per epoch ({n_coflows} coflows x {n_flows} flows)",
        "ref_us": round(ref * 1e6, 2),
        "inc_us": round(inc * 1e6, 2),
        "speedup": round(ref / inc, 1),
    }


def run_micro() -> dict:
    return {
        "noise_view": _micro_noise_view(),
        "coflow_aggregates": _micro_aggregates(),
        "coflow_bottlenecks": _micro_bottlenecks(),
    }


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


def _scaling(repeats: int = 1) -> list[dict]:
    """Wall time against mix size (sebf, plain scenario)."""
    rows = []
    for n_coflows in (50, 100, 200):
        spec = CaseSpec(
            "sebf", "plain",
            n_ports=50, n_coflows=n_coflows, arrival_rate=40.0, seed=1,
        )
        case = run_case(spec, repeats=repeats)
        rows.append(
            {
                "n_coflows": n_coflows,
                "n_flows": case["n_flows"],
                "n_epochs": case["n_epochs"],
                "ref_wall_s": case["ref"]["wall_s"],
                "inc_wall_s": case["inc"]["wall_s"],
                "speedup": case["speedup"],
            }
        )
    return rows


def _geomean(values: Sequence[float]) -> float:
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


def run_bench(
    *,
    quick: bool = False,
    repeats: int = 1,
    with_scaling: bool | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the full harness and return the BENCH_simulator.json payload."""
    say = progress or (lambda _msg: None)
    cases: dict[str, dict] = {}
    for spec in default_cases(quick=quick):
        say(f"case {spec.key} ...")
        cases[spec.key] = run_case(spec, repeats=repeats)
    fleet: dict[str, dict] = {}
    for fspec in fleet_cases(quick=quick):
        say(f"case {fspec.key} ...")
        # Fleet runs last tens of seconds each, so timer noise is a
        # rounding error; best-of-1 keeps the full bench's wall time
        # bounded.
        fleet[fspec.key] = run_fleet_case(fspec, repeats=1)
    say("microbenchmarks ...")
    micro = run_micro()
    scaling: list[dict] = []
    if with_scaling is None:
        with_scaling = not quick
    if with_scaling:
        say("size scaling ...")
        scaling = _scaling(repeats=repeats)
    from repro.obs.header import repro_header

    speedups = [c["speedup"] for c in cases.values()]
    fleet_speedups = [c["speedup"] for c in fleet.values()]
    payload = {
        "schema": 1,
        "generated_by": "ccf bench" + (" --quick" if quick else ""),
        "repro": repro_header(),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {"quick": quick, "repeats": repeats},
        "cases": cases,
        "fleet": fleet,
        "scaling": scaling,
        "micro": micro,
        "summary": {
            "n_cases": len(cases),
            "n_fleet_cases": len(fleet),
            "all_bit_identical": all(
                c["bit_identical"]
                for c in (*cases.values(), *fleet.values())
            ),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "geomean_speedup": round(_geomean(speedups), 3),
            "fleet_geomean_speedup": round(
                _geomean(fleet_speedups), 3
            ),
            "micro_min_speedup": min(
                m["speedup"] for m in micro.values()
            ),
        },
    }
    return payload


def check_regression(
    current: dict, baseline: dict, *, tolerance: float = 0.3
) -> list[str]:
    """Compare each case's hot-path speedup against a baseline.

    Returns a list of human-readable problems (empty = gate passes).
    Absolute epochs/sec tracks the machine's clock as much as the code
    (a loaded CI runner measures 30%+ below an idle one on identical
    trees), so the gate compares the reference/incremental *speedup*
    instead: both paths are timed seconds apart in the same process, so
    machine-speed drift cancels while a slowdown of the vectorized path
    alone still shows.  A case regresses when its speedup falls more
    than ``tolerance`` (fraction) below the baseline's for the same
    key; a broken bit-identity verdict is always a failure.
    """
    problems: list[str] = []
    for section in ("cases", "fleet"):
        base_cases = baseline.get(section, {})
        for key, case in current.get(section, {}).items():
            if not case.get("bit_identical", False):
                problems.append(
                    f"{key}: reference/incremental results differ"
                )
            base = base_cases.get(key)
            if base is None:
                continue
            cur_speedup = case["speedup"]
            base_speedup = base["speedup"]
            if cur_speedup < base_speedup * (1.0 - tolerance):
                problems.append(
                    f"{key}: speedup {cur_speedup:.2f}x is more than "
                    f"{tolerance:.0%} below baseline "
                    f"{base_speedup:.2f}x "
                    f"({case['inc']['epochs_per_sec']:.1f} epochs/s now "
                    f"vs {base['inc']['epochs_per_sec']:.1f} recorded)"
                )
    return problems


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
