"""Partition-granularity sweep: why the paper sets p = 15 n.

The number of hash partitions ``p`` is the co-optimizer's control
resolution: with ``p = n`` each node gets one indivisible partition and
CCF has almost no room to balance; finer partitioning (the paper: "a
more fine-grained control on data assignment", p = 15 n) lets Algorithm 1
approach the fluid optimum.  Hash and Mini barely react -- their rules
don't exploit the extra freedom.  This sweep quantifies that.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.experiments.tables import ResultTable
from repro.workloads.synthetic import clustered_workload

__all__ = ["run_partition_sweep"]


def run_partition_sweep(
    *,
    n_nodes: int = 40,
    total_gb: float = 20.0,
    multipliers: Sequence[int] = (1, 2, 5, 15, 30),
    holders_per_partition: int = 3,
    seed: int = 1,
) -> ResultTable:
    """CCT of each strategy as p/n grows, total data held fixed.

    Uses the clustered synthetic workload (each partition concentrated on
    a few holders) -- on the paper's statistically uniform workload every
    partition is identical and granularity cannot bind.
    """
    table = ResultTable(
        title="Partition granularity: communication time (s) vs p/n",
        columns=[
            "p_per_node",
            "hash_cct_s",
            "mini_cct_s",
            "ccf_cct_s",
            "ccf_solve_ms",
        ],
    )
    ccf = CCF()
    for mult in multipliers:
        base = clustered_workload(
            n_nodes,
            mult * n_nodes,
            holders_per_partition=holders_per_partition,
            seed=seed,
        )
        # Same byte mass at every granularity, so CCTs are comparable.
        h = base.h * (total_gb * 1e9 / base.h.sum())
        model = ShuffleModel(h=h, rate=base.rate, name=f"p{mult}n")
        cmp = ccf.compare(model)
        table.add_row(
            mult,
            cmp.cct("hash"),
            cmp.cct("mini"),
            cmp.cct("ccf"),
            cmp["ccf"].solve_seconds * 1e3,
        )
    table.add_note(
        "paper fixes p = 15 n; finer partitioning buys CCF balance room "
        "at linear solve-time cost"
    )
    return table
