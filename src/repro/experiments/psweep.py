"""Partition-granularity sweep: why the paper sets p = 15 n.

The number of hash partitions ``p`` is the co-optimizer's control
resolution: with ``p = n`` each node gets one indivisible partition and
CCF has almost no room to balance; finer partitioning (the paper: "a
more fine-grained control on data assignment", p = 15 n) lets Algorithm 1
approach the fluid optimum.  Hash and Mini barely react -- their rules
don't exploit the extra freedom.  This sweep quantifies that.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.workloads.synthetic import clustered_workload

__all__ = ["run_partition_sweep", "psweep_sweep"]

#: Reduced grid behind ``ccf sweep psweep --quick``.
QUICK_N_NODES = 20
QUICK_MULTIPLIERS = (1, 2, 5)


def _psweep_cell(
    *,
    mult: int,
    n_nodes: int,
    total_gb: float,
    holders_per_partition: int,
    seed: int,
) -> list:
    """One granularity point: plan all strategies at p = mult * n.

    Parameters
    ----------
    mult:
        Partitions-per-node multiplier (the swept value).
    n_nodes, total_gb, holders_per_partition, seed:
        Workload knobs; the byte mass is renormalised to ``total_gb`` at
        every granularity so CCTs stay comparable.

    Returns
    -------
    list
        ``[mult, hash_cct, mini_cct, ccf_cct, ccf_solve_ms]`` row.
    """
    ccf = CCF()
    base = clustered_workload(
        n_nodes,
        mult * n_nodes,
        holders_per_partition=holders_per_partition,
        seed=seed,
    )
    # Same byte mass at every granularity, so CCTs are comparable.
    h = base.h * (total_gb * 1e9 / base.h.sum())
    model = ShuffleModel(h=h, rate=base.rate, name=f"p{mult}n")
    cmp = ccf.compare(model)
    return [
        mult,
        cmp.cct("hash"),
        cmp.cct("mini"),
        cmp.cct("ccf"),
        cmp["ccf"].solve_seconds * 1e3,
    ]


def psweep_sweep(
    *,
    n_nodes: int = 40,
    total_gb: float = 20.0,
    multipliers: Sequence[int] = (1, 2, 5, 15, 30),
    holders_per_partition: int = 3,
    seed: int = 1,
    quick: bool = False,
) -> SweepSpec:
    """The granularity sweep as an engine cell grid.

    Parameters
    ----------
    n_nodes, total_gb, multipliers, holders_per_partition, seed:
        As :func:`run_partition_sweep`.
    quick:
        Shrink to ``QUICK_N_NODES`` / ``QUICK_MULTIPLIERS``.

    Returns
    -------
    SweepSpec
        One cell per p/n multiplier.
    """
    if quick:
        n_nodes = QUICK_N_NODES
        multipliers = QUICK_MULTIPLIERS
    cells = [
        Cell(
            label=f"p={mult}n",
            params=dict(
                mult=mult,
                n_nodes=n_nodes,
                total_gb=total_gb,
                holders_per_partition=holders_per_partition,
                seed=seed,
            ),
        )
        for mult in multipliers
    ]
    return SweepSpec(
        name="psweep",
        fn=_psweep_cell,
        cells=cells,
        assemble=rows_to_table(
            "Partition granularity: communication time (s) vs p/n",
            ["p_per_node", "hash_cct_s", "mini_cct_s", "ccf_cct_s", "ccf_solve_ms"],
            notes=(
                "paper fixes p = 15 n; finer partitioning buys CCF balance "
                "room at linear solve-time cost",
            ),
        ),
    )


def run_partition_sweep(
    *,
    n_nodes: int = 40,
    total_gb: float = 20.0,
    multipliers: Sequence[int] = (1, 2, 5, 15, 30),
    holders_per_partition: int = 3,
    seed: int = 1,
) -> ResultTable:
    """CCT of each strategy as p/n grows, total data held fixed.

    Uses the clustered synthetic workload (each partition concentrated on
    a few holders) -- on the paper's statistically uniform workload every
    partition is identical and granularity cannot bind.

    Parameters
    ----------
    n_nodes:
        Cluster size.
    total_gb:
        Total byte mass, renormalised at every granularity.
    multipliers:
        Swept p/n multipliers.
    holders_per_partition:
        Holders per partition in the clustered workload.
    seed:
        Workload seed.

    Returns
    -------
    ResultTable
        One row per multiplier.  The ``ccf_solve_ms`` column is measured
        wall-clock and therefore varies run-to-run; all other columns
        are deterministic.
    """
    return run_sweep(
        psweep_sweep(
            n_nodes=n_nodes,
            total_gb=total_gb,
            multipliers=multipliers,
            holders_per_partition=holders_per_partition,
            seed=seed,
        )
    ).table
