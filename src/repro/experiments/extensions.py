"""Extension experiments beyond the paper's evaluation.

Three studies exercising the future-work directions the paper names
(§VI: more complex workloads and computing environments) plus the
scheduler substrate on its home turf:

* ``trace``    -- coflow disciplines on a Facebook-style synthetic trace
  (the workload Varys/Aalo evaluate on), with slowdown/fairness/deadline
  statistics.
* ``online``   -- OnlineCCF (planning against in-flight shuffles) versus
  an oblivious planner on a bursty stream of operators.
* ``topology`` -- flat versus topology-aware Algorithm 1 over an
  oversubscription sweep (the RAPIER-flavoured extension).
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.online import OnlineCCF
from repro.core.topology_aware import ccf_heuristic_topology, evaluate_on_topology
from repro.experiments.tables import ResultTable
from repro.network.analysis import analyze
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.network.topology import TwoLevelTopology
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix

__all__ = ["run_trace_schedulers", "run_online_vs_oblivious", "run_topology_sweep"]


def run_trace_schedulers(
    *,
    n_ports: int = 40,
    n_coflows: int = 120,
    arrival_rate: float = 2.0,
    deadline_fraction: float = 0.3,
    seed: int = 0,
) -> ResultTable:
    """Coflow disciplines on the synthetic Facebook-style trace.

    Parameters
    ----------
    n_ports, n_coflows, arrival_rate, deadline_fraction, seed:
        :class:`CoflowMixConfig` knobs for the generated trace.

    Returns
    -------
    ResultTable
        One row per discipline: average/p95 CCT, slowdown, fairness and
        deadline hit rate.
    """
    cfg = CoflowMixConfig(
        n_ports=n_ports,
        n_coflows=n_coflows,
        arrival_rate=arrival_rate,
        deadline_fraction=deadline_fraction,
        seed=seed,
    )
    coflows = generate_coflow_mix(cfg)
    fabric = Fabric(n_ports=n_ports)
    table = ResultTable(
        title="Coflow disciplines on a Facebook-style trace",
        columns=[
            "scheduler",
            "avg_cct_s",
            "p95_cct_s",
            "avg_slowdown",
            "fairness",
            "deadline_hit_%",
        ],
    )
    for name in ("fair", "fifo", "scf", "ncf", "sebf", "dclas", "deadline"):
        sim = CoflowSimulator(fabric, make_scheduler(name))
        res = sim.run(coflows)
        rep = analyze(res, coflows, fabric)
        hit = (
            100 * rep.deadline_hit_rate
            if not np.isnan(rep.deadline_hit_rate)
            else float("nan")
        )
        table.add_row(
            name,
            rep.average_cct,
            rep.p95_cct,
            rep.average_slowdown,
            rep.fairness,
            hit,
        )
    table.add_note(
        f"{n_coflows} coflows, {n_ports} ports, Poisson({arrival_rate}/s) "
        f"arrivals, {deadline_fraction:.0%} deadline-tagged"
    )
    return table


def _burst_models(n_nodes: int, n_jobs: int, seed: int) -> list[ShuffleModel]:
    """Small symmetric operators: few partitions, uniformly resident.

    Each job only needs a handful of receive ports, and every node is an
    equally good destination in isolation -- so an oblivious planner
    deterministically picks the same ports for every job (collisions),
    while the online planner can see they are busy.
    """
    rng = np.random.default_rng(seed)
    models = []
    p = max(2, n_nodes // 4)
    for _ in range(n_jobs):
        size = float(rng.integers(8, 12)) * 1e6
        h = np.full((n_nodes, p), size)
        models.append(ShuffleModel(h=h))
    return models


def run_online_vs_oblivious(
    *,
    n_nodes: int = 16,
    n_jobs: int = 6,
    inter_arrival: float = 0.5,
    seed: int = 3,
) -> ResultTable:
    """OnlineCCF vs an oblivious planner on a bursty operator stream.

    Both plan the same operators at the same arrival instants; all
    resulting coflows then share the fabric under SEBF.  The online
    planner sees the residual loads of earlier shuffles and steers new
    operators away from busy ports.

    Parameters
    ----------
    n_nodes, n_jobs, inter_arrival, seed:
        Stream shape: cluster size, operator count, arrival spacing in
        seconds, and the burst-workload seed.

    Returns
    -------
    ResultTable
        One row per planner (oblivious, online) with average/max CCT
        and makespan.
    """
    models = _burst_models(n_nodes, n_jobs, seed)
    fabric = Fabric(n_ports=n_nodes)
    table = ResultTable(
        title="Online co-optimization vs oblivious planning (SEBF data plane)",
        columns=["planner", "avg_cct_s", "max_cct_s", "makespan_s"],
    )

    def run(planner: str):
        coflows = []
        online = OnlineCCF(n_nodes=n_nodes)
        for j, model in enumerate(models):
            t = j * inter_arrival
            if planner == "online":
                plan = online.submit(model, time=t)
            else:
                plan = CCF().plan(model, "ccf")
            coflows.append(plan.to_coflow(arrival_time=t))
        sim = CoflowSimulator(fabric, make_scheduler("sebf"))
        res = sim.run(coflows)
        return res

    for planner in ("oblivious", "online"):
        res = run(planner)
        table.add_row(planner, res.average_cct, res.max_cct, res.makespan)
    table.add_note(
        f"{n_jobs} operators arriving every {inter_arrival}s on "
        f"{n_nodes} nodes"
    )
    return table


def run_topology_sweep(
    *,
    n_nodes: int = 24,
    hosts_per_rack: int = 6,
    oversubscriptions: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    seed: int = 5,
) -> ResultTable:
    """Flat vs topology-aware Algorithm 1 under oversubscription.

    Each partition's bytes are mostly spread across its *home rack*, with
    a single larger chunk on one node in a different rack (think of a
    remote replica).  The NIC-only objective prefers shipping the home
    rack's many small chunks to the big remote holder (less traffic, same
    per-NIC bound), which drags most bytes through the home rack's
    uplink; the topology-aware greedy keeps the partition at home and
    only pulls the remote chunk in.

    Parameters
    ----------
    n_nodes, hosts_per_rack:
        Cluster and rack shape.
    oversubscriptions:
        Swept rack-uplink oversubscription factors.
    seed:
        Workload seed for the chunk placement.

    Returns
    -------
    ResultTable
        One row per oversubscription factor, comparing the flat and
        topology-aware planners' CCTs and uplink bounds.
    """
    rng = np.random.default_rng(seed)
    racks = np.arange(n_nodes) // hosts_per_rack
    p = 4 * n_nodes
    h = np.zeros((n_nodes, p))
    n_racks = int(racks.max()) + 1
    for k in range(p):
        home = k % n_racks
        home_nodes = np.flatnonzero(racks == home)
        away_nodes = np.flatnonzero(racks != home)
        h[home_nodes, k] = rng.integers(8, 12, home_nodes.size) * 1e6
        big = away_nodes[rng.integers(0, away_nodes.size)]
        h[big, k] = float(rng.integers(25, 35)) * 1e6
    model = ShuffleModel(h=h)

    table = ResultTable(
        title="Flat vs topology-aware CCF under rack oversubscription",
        columns=[
            "oversubscription",
            "flat_cct_s",
            "aware_cct_s",
            "flat_uplink_bound",
            "aware_uplink_bound",
        ],
    )
    for over in oversubscriptions:
        topo = TwoLevelTopology(
            n_hosts=n_nodes,
            hosts_per_rack=hosts_per_rack,
            host_rate=model.rate,
            oversubscription=over,
        )
        from repro.core.heuristic import ccf_heuristic

        flat = evaluate_on_topology(model, topo, ccf_heuristic(model))
        aware = evaluate_on_topology(
            model, topo, ccf_heuristic_topology(model, topo)
        )
        table.add_row(
            over, flat.cct, aware.cct, flat.uplink_bound, aware.uplink_bound
        )
    table.add_note(
        "home-rack data + one big remote chunk per partition; the aware "
        "planner keeps partitions at home instead of chasing the big chunk"
    )
    return table
