"""The paper's evaluation, reproducible end to end.

Each experiment mirrors one artifact of the paper (§IV):

===================  =================================================
``motivating``       Fig. 1 + Fig. 2 (schedule plans and their CCTs)
``fig5``             Fig. 5 -- sweep over the number of nodes
``fig6``             Fig. 6 -- sweep over the Zipf factor
``fig7``             Fig. 7 -- sweep over the skewness
``solver``           §III-B -- exact MILP vs heuristic scaling & gap
``ablation-sched``   coflow-scheduler comparison (Varys/Aalo/baselines)
``ablation-heuristic``  Algorithm 1 design-choice ablation
===================  =================================================

Run them via :func:`repro.experiments.registry.run_experiment`, the
``ccf`` CLI, or the per-figure benches under ``benchmarks/``.  The
grid-shaped experiments are also sweep-capable: ``ccf sweep <name>``
(or :func:`repro.experiments.engine.run_sweep` on the spec from
:func:`repro.experiments.registry.build_sweep`) runs their cells in
parallel with on-disk memoization, bit-identically to the serial path.
"""

from repro.experiments.engine import (
    Cell,
    CellCache,
    SweepOutcome,
    SweepSpec,
    run_sweep,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    SWEEPS,
    build_sweep,
    run_experiment,
)
from repro.experiments.tables import ResultTable

__all__ = [
    "Cell",
    "CellCache",
    "EXPERIMENTS",
    "ResultTable",
    "SWEEPS",
    "SweepOutcome",
    "SweepSpec",
    "build_sweep",
    "run_experiment",
    "run_sweep",
]
