"""The paper's evaluation, reproducible end to end.

Each experiment mirrors one artifact of the paper (§IV):

===================  =================================================
``motivating``       Fig. 1 + Fig. 2 (schedule plans and their CCTs)
``fig5``             Fig. 5 -- sweep over the number of nodes
``fig6``             Fig. 6 -- sweep over the Zipf factor
``fig7``             Fig. 7 -- sweep over the skewness
``solver``           §III-B -- exact MILP vs heuristic scaling & gap
``ablation-sched``   coflow-scheduler comparison (Varys/Aalo/baselines)
``ablation-heuristic``  Algorithm 1 design-choice ablation
===================  =================================================

Run them via :func:`repro.experiments.registry.run_experiment`, the
``ccf`` CLI, or the per-figure benches under ``benchmarks/``.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.tables import ResultTable

__all__ = ["EXPERIMENTS", "ResultTable", "run_experiment"]
