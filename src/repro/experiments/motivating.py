"""The paper's motivating example (Figures 1 and 2).

A three-node join with four key partitions, demonstrating the paper's
whole argument in miniature:

* the **Hash** plan (SP0) moves 8 tuples;
* the traffic-**optimal** plan SP2 (what Mini picks) moves 6 tuples, but
  its best possible coflow schedule still needs **4** time units -- and a
  naive uncoordinated (sequential) schedule needs **6**;
* a traffic-*suboptimal* plan SP1 moves 7 tuples yet completes in **3**
  time units under an optimal coflow schedule -- the co-optimization win.

The exact key multiset of the figure is partially garbled in the available
paper text, so the instance below was *reconstructed by exhaustive search*
to have exactly the published properties (traffic 8/7/6; CCTs 6/4/3); see
DESIGN.md §5.  All claims are re-derived, not hardcoded: the Hash/Mini
plans come from the real strategies, SP1 from enumeration, and the CCTs
from the closed form and the event-driven simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.strategies import hash_assignment, mini_assignment
from repro.experiments.tables import ResultTable
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["MotivatingExample", "run_motivating"]

#: Partition keys as drawn in Fig. 1 (hash dest = key mod 3).
EXAMPLE_KEYS = (0, 1, 2, 5)

#: Reconstructed chunk matrix h[node, partition] in tuples.
EXAMPLE_CHUNKS = np.array(
    [
        [0.0, 0.0, 0.0, 1.0],
        [0.0, 2.0, 3.0, 1.0],
        [1.0, 2.0, 4.0, 0.0],
    ]
)


@dataclass
class MotivatingExample:
    """The reconstructed Fig. 1/2 instance with all derived plans."""

    model: ShuffleModel
    sp0_hash: np.ndarray
    sp1_suboptimal: np.ndarray
    sp2_traffic_optimal: np.ndarray
    ccf_dest: np.ndarray

    @classmethod
    def build(cls) -> "MotivatingExample":
        """Derive SP0/SP1/SP2 and the CCF plan from the instance."""
        # One tuple per time unit: unit rate makes CCTs read in time units.
        model = ShuffleModel(h=EXAMPLE_CHUNKS.copy(), rate=1.0, name="fig1")
        n, p = model.n, model.p

        sp0 = np.array([k % n for k in EXAMPLE_KEYS], dtype=np.int64)
        sp2 = mini_assignment(model)

        # SP1: the best-CCT plan among those moving exactly 7 tuples
        # (deterministic lexicographic tie-break).
        sp1 = None
        best = np.inf
        for dest in itertools.product(range(n), repeat=p):
            m = model.evaluate(np.array(dest, dtype=np.int64))
            if m.traffic == 7 and m.bottleneck_bytes < best:
                best = m.bottleneck_bytes
                sp1 = np.array(dest, dtype=np.int64)
        assert sp1 is not None, "reconstructed instance lost the SP1 property"

        ccf_dest = CCF(skew_handling=False).plan(model, "ccf").dest
        return cls(
            model=model,
            sp0_hash=sp0,
            sp1_suboptimal=sp1,
            sp2_traffic_optimal=sp2,
            ccf_dest=ccf_dest,
        )

    # -- measurements ----------------------------------------------------
    def traffic(self, dest: np.ndarray) -> float:
        """Tuples moved to remote nodes (the paper's Fig. 1 cost)."""
        return self.model.evaluate(dest).traffic

    def optimal_cct(self, dest: np.ndarray) -> float:
        """Bandwidth-optimal CCT (Fig. 2(b)/(c)) in time units."""
        return self.model.evaluate(dest).cct

    def simulated_cct(self, dest: np.ndarray, scheduler: str) -> float:
        """CCT measured by the event-driven simulator under a discipline."""
        coflow = self.model.to_coflow(dest)
        fabric = Fabric(n_ports=self.model.n, rate=1.0)
        sim = CoflowSimulator(fabric, make_scheduler(scheduler))
        return sim.run([coflow]).max_cct


def run_motivating() -> ResultTable:
    """Reproduce the numbers of Figures 1 and 2 as one table.

    Returns
    -------
    ResultTable
        One row per plan (SP0/SP1/SP2/CCF) with its total traffic and
        its CCT under optimal and sequential scheduling.
    """
    ex = MotivatingExample.build()
    table = ResultTable(
        title="Motivating example (paper Fig. 1 + Fig. 2, 3 nodes, unit rate)",
        columns=["plan", "traffic (tuples)", "optimal CCT", "sequential CCT"],
    )
    rows = [
        ("SP0 (hash)", ex.sp0_hash),
        ("SP1 (suboptimal traffic)", ex.sp1_suboptimal),
        ("SP2 (minimal traffic)", ex.sp2_traffic_optimal),
        ("CCF (Algorithm 1)", ex.ccf_dest),
    ]
    for name, dest in rows:
        table.add_row(
            name,
            ex.traffic(dest),
            ex.optimal_cct(dest),
            ex.simulated_cct(dest, "sequential"),
        )
    table.add_note(
        "paper: traffic 8/7/6; optimal CCT of SP2 = 4, of SP1 = 3; "
        "worst (sequential) schedule of SP2 = 6"
    )
    return table
