"""DAG recovery experiment: stage policies x schedulers x estimate noise.

The job-level fault-tolerance tentpole in one table: a diamond DAG of
join shuffles is executed through the failure-aware
:class:`~repro.analytics.dag.DAGExecutor` while one node loses its
receive side mid-run, under every stage policy (fail-job / retry-stage /
replan-stage) and a sweep of plan-time estimate-noise levels.  The
interesting comparisons:

* **fail-job vs retry vs replan** -- job completion and the makespan
  inflation each policy pays for the same fault: fail-job loses the job,
  retry waits out the repair, replan routes around the hole immediately.
* **noise columns** -- how much job completion time CCF gives up when
  every stage is planned from degraded ``h[i,k]`` estimates (the
  simulator always charges true bytes), measured in the same run as the
  failure so the two robustness axes compose.

Everything is seeded (noise draws per stage, deterministic failure
schedule), so equal seeds reproduce the identical table.
"""

from __future__ import annotations

import math

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.core.framework import CCF
from repro.core.noise import NoisyEstimates
from repro.experiments.tables import ResultTable
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric

__all__ = ["run_dag_recovery"]


def _diamond_dag(n_nodes: int, scale_factor: float) -> JobDAG:
    """A 4-stage diamond of join shuffles: two scans feeding a join
    feeding an aggregate."""
    from repro.workloads.analytic import AnalyticJoinWorkload

    def wl(scale: float) -> AnalyticJoinWorkload:
        return AnalyticJoinWorkload(
            n_nodes=n_nodes, scale_factor=scale, partitions=4 * n_nodes
        )

    dag = JobDAG("diamond")
    dag.add("scan_a", wl(scale_factor))
    dag.add("scan_b", wl(scale_factor * 0.8))
    dag.add("join", wl(scale_factor * 1.2), parents=("scan_a", "scan_b"))
    dag.add("agg", wl(scale_factor * 0.5), parents=("join",))
    return dag


def run_dag_recovery(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    strategy: str = "ccf",
    schedulers: tuple[str, ...] = ("sebf", "dclas"),
    policies: tuple[str, ...] = ("fail-job", "retry-stage", "replan-stage"),
    noise_levels: tuple[float, ...] = (0.0, 1.0),
    fail_port: int = 0,
    fail_at: float = 1.0,
    recover_at: float = 40.0,
    fail_direction: str = "ingress",
    seed: int = 0,
) -> ResultTable:
    """Job-completion-time inflation per stage policy, scheduler and
    estimate-noise level under a mid-run node loss.

    A receiver-side node loss (``fail_direction="ingress"``, the case
    replanning is designed for) hits the diamond DAG while its root
    stages are in flight.  For every scheduler the healthy noise-free
    makespan is the baseline; ``inflation_x`` reports each (policy,
    noise) cell's makespan against it.  ``seed`` drives the per-stage
    noise draws; everything else is deterministic, so equal seeds yield
    the identical table.

    Parameters
    ----------
    n_nodes, scale_factor, strategy:
        Diamond-DAG workload shape and the planning strategy it uses.
    schedulers, policies, noise_levels:
        The swept grid: one row per (scheduler, policy, noise) cell.
    fail_port, fail_at, recover_at, fail_direction:
        The injected node loss: which port, when it fails and repairs,
        and whether its ingress or egress side goes dark.
    seed:
        Drives the per-stage estimate-noise draws.

    Returns
    -------
    ResultTable
        Makespan and ``inflation_x`` against the healthy noise-free
        baseline for every grid cell, plus the stage-attempt counts.
    """
    dag = _diamond_dag(n_nodes, scale_factor)
    # Skew handling would broadcast v0 flows into every port; those are
    # fixed destinations a replan cannot move, which silently turns
    # replan-stage into retry-stage.  Plan pure shuffles here.
    ccf = CCF(skew_handling=False)
    executor_rate = ccf.model_for(dag.stage("scan_a").workload, strategy).rate
    fabric = Fabric(n_ports=n_nodes, rate=executor_rate)
    dyn = FabricDynamics.fail(
        time=fail_at,
        ports=[fail_port],
        fabric=fabric,
        recover_at=recover_at,
        direction=fail_direction,
    )

    table = ResultTable(
        title="DAG recovery: job makespan under stage policies and "
        "degraded estimates",
        columns=[
            "scheduler",
            "policy",
            "noise",
            "job_ok",
            "makespan",
            "inflation_x",
            "retries",
            "replans",
            "failed_stages",
            "bytes_lost",
        ],
    )
    for scheduler in schedulers:
        executor = DAGExecutor(ccf, scheduler=scheduler)
        healthy = executor.run(dag, strategy=strategy)
        baseline = healthy.makespan
        for policy in policies:
            for sigma in noise_levels:
                noise = (
                    NoisyEstimates(sigma=sigma, seed=seed)
                    if sigma > 0
                    else None
                )
                res = executor.run(
                    dag,
                    strategy=strategy,
                    dynamics=dyn,
                    stage_policy=policy,
                    noise=noise,
                )
                makespan = res.makespan if res.completed else math.nan
                table.add_row(
                    scheduler,
                    policy,
                    sigma,
                    int(res.completed),
                    makespan,
                    makespan / baseline if baseline else math.nan,
                    res.total_retries,
                    res.total_replans,
                    len(res.failed_stages) + len(res.skipped_stages),
                    res.bytes_lost,
                )
    table.add_note(
        f"diamond DAG (2 scans -> join -> agg), {n_nodes} nodes; port "
        f"{fail_port} loses its {fail_direction} side at t={fail_at}s, "
        f"repaired at t={recover_at}s"
    )
    table.add_note(
        f"noise = lognormal sigma of the per-stage h[i,k] estimates "
        f"(seed={seed}); execution always charges true bytes"
    )
    table.add_note(
        "inflation_x is against the same scheduler's healthy, noise-free "
        "makespan; job_ok=0 rows have no makespan (job failed)"
    )
    return table
