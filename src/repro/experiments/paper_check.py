"""Automated verification of the paper's published claims.

Each claim from the paper's evaluation (§II's motivating numbers and
§IV's figures) is encoded as a predicate over freshly computed results;
``run_paper_check`` evaluates all of them and reports PASS/FAIL per
claim.  This is the reproduction's conscience: if a refactor breaks a
published shape, ``ccf verify`` says so in one screen.

Scale note: the claims about *shapes and ratios* are scale-invariant for
the analytic workload, so verification runs at a reduced scale factor by
default (minutes -> seconds) -- pass ``scale_factor=600`` for the full
paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.figures import (
    SweepConfig,
    run_fig5_nodes,
    run_fig6_zipf,
    run_fig7_skew,
)
from repro.experiments.motivating import MotivatingExample
from repro.experiments.tables import ResultTable

__all__ = ["run_paper_check", "Claim"]


@dataclass
class Claim:
    """One published claim and its verdict."""

    source: str
    statement: str
    passed: bool
    observed: str


def _speedups(table: ResultTable, slow: str, fast: str) -> list[float]:
    return [
        s / f
        for s, f in zip(table.column(f"{slow}_cct_s"), table.column(f"{fast}_cct_s"))
    ]


def run_paper_check(
    *, scale_factor: float = 60.0, n_nodes: int = 100
) -> ResultTable:
    """Evaluate every published claim; returns a PASS/FAIL table."""
    claims: list[Claim] = []

    def check(source: str, statement: str, fn: Callable[[], tuple[bool, str]]):
        ok, observed = fn()
        claims.append(Claim(source, statement, ok, observed))

    # ---- Motivating example (Fig. 1 + Fig. 2) -------------------------
    ex = MotivatingExample.build()

    check("Fig.1", "hash plan moves 8 tuples", lambda: (
        ex.traffic(ex.sp0_hash) == 8, f"{ex.traffic(ex.sp0_hash):.0f}"
    ))
    check("Fig.1", "minimal-traffic plan moves 6 tuples", lambda: (
        ex.traffic(ex.sp2_traffic_optimal) == 6,
        f"{ex.traffic(ex.sp2_traffic_optimal):.0f}",
    ))
    check("Fig.2(b)", "optimal coflow schedule of SP2 takes 4 units", lambda: (
        ex.optimal_cct(ex.sp2_traffic_optimal) == 4,
        f"{ex.optimal_cct(ex.sp2_traffic_optimal):.0f}",
    ))
    check("Fig.2(a)", "worst schedule of SP2 takes 6 units", lambda: (
        abs(ex.simulated_cct(ex.sp2_traffic_optimal, "sequential") - 6) < 1e-9,
        f"{ex.simulated_cct(ex.sp2_traffic_optimal, 'sequential'):.0f}",
    ))
    check("Fig.2(c)", "suboptimal-traffic SP1 completes in 3 units", lambda: (
        ex.traffic(ex.sp1_suboptimal) == 7
        and ex.optimal_cct(ex.sp1_suboptimal) == 3,
        f"traffic={ex.traffic(ex.sp1_suboptimal):.0f}, "
        f"cct={ex.optimal_cct(ex.sp1_suboptimal):.0f}",
    ))

    # ---- Figure 5: node sweep -----------------------------------------
    cfg = SweepConfig(scale_factor=scale_factor, n_nodes=n_nodes)
    fig5 = run_fig5_nodes(cfg, nodes=(20, 40, 60, 80, 100))

    def fig5_wins():
        ccf = fig5.column("ccf_cct_s")
        ok = all(
            c < h < m
            for c, h, m in zip(
                ccf, fig5.column("hash_cct_s"), fig5.column("mini_cct_s")
            )
        )
        return ok, "CCF < Hash < Mini at every point" if ok else "ordering broken"

    check("Fig.5(b)", "CCF fastest, Mini slowest, at every node count", fig5_wins)

    def fig5_band():
        vs_mini = _speedups(fig5, "mini", "ccf")
        ok = min(vs_mini) > 3 and max(vs_mini) < 40
        return ok, f"speedup over Mini {min(vs_mini):.1f}-{max(vs_mini):.1f}x"

    check(
        "Fig.5(b)",
        "speedup over Mini of the order 8-15x (paper: 8.1-15.2x)",
        fig5_band,
    )

    def fig5_traffic():
        ok = all(
            m <= c <= h
            for m, c, h in zip(
                fig5.column("mini_traffic_gb"),
                fig5.column("ccf_traffic_gb"),
                fig5.column("hash_traffic_gb"),
            )
        )
        return ok, "Mini <= CCF <= Hash traffic" if ok else "ordering broken"

    check("Fig.5(a)", "Mini least traffic; CCF below Hash", fig5_traffic)

    # ---- Figure 6: zipf sweep ------------------------------------------
    fig6 = run_fig6_zipf(cfg, zipfs=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0))

    def fig6_hash_flat():
        col = fig6.column("hash_cct_s")
        ok = max(col) / min(col) < 1.6
        return ok, f"Hash max/min = {max(col) / min(col):.2f}"

    check("Fig.6(b)", "Hash time nearly constant over zipf", fig6_hash_flat)

    def fig6_ccf_grows():
        col = fig6.column("ccf_cct_s")
        ok = col == sorted(col)
        return ok, "CCF monotone increasing" if ok else "not monotone"

    check("Fig.6(b)", "CCF time increases with the zipf factor", fig6_ccf_grows)

    def fig6_traffic_falls():
        ok = all(
            fig6.column(f"{s}_traffic_gb") ==
            sorted(fig6.column(f"{s}_traffic_gb"), reverse=True)
            for s in ("hash", "mini", "ccf")
        )
        return ok, "all traffics decrease" if ok else "not decreasing"

    check("Fig.6(a)", "network traffic decreases with zipf", fig6_traffic_falls)

    # ---- Figure 7: skew sweep ------------------------------------------
    fig7 = run_fig7_skew(cfg, skews=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5))

    def fig7_hash_rises():
        col = fig7.column("hash_cct_s")
        ok = col == sorted(col) and col[-1] > 2 * col[0]
        return ok, f"Hash {col[0]:.0f}s -> {col[-1]:.0f}s"

    check("Fig.7(b)", "Hash time rises sharply with skew", fig7_hash_rises)

    def fig7_ccf_falls():
        col = fig7.column("ccf_cct_s")
        ok = col == sorted(col, reverse=True)
        return ok, "CCF monotone decreasing" if ok else "not decreasing"

    check("Fig.7(b)", "Mini/CCF time falls with skew", fig7_ccf_falls)

    def fig7_const_ratio():
        vs_mini = _speedups(fig7, "mini", "ccf")
        ok = max(vs_mini) / min(vs_mini) < 1.15
        return ok, (
            f"speedup over Mini {min(vs_mini):.1f}-{max(vs_mini):.1f}x "
            "(paper: ~12.8x constant)"
        )

    check("Fig.7(b)", "speedup over Mini roughly constant", fig7_const_ratio)

    def fig7_zero_skew():
        gap = fig7.column("hash_cct_s")[0] - fig7.column("ccf_cct_s")[0]
        ok = gap > 0
        return ok, f"CCF faster than Hash by {gap:.1f}s at skew=0"

    check("Fig.7(b)", "CCF still beats Hash at zero skew", fig7_zero_skew)

    # ---- render ---------------------------------------------------------
    table = ResultTable(
        title="Paper-claim verification",
        columns=["source", "claim", "verdict", "observed"],
    )
    for c in claims:
        table.add_row(
            c.source, c.statement, "PASS" if c.passed else "FAIL", c.observed
        )
    failed = sum(1 for c in claims if not c.passed)
    table.add_note(
        f"{len(claims) - failed}/{len(claims)} claims verified at "
        f"SF={scale_factor}, base nodes={n_nodes}"
    )
    return table
