"""Chaos campaign: named fault scenarios scored for resilience.

PRs 1-5 grew three independent fault surfaces: the *simulated* fabric
can fail (``repro.network.chaos``), the *planner's inputs* can be wrong
(``repro.core.noise``), and -- since the supervised execution layer --
the *platform* itself can hurt (worker kills, cache corruption, cell
timeouts).  This module composes all three into a declarative fault
matrix: each :class:`ChaosScenario` names a combination, every scenario
runs as one cell of an ordinary engine sweep (so platform faults
exercise the engine's own retry / rebuild / quarantine machinery), and
the campaign is scored on

* **completion under faults** -- did every coflow of every scenario
  still finish;
* **degradation ratio** -- faulty average CCT over the scenario's own
  fault-free CCT;
* **recovery cost** -- extra simulated seconds to drain the same stream
  (``slowdown_s``);
* **supervision spend** -- retries, timeouts, worker crashes, pool
  rebuilds and quarantined cache entries consumed platform-wide.

Platform faults are keyed on the ``CCF_CHAOS_FAULT_DIR`` environment
variable (marker files under it make each fault one-shot) instead of on
cell parameters: platform faults must not change results, so they must
not change cache identity either.  Simulated-world knobs (fabric chaos,
estimate noise) *do* change results and are ordinary cell parameters.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.resilience import Backoff
from repro.experiments.engine import (
    Cell,
    CellCache,
    SweepOutcome,
    SweepSpec,
    cell_key,
    derive_seed,
    rows_to_table,
    run_sweep,
)
from repro.experiments.tables import ResultTable

__all__ = [
    "ChaosScenario",
    "SCENARIOS",
    "CampaignOutcome",
    "campaign_sweep",
    "run_campaign",
    "run_chaos",
]

#: Environment variable holding the marker directory for platform faults.
#: Unset (or empty) disables worker kills and injected timeouts entirely,
#: which is what ``ccf run chaos`` and serial library use get.
FAULT_DIR_ENV = "CCF_CHAOS_FAULT_DIR"

#: How long an injected-timeout cell sleeps.  Always far above any sane
#: ``cell_timeout_s``, so the sleep is ended by SIGALRM, not by waking.
_INJECTED_SLEEP_S = 60.0


@dataclass(frozen=True)
class ChaosScenario:
    """One named cell of the fault matrix.

    Parameters
    ----------
    name:
        Scenario identifier (also the sweep-cell label).
    description:
        One line for reports and ``ccf chaos --list``.
    chaos_mtbf, chaos_mttr:
        Fabric chaos: mean time between seeded full-port failures and
        mean time to repair, in simulated seconds.  ``chaos_mtbf=None``
        keeps the fabric healthy.
    noise:
        Lognormal sigma of :class:`repro.core.noise.NoisyEstimates`
        degrading the scheduler's size estimates; 0 disables.
    kill_worker:
        Kill the hosting worker process (SIGKILL) once -- exercises pool
        rebuild + re-dispatch.  Only fires inside pool workers and only
        when the fault directory is armed.
    corrupt_cache:
        Pre-corrupt this scenario's cache entry before the sweep --
        exercises checksum quarantine.  Needs a cache to corrupt.
    inject_timeout:
        Sleep past the per-cell timeout once -- exercises
        :class:`~repro.core.resilience.CellTimeout` + retry.
    """

    name: str
    description: str
    chaos_mtbf: float | None = None
    chaos_mttr: float = 1.5
    noise: float = 0.0
    kill_worker: bool = False
    corrupt_cache: bool = False
    inject_timeout: bool = False


#: The campaign's fault matrix, in report order.
SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            "baseline",
            "no faults anywhere (control row: degradation must be 1.0)",
        ),
        ChaosScenario(
            "fabric-chaos",
            "seeded full-port failures with replan recovery",
            chaos_mtbf=1.0,
            chaos_mttr=1.0,
        ),
        ChaosScenario(
            "noisy-estimates",
            "scheduler plans against lognormal-noisy size estimates",
            noise=0.4,
        ),
        ChaosScenario(
            "worker-crash",
            "the sweep worker running this scenario is SIGKILLed once",
            kill_worker=True,
        ),
        ChaosScenario(
            "cache-corruption",
            "this scenario's cache entry is corrupted before the run",
            corrupt_cache=True,
        ),
        ChaosScenario(
            "cell-timeout",
            "this scenario's cell overruns its timeout once",
            inject_timeout=True,
        ),
        ChaosScenario(
            "kitchen-sink",
            "fabric chaos + noisy estimates + kill + corruption + timeout",
            chaos_mtbf=1.0,
            chaos_mttr=1.0,
            noise=0.4,
            kill_worker=True,
            corrupt_cache=True,
            inject_timeout=True,
        ),
    )
}


def _inject_platform_faults(scenario: ChaosScenario) -> None:
    """Fire the scenario's one-shot platform faults, if armed.

    Marker files make each fault fire exactly once per fault directory,
    so the retried / re-dispatched attempt succeeds.  Nothing here may
    influence the returned row -- that is what keeps fault-injected
    campaigns bit-identical to clean ones.
    """
    fault_dir = os.environ.get(FAULT_DIR_ENV, "")
    if not fault_dir:
        return
    if scenario.kill_worker and multiprocessing.parent_process() is not None:
        marker = os.path.join(fault_dir, f"kill-{scenario.name}")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("worker killed by chaos campaign\n")
            os.kill(os.getpid(), signal.SIGKILL)
    if scenario.inject_timeout:
        marker = os.path.join(fault_dir, f"slow-{scenario.name}")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("cell timeout injected by chaos campaign\n")
            time.sleep(_INJECTED_SLEEP_S)


def _campaign_cell(
    *,
    scenario: str,
    n_nodes: int,
    scale_factor: float,
    n_jobs: int,
    inter_arrival: float,
    seed: int,
    chaos_mtbf: float | None,
    chaos_mttr: float,
    noise: float,
) -> list:
    """One scenario: the CCF stream fault-free, then under its faults.

    Parameters
    ----------
    scenario:
        Key of :data:`SCENARIOS` (platform-fault flags are looked up
        here; they are not cell parameters on purpose -- see the module
        docstring).
    n_nodes, scale_factor, n_jobs, inter_arrival:
        Workload and stream knobs (shared by every scenario).
    seed:
        Base seed; the chaos schedule and noise stream are derived from
        it per scenario, so rows are reproducible cell-by-cell.
    chaos_mtbf, chaos_mttr, noise:
        The scenario's simulated-world faults (duplicated into params so
        the cache key honestly reflects everything that shapes the row).

    Returns
    -------
    list
        ``[scenario, completed, jobs, clean_cct, faulty_cct,
        degradation_x, slowdown_s, port_failures, reroutes,
        bytes_lost]`` row.
    """
    from repro.core.noise import NoisyEstimates
    from repro.experiments.robustness import _ccf_coflows
    from repro.network.chaos import ChaosConfig, chaos_schedule
    from repro.network.schedulers import make_scheduler
    from repro.network.simulator import CoflowSimulator

    spec = SCENARIOS[scenario]
    _inject_platform_faults(spec)

    coflows, fabric = _ccf_coflows(
        n_nodes, scale_factor, n_jobs, inter_arrival
    )
    clean = CoflowSimulator(fabric, make_scheduler("sebf")).run(coflows)

    dynamics = None
    if chaos_mtbf is not None:
        dynamics = chaos_schedule(
            ChaosConfig(
                mtbf=chaos_mtbf,
                mttr=chaos_mttr,
                horizon=max(2.0 * clean.makespan, 4.0),
                seed=derive_seed(seed, "chaos", scenario),
            ),
            fabric,
        )
    estimate_noise = None
    if noise > 0.0:
        estimate_noise = NoisyEstimates(
            sigma=noise, seed=derive_seed(seed, "noise", scenario)
        )
    faulty = CoflowSimulator(
        fabric,
        make_scheduler("sebf"),
        dynamics=dynamics,
        recovery="replan" if dynamics is not None else None,
        estimate_noise=estimate_noise,
    ).run(coflows)
    summary = faulty.failure_summary()
    clean_cct = clean.average_cct
    faulty_cct = faulty.average_cct
    return [
        scenario,
        len(faulty.ccts),
        n_jobs,
        clean_cct,
        faulty_cct,
        faulty_cct / clean_cct if clean_cct else float("nan"),
        faulty.makespan - clean.makespan,
        summary["port_failures"],
        summary["reroutes"],
        summary["bytes_lost"],
    ]


def campaign_sweep(
    *,
    n_nodes: int = 12,
    scale_factor: float = 0.3,
    n_jobs: int = 3,
    inter_arrival: float = 1.0,
    seed: int = 0,
    scenarios: tuple[str, ...] | None = None,
    quick: bool = False,
) -> SweepSpec:
    """The chaos campaign as an engine grid (one cell per scenario).

    Parameters
    ----------
    n_nodes, scale_factor, n_jobs, inter_arrival:
        Workload and stream knobs.
    seed:
        Base seed for chaos schedules and noise streams.
    scenarios:
        Scenario names to run (default: all of :data:`SCENARIOS`, in
        declaration order).
    quick:
        Shrink the workload (8 nodes, SF 0.2, 2 jobs); the scenario set
        stays complete -- a quick campaign still exercises every fault.

    Returns
    -------
    SweepSpec
        One cell per scenario.
    """
    if quick:
        n_nodes, scale_factor, n_jobs = 8, 0.2, 2
    names = scenarios if scenarios is not None else tuple(SCENARIOS)
    unknown = [s for s in names if s not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown chaos scenarios {unknown}; choose from {list(SCENARIOS)}"
        )
    cells = [
        Cell(
            label=f"scenario={name}",
            params=dict(
                scenario=name,
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                n_jobs=n_jobs,
                inter_arrival=inter_arrival,
                seed=seed,
                chaos_mtbf=SCENARIOS[name].chaos_mtbf,
                chaos_mttr=SCENARIOS[name].chaos_mttr,
                noise=SCENARIOS[name].noise,
            ),
        )
        for name in names
    ]
    return SweepSpec(
        name="chaos",
        fn=_campaign_cell,
        cells=cells,
        assemble=rows_to_table(
            "Chaos campaign: CCT degradation and recovery per scenario",
            [
                "scenario",
                "completed",
                "jobs",
                "clean_cct",
                "faulty_cct",
                "degradation_x",
                "slowdown_s",
                "port_failures",
                "reroutes",
                "bytes_lost",
            ],
            notes=(
                "each scenario simulates the same CCF join stream "
                "fault-free, then under its declared faults (sebf, "
                "replan recovery when the fabric misbehaves)",
                "platform faults (worker kill / cache corruption / cell "
                "timeout) attack the sweep machinery, not the "
                "simulation: they must leave every row unchanged",
            ),
        ),
    )


@dataclass
class CampaignOutcome:
    """A scored chaos campaign.

    Parameters
    ----------
    table:
        Per-scenario results (the sweep's assembled table).
    resilience:
        Campaign-level scorecard: completion, worst degradation, total
        recovery cost and the supervision counters consumed.
    outcome:
        The underlying engine :class:`SweepOutcome`.
    """

    table: ResultTable
    resilience: ResultTable
    outcome: SweepOutcome

    @property
    def completed(self) -> bool:
        """True when every coflow of every scenario finished."""
        return all(row[1] == row[2] for row in self.table.rows)


def _score(table: ResultTable, outcome: SweepOutcome) -> ResultTable:
    ratios = [
        row[5] for row in table.rows if isinstance(row[5], float)
    ]
    card = ResultTable(
        title="Chaos campaign: resilience scorecard",
        columns=["metric", "value"],
    )
    card.add_row("scenarios", len(table.rows))
    card.add_row(
        "coflows completed",
        f"{sum(row[1] for row in table.rows)}"
        f"/{sum(row[2] for row in table.rows)}",
    )
    card.add_row(
        "completed under faults",
        "yes" if all(row[1] == row[2] for row in table.rows) else "NO",
    )
    if ratios:
        card.add_row("worst degradation_x", max(ratios))
    card.add_row(
        "total slowdown_s", sum(row[6] for row in table.rows)
    )
    card.add_row("cache hits", outcome.hits)
    card.add_row("retries consumed", outcome.retries)
    card.add_row("cell timeouts", outcome.timeouts)
    card.add_row("worker crashes", outcome.worker_crashes)
    card.add_row("pool rebuilds", outcome.pool_rebuilds)
    card.add_row("cache entries quarantined", outcome.quarantined)
    card.add_row("wall s", round(outcome.elapsed_seconds, 2))
    card.add_note(
        "supervision counters are campaign-wide: they count what the "
        "sweep engine absorbed, which never changes the rows above"
    )
    return card


def run_campaign(
    *,
    quick: bool = False,
    jobs: int = 2,
    cache: CellCache | None = None,
    fault_dir: str | None = None,
    seed: int = 0,
    scenarios: tuple[str, ...] | None = None,
    retry: Backoff | None = None,
    cell_timeout_s: float | None = None,
    progress: Callable[[str], None] | None = None,
    metrics: Any = None,
    instrumentation: Any = None,
) -> CampaignOutcome:
    """Run and score the chaos campaign.

    Parameters
    ----------
    quick:
        Shrink the workload; the scenario set stays complete.
    jobs:
        Sweep workers.  Worker-kill scenarios need ``jobs >= 2`` (and an
        armed ``fault_dir``) to actually crash anything: in serial mode
        the kill guard refuses to shoot the calling process.
    cache:
        Cell cache; required for cache-corruption scenarios to have
        something to corrupt (they are skipped otherwise).
    fault_dir:
        Directory for one-shot fault markers.  Arms worker kills and
        injected timeouts (exported as ``CCF_CHAOS_FAULT_DIR`` for the
        workers).  None leaves platform faults dormant.
    seed:
        Base seed for chaos schedules, noise streams and retry jitter.
    scenarios:
        Scenario subset (default all).
    retry:
        Retry policy; defaults to 3 attempts with deterministic jitter
        seeded from ``seed``.
    cell_timeout_s:
        Per-cell timeout; defaults to 30s (5s under ``quick``) -- far
        above real cell runtimes, far below the injected sleep.
    progress, metrics, instrumentation:
        Forwarded to :func:`repro.experiments.engine.run_sweep`.

    Returns
    -------
    CampaignOutcome
        Scenario table, resilience scorecard and engine outcome.
    """
    spec = campaign_sweep(quick=quick, seed=seed, scenarios=scenarios)
    if retry is None:
        retry = Backoff(
            max_attempts=3,
            base_delay=0.2,
            max_delay=2.0,
            jitter=0.1,
            seed=derive_seed(seed, "chaos-backoff"),
        )
    if cell_timeout_s is None:
        cell_timeout_s = 5.0 if quick else 30.0

    if cache is not None:
        for cell in spec.cells:
            if SCENARIOS[cell.params["scenario"]].corrupt_cache:
                path = cache.path(cell_key(spec, cell))
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text('{"experiment": "chaos", "result": [truncated')

    previous = os.environ.get(FAULT_DIR_ENV)
    if fault_dir is not None:
        os.makedirs(fault_dir, exist_ok=True)
        os.environ[FAULT_DIR_ENV] = str(fault_dir)
    try:
        outcome = run_sweep(
            spec,
            jobs=jobs,
            cache=cache,
            retry=retry,
            cell_timeout_s=cell_timeout_s,
            progress=progress,
            metrics=metrics,
            instrumentation=instrumentation,
        )
    finally:
        if fault_dir is not None:
            if previous is None:
                os.environ.pop(FAULT_DIR_ENV, None)
            else:
                os.environ[FAULT_DIR_ENV] = previous
    return CampaignOutcome(
        table=outcome.table,
        resilience=_score(outcome.table, outcome),
        outcome=outcome,
    )


def run_chaos() -> ResultTable:
    """The campaign at registry defaults: simulated faults only, serial.

    ``ccf run`` executes experiments in-process with no cache, so
    platform faults stay dormant (nothing to kill, corrupt or time out);
    the fabric-chaos and noisy-estimates scenarios still bite.  Use
    ``ccf chaos`` for the full supervised campaign.

    Returns
    -------
    ResultTable
        One row per scenario.
    """
    return run_campaign(jobs=1).table
