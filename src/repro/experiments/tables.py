"""Result tables: the rows/series the paper's figures plot.

A :class:`ResultTable` is a light ordered column store with text and
markdown renderers, used by every experiment and bench to print the same
series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["ResultTable"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ResultTable:
    """Ordered columns of experiment results.

    Parameters
    ----------
    title:
        Table caption (e.g. ``"Figure 5(b): communication time (s)"``).
    columns:
        Column names, in display order.
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional values or named values")
        if named:
            missing = set(self.columns) - set(named)
            if missing:
                raise ValueError(f"missing columns: {sorted(missing)}")
            row = [named[c] for c in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [self.columns] + [[_fmt(v) for v in r] for r in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (RFC-4180-style quoting for commas)."""

        def cell(v: Any) -> str:
            s = str(v)
            if "," in s or '"' in s or "\n" in s:
                s = '"' + s.replace('"', '""') + '"'
            return s

        lines = [",".join(cell(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(cell(v) for v in row))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    @staticmethod
    def render_all(tables: Iterable["ResultTable"]) -> str:
        """Join several tables with blank lines."""
        return "\n\n".join(t.render() for t in tables)
