"""Analytical-query benchmark: the paper's future-work workload class.

Runs the three query templates of :mod:`repro.analytics.queries` under
Hash / Mini / CCF at tuple level and reports per-query communication
time, traffic and result sizes -- extending the evaluation from a single
join to whole queries (paper §VI: "extending our framework model to more
complex workloads (e.g., analytical queries)").
"""

from __future__ import annotations

from repro.analytics.compile import QueryExecutor
from repro.analytics.queries import (
    active_customer_orders,
    build_tpch_catalog,
    distinct_buyers,
    orders_per_customer,
)
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.workloads.tpch import TPCHConfig

__all__ = ["run_query_suite", "queries_sweep"]

QUERIES = {
    "orders_per_customer": orders_per_customer,
    "active_customer_orders": active_customer_orders,
    "distinct_buyers": distinct_buyers,
}

#: Reduced scale behind ``ccf sweep queries --quick``.
QUICK_SCALE_FACTOR = 0.01


def _query_cell(
    *,
    query: str,
    n_nodes: int,
    scale_factor: float,
    skew: float,
    seed: int,
    strategies: list,
) -> list:
    """One query row: execute the template under every strategy.

    Parameters
    ----------
    query:
        Name of the query template in :data:`QUERIES` (the swept value).
    n_nodes, scale_factor, skew, seed:
        TPC-H catalog knobs; the catalog is rebuilt deterministically in
        the worker.
    strategies:
        Strategy names forming the per-strategy column pairs, in order.

    Returns
    -------
    list
        ``[query, rows, comm_s/traffic_mb per strategy...]`` row.

    Raises
    ------
    AssertionError
        If the strategies disagree on the query's result rows.
    """
    catalog = build_tpch_catalog(
        TPCHConfig(n_nodes=n_nodes, scale_factor=scale_factor, skew=skew, seed=seed)
    )
    executor = QueryExecutor(catalog, skew_factor=50.0)
    builder = QUERIES[query]
    row: list = [query]
    rows_value: int | None = None
    metrics: list[float] = []
    for s in strategies:
        result = executor.execute(builder(), strategy=s)
        if rows_value is None:
            rows_value = result.rows
        elif result.rows != rows_value:
            raise AssertionError(
                f"{query}: strategies disagree on the result "
                f"({result.rows} vs {rows_value})"
            )
        metrics += [
            result.total_communication_seconds,
            result.total_traffic / 1e6,
        ]
    row.append(rows_value)
    row.extend(metrics)
    return row


def queries_sweep(
    *,
    n_nodes: int = 8,
    scale_factor: float = 0.02,
    skew: float = 0.2,
    seed: int = 1,
    strategies: tuple[str, ...] = ("hash", "mini", "ccf"),
    quick: bool = False,
) -> SweepSpec:
    """The query benchmark as an engine cell grid (one cell per query).

    Parameters
    ----------
    n_nodes, scale_factor, skew, seed, strategies:
        As :func:`run_query_suite`.
    quick:
        Drop the scale factor to ``QUICK_SCALE_FACTOR``.

    Returns
    -------
    SweepSpec
        One cell per query template, in :data:`QUERIES` order.
    """
    if quick:
        scale_factor = QUICK_SCALE_FACTOR
    cols = ["query", "rows"]
    for s in strategies:
        cols += [f"{s}_comm_s", f"{s}_traffic_mb"]
    cells = [
        Cell(
            label=f"query={name}",
            params=dict(
                query=name,
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                skew=skew,
                seed=seed,
                strategies=list(strategies),
            ),
        )
        for name in QUERIES
    ]
    return SweepSpec(
        name="queries",
        fn=_query_cell,
        cells=cells,
        assemble=rows_to_table(
            "Analytical queries under Hash / Mini / CCF (tuple level)",
            cols,
            notes=(
                f"TPC-H SF {scale_factor} on {n_nodes} nodes, skew "
                f"{skew:.0%}; identical results across strategies are "
                "asserted, not assumed",
            ),
        ),
    )


def run_query_suite(
    *,
    n_nodes: int = 8,
    scale_factor: float = 0.02,
    skew: float = 0.2,
    seed: int = 1,
    strategies: tuple[str, ...] = ("hash", "mini", "ccf"),
) -> ResultTable:
    """Execute every query template under every strategy.

    Parameters
    ----------
    n_nodes, scale_factor, skew, seed:
        TPC-H catalog knobs.
    strategies:
        Strategies forming the per-query column pairs.

    Returns
    -------
    ResultTable
        One row per query template with result rows and per-strategy
        communication time / traffic.
    """
    return run_sweep(
        queries_sweep(
            n_nodes=n_nodes,
            scale_factor=scale_factor,
            skew=skew,
            seed=seed,
            strategies=strategies,
        )
    ).table
