"""Analytical-query benchmark: the paper's future-work workload class.

Runs the three query templates of :mod:`repro.analytics.queries` under
Hash / Mini / CCF at tuple level and reports per-query communication
time, traffic and result sizes -- extending the evaluation from a single
join to whole queries (paper §VI: "extending our framework model to more
complex workloads (e.g., analytical queries)").
"""

from __future__ import annotations

from repro.analytics.compile import QueryExecutor
from repro.analytics.queries import (
    active_customer_orders,
    build_tpch_catalog,
    distinct_buyers,
    orders_per_customer,
)
from repro.experiments.tables import ResultTable
from repro.workloads.tpch import TPCHConfig

__all__ = ["run_query_suite"]

QUERIES = {
    "orders_per_customer": orders_per_customer,
    "active_customer_orders": active_customer_orders,
    "distinct_buyers": distinct_buyers,
}


def run_query_suite(
    *,
    n_nodes: int = 8,
    scale_factor: float = 0.02,
    skew: float = 0.2,
    seed: int = 1,
    strategies: tuple[str, ...] = ("hash", "mini", "ccf"),
) -> ResultTable:
    """Execute every query template under every strategy."""
    catalog = build_tpch_catalog(
        TPCHConfig(
            n_nodes=n_nodes, scale_factor=scale_factor, skew=skew, seed=seed
        )
    )
    executor = QueryExecutor(catalog, skew_factor=50.0)
    cols = ["query", "rows"]
    for s in strategies:
        cols += [f"{s}_comm_s", f"{s}_traffic_mb"]
    table = ResultTable(
        title="Analytical queries under Hash / Mini / CCF (tuple level)",
        columns=cols,
    )
    for name, builder in QUERIES.items():
        row: list = [name]
        rows_value: int | None = None
        metrics: list[float] = []
        for s in strategies:
            result = executor.execute(builder(), strategy=s)
            if rows_value is None:
                rows_value = result.rows
            elif result.rows != rows_value:
                raise AssertionError(
                    f"{name}: strategies disagree on the result "
                    f"({result.rows} vs {rows_value})"
                )
            metrics += [
                result.total_communication_seconds,
                result.total_traffic / 1e6,
            ]
        row.append(rows_value)
        row.extend(metrics)
        table.add_row(*row)
    table.add_note(
        f"TPC-H SF {scale_factor} on {n_nodes} nodes, skew {skew:.0%}; "
        "identical results across strategies are asserted, not assumed"
    )
    return table
