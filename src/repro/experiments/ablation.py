"""Ablation studies: scheduler disciplines and Algorithm 1 design choices.

Two studies beyond the paper's headline figures:

* **Scheduler ablation** -- the same CCF plan executed under every
  discipline of the simulator (fair sharing, FIFO, SCF, NCF, SEBF,
  D-CLAS, sequential) on a multi-coflow workload, quantifying how much of
  CCF's win survives a non-optimal network layer (paper §II-C's point in
  reverse).
* **Heuristic ablation** -- Algorithm 1 with its two design choices
  toggled: the descending-size partition ordering (line 1) and the
  locality tie-break (our addition, DESIGN.md §4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.framework import CCF
from repro.core.heuristic import ccf_heuristic
from repro.experiments.tables import ResultTable
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["run_scheduler_ablation", "run_heuristic_ablation"]

ALL_SCHEDULERS = ("fair", "wss", "fifo", "scf", "ncf", "sebf", "dclas", "sequential")


def run_scheduler_ablation(
    *,
    n_nodes: int = 20,
    scale_factor: float = 0.5,
    n_jobs: int = 4,
    inter_arrival: float = 2.0,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    strategies: Sequence[str] = ("hash", "mini", "ccf"),
) -> ResultTable:
    """Average CCT of a stream of join coflows under each discipline.

    ``n_jobs`` identical joins (one per strategy column) arrive
    ``inter_arrival`` seconds apart, contending for the fabric -- the
    online scenario Varys/Aalo target.  The ``sequential`` column shows
    the uncoordinated worst case.
    """
    ccf = CCF()
    table = ResultTable(
        title="Scheduler ablation: average CCT (s) of a coflow stream",
        columns=["strategy", *schedulers],
    )
    for strategy in strategies:
        wl = AnalyticJoinWorkload(
            n_nodes=n_nodes, scale_factor=scale_factor, partitions=4 * n_nodes
        )
        plan = ccf.plan(wl, strategy)
        fabric = Fabric(n_ports=n_nodes, rate=plan.model.rate)
        row: list = [strategy]
        for sched in schedulers:
            coflows = [
                plan.to_coflow(arrival_time=j * inter_arrival)
                for j in range(n_jobs)
            ]
            sim = CoflowSimulator(fabric, make_scheduler(sched))
            res = sim.run(coflows)
            row.append(res.average_cct)
        table.add_row(*row)
    table.add_note(
        f"{n_jobs} identical join coflows arriving every {inter_arrival}s"
    )
    return table


def run_heuristic_ablation(
    *,
    n_nodes: int = 60,
    partitions: int = 900,
    seed: int = 7,
) -> ResultTable:
    """Algorithm 1 with sorting / locality tie-break toggled.

    Uses a heterogeneous workload (log-normal chunk sizes with many empty
    chunks) -- on the paper's statistically uniform workload every
    partition looks alike and the toggles cannot bind.
    """
    from repro.workloads.synthetic import lognormal_workload

    model = lognormal_workload(n_nodes, partitions, seed=seed)
    table = ResultTable(
        title="Algorithm 1 ablation: partition ordering and locality tie-break",
        columns=["sort_partitions", "locality_tiebreak", "T_gb", "cct_s", "traffic_gb"],
    )
    for sort_partitions in (True, False):
        for locality in (True, False):
            dest = ccf_heuristic(
                model,
                sort_partitions=sort_partitions,
                locality_tiebreak=locality,
            )
            m = model.evaluate(dest)
            table.add_row(
                sort_partitions,
                locality,
                m.bottleneck_bytes / 1e9,
                m.cct,
                m.traffic / 1e9,
            )
    return table
