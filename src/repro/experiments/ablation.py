"""Ablation studies: scheduler disciplines and Algorithm 1 design choices.

Two studies beyond the paper's headline figures:

* **Scheduler ablation** -- the same CCF plan executed under every
  discipline of the simulator (fair sharing, FIFO, SCF, NCF, SEBF,
  D-CLAS, sequential) on a multi-coflow workload, quantifying how much of
  CCF's win survives a non-optimal network layer (paper §II-C's point in
  reverse).
* **Heuristic ablation** -- Algorithm 1 with its two design choices
  toggled: the descending-size partition ordering (line 1) and the
  locality tie-break (our addition, DESIGN.md §4).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.framework import CCF
from repro.core.heuristic import ccf_heuristic
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = [
    "run_scheduler_ablation",
    "run_heuristic_ablation",
    "scheduler_ablation_sweep",
    "heuristic_ablation_sweep",
]

ALL_SCHEDULERS = ("fair", "wss", "fifo", "scf", "ncf", "sebf", "dclas", "sequential")


def _scheduler_cell(
    *,
    strategy: str,
    schedulers: Sequence[str],
    n_nodes: int,
    scale_factor: float,
    n_jobs: int,
    inter_arrival: float,
) -> list:
    """One strategy row: run its plan under every scheduling discipline.

    Parameters
    ----------
    strategy:
        Assignment strategy whose plan is executed ("hash"/"mini"/"ccf").
    schedulers:
        Disciplines forming the row's columns, in order.
    n_nodes, scale_factor, n_jobs, inter_arrival:
        Workload and stream knobs.

    Returns
    -------
    list
        ``[strategy, avg_cct_per_scheduler...]`` row.
    """
    ccf = CCF()
    wl = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=scale_factor, partitions=4 * n_nodes
    )
    plan = ccf.plan(wl, strategy)
    fabric = Fabric(n_ports=n_nodes, rate=plan.model.rate)
    row: list = [strategy]
    for sched in schedulers:
        coflows = [
            plan.to_coflow(arrival_time=j * inter_arrival) for j in range(n_jobs)
        ]
        sim = CoflowSimulator(fabric, make_scheduler(sched))
        res = sim.run(coflows)
        row.append(res.average_cct)
    return row


def scheduler_ablation_sweep(
    *,
    n_nodes: int = 20,
    scale_factor: float = 0.5,
    n_jobs: int = 4,
    inter_arrival: float = 2.0,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    strategies: Sequence[str] = ("hash", "mini", "ccf"),
    quick: bool = False,
) -> SweepSpec:
    """The scheduler ablation as an engine cell grid (one cell per strategy).

    Parameters
    ----------
    n_nodes, scale_factor, n_jobs, inter_arrival, schedulers, strategies:
        As :func:`run_scheduler_ablation`.
    quick:
        Shrink the workload (10 nodes, SF 0.2) and drop to four
        disciplines for smoke runs.

    Returns
    -------
    SweepSpec
        One cell per strategy row.
    """
    if quick:
        n_nodes, scale_factor = 10, 0.2
        schedulers = ("fair", "fifo", "sebf", "dclas")
    cells = [
        Cell(
            label=f"strategy={s}",
            params=dict(
                strategy=s,
                schedulers=list(schedulers),
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                n_jobs=n_jobs,
                inter_arrival=inter_arrival,
            ),
        )
        for s in strategies
    ]
    return SweepSpec(
        name="ablation-sched",
        fn=_scheduler_cell,
        cells=cells,
        assemble=rows_to_table(
            "Scheduler ablation: average CCT (s) of a coflow stream",
            ["strategy", *schedulers],
            notes=(
                f"{n_jobs} identical join coflows arriving every {inter_arrival}s",
            ),
        ),
    )


def run_scheduler_ablation(
    *,
    n_nodes: int = 20,
    scale_factor: float = 0.5,
    n_jobs: int = 4,
    inter_arrival: float = 2.0,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    strategies: Sequence[str] = ("hash", "mini", "ccf"),
) -> ResultTable:
    """Average CCT of a stream of join coflows under each discipline.

    ``n_jobs`` identical joins (one per strategy column) arrive
    ``inter_arrival`` seconds apart, contending for the fabric -- the
    online scenario Varys/Aalo target.  The ``sequential`` column shows
    the uncoordinated worst case.

    Parameters
    ----------
    n_nodes, scale_factor:
        Workload size knobs.
    n_jobs, inter_arrival:
        Stream shape: job count and arrival spacing in seconds.
    schedulers:
        Disciplines forming the columns.
    strategies:
        Assignment strategies forming the rows.

    Returns
    -------
    ResultTable
        Strategy x scheduler matrix of average CCTs.
    """
    return run_sweep(
        scheduler_ablation_sweep(
            n_nodes=n_nodes,
            scale_factor=scale_factor,
            n_jobs=n_jobs,
            inter_arrival=inter_arrival,
            schedulers=schedulers,
            strategies=strategies,
        )
    ).table


def _heuristic_cell(
    *,
    sort_partitions: bool,
    locality_tiebreak: bool,
    n_nodes: int,
    partitions: int,
    seed: int,
) -> list:
    """One toggle combination of Algorithm 1.

    Parameters
    ----------
    sort_partitions:
        Keep the descending-size partition ordering (line 1).
    locality_tiebreak:
        Keep the locality tie-break (DESIGN.md §4).
    n_nodes, partitions, seed:
        Log-normal workload knobs.

    Returns
    -------
    list
        ``[sort, locality, T_gb, cct_s, traffic_gb]`` row.
    """
    from repro.workloads.synthetic import lognormal_workload

    model = lognormal_workload(n_nodes, partitions, seed=seed)
    dest = ccf_heuristic(
        model,
        sort_partitions=sort_partitions,
        locality_tiebreak=locality_tiebreak,
    )
    m = model.evaluate(dest)
    return [
        sort_partitions,
        locality_tiebreak,
        m.bottleneck_bytes / 1e9,
        m.cct,
        m.traffic / 1e9,
    ]


def heuristic_ablation_sweep(
    *,
    n_nodes: int = 60,
    partitions: int = 900,
    seed: int = 7,
    quick: bool = False,
) -> SweepSpec:
    """The Algorithm 1 ablation as an engine cell grid (one cell per toggle pair).

    Parameters
    ----------
    n_nodes, partitions, seed:
        As :func:`run_heuristic_ablation`.
    quick:
        Shrink to 20 nodes / 100 partitions.

    Returns
    -------
    SweepSpec
        Four cells, in (sort, locality) order (T,T), (T,F), (F,T), (F,F).
    """
    if quick:
        n_nodes, partitions = 20, 100
    cells = [
        Cell(
            label=f"sort={sort_partitions} locality={locality}",
            params=dict(
                sort_partitions=sort_partitions,
                locality_tiebreak=locality,
                n_nodes=n_nodes,
                partitions=partitions,
                seed=seed,
            ),
        )
        for sort_partitions in (True, False)
        for locality in (True, False)
    ]
    return SweepSpec(
        name="ablation-heuristic",
        fn=_heuristic_cell,
        cells=cells,
        assemble=rows_to_table(
            "Algorithm 1 ablation: partition ordering and locality tie-break",
            ["sort_partitions", "locality_tiebreak", "T_gb", "cct_s", "traffic_gb"],
        ),
    )


def run_heuristic_ablation(
    *,
    n_nodes: int = 60,
    partitions: int = 900,
    seed: int = 7,
) -> ResultTable:
    """Algorithm 1 with sorting / locality tie-break toggled.

    Uses a heterogeneous workload (log-normal chunk sizes with many empty
    chunks) -- on the paper's statistically uniform workload every
    partition looks alike and the toggles cannot bind.

    Parameters
    ----------
    n_nodes, partitions:
        Workload shape.
    seed:
        Log-normal workload seed.

    Returns
    -------
    ResultTable
        One row per (sort, locality) combination.
    """
    return run_sweep(
        heuristic_ablation_sweep(n_nodes=n_nodes, partitions=partitions, seed=seed)
    ).table
