"""Validation experiment: analytic model vs tuple-level ground truth.

The paper-scale figures rest on the closed-form chunk matrices of
:class:`~repro.workloads.analytic.AnalyticJoinWorkload`.  This experiment
quantifies the substitution error: for matched parameters, the tuple-level
generator is run over several seeds and every strategy's traffic and CCT
is compared against the analytic prediction.  Reported relative errors of
a few percent are the sampling noise of a finite tuple population, not a
modelling discrepancy.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import CCF, DEFAULT_STRATEGIES
from repro.experiments.tables import ResultTable
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.workloads.analytic import AnalyticJoinWorkload
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations

__all__ = ["run_model_validation"]


def run_model_validation(
    *,
    n_nodes: int = 6,
    scale_factor: float = 0.05,
    partitions_per_node: int = 5,
    zipf_s: float = 0.8,
    skew: float = 0.2,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> ResultTable:
    """Relative error of the analytic model per strategy and metric.

    Parameters
    ----------
    n_nodes, scale_factor, partitions_per_node, zipf_s, skew:
        Workload shape shared by the analytic model and every tuple-level
        instantiation of it.
    seeds:
        One tuple-level generation per seed; errors are averaged over
        them.

    Returns
    -------
    ResultTable
        One row per (strategy, metric) with the mean relative error of
        the closed form against the measured tuple-level value.
    """
    p = partitions_per_node * n_nodes
    analytic = AnalyticJoinWorkload(
        n_nodes=n_nodes,
        partitions=p,
        scale_factor=scale_factor,
        zipf_s=zipf_s,
        skew=skew,
    )
    ccf = CCF()
    predicted = {
        s: ccf.plan(analytic, s) for s in DEFAULT_STRATEGIES
    }

    errors: dict[str, dict[str, list[float]]] = {
        s: {"traffic": [], "cct": []} for s in DEFAULT_STRATEGIES
    }
    for seed in seeds:
        customer, orders = generate_tpch_relations(
            TPCHConfig(
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                zipf_s=zipf_s,
                skew=skew,
                seed=seed,
            )
        )
        join = DistributedJoin(
            customer, orders, partitioner=HashPartitioner(p), skew_factor=50.0
        )
        for s in DEFAULT_STRATEGIES:
            plan = ccf.plan(join, s)
            pred = predicted[s]
            errors[s]["traffic"].append(
                abs(plan.traffic - pred.traffic) / pred.traffic
            )
            errors[s]["cct"].append(abs(plan.cct - pred.cct) / pred.cct)

    table = ResultTable(
        title="Analytic-model validation against tuple-level runs",
        columns=[
            "strategy",
            "traffic_err_mean_%",
            "traffic_err_max_%",
            "cct_err_mean_%",
            "cct_err_max_%",
        ],
    )
    for s in DEFAULT_STRATEGIES:
        tr = np.array(errors[s]["traffic"]) * 100
        ct = np.array(errors[s]["cct"]) * 100
        table.add_row(s, tr.mean(), tr.max(), ct.mean(), ct.max())
    table.add_note(
        f"{len(seeds)} seeds, SF {scale_factor}, {n_nodes} nodes, p={p}; "
        "errors are finite-sample noise of the tuple generator"
    )
    return table
