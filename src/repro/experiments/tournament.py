"""The scheduler tournament: rank every discipline on weighted CCT.

Reproduces the experimental-analysis methodology of Qiu, Stein & Zhong
(arXiv:1603.07981): run every registered scheduling discipline over a
grid of workload families x weight distributions, and report each run's
*optimality gap* -- achieved total weighted completion time divided by
the interval-indexed LP lower bound from :mod:`repro.network.bounds`.
A gap of 1.00 is provably optimal; the proven worst-case ratios (5 for
``wcct5``, 67/3 for ``lpcct``) are ceilings the empirical gaps stay far
below.

The grid is declared as a :class:`~repro.experiments.engine.SweepSpec`,
so ``ccf sweep tournament`` gets parallelism, retries and the
content-addressed cell cache for free; ``ccf tournament`` runs the same
grid and folds it into a ranked scorecard (one row per scheduler,
ordered by mean gap).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.engine import (
    Cell,
    SweepSpec,
    derive_seed,
    rows_to_table,
    run_sweep,
)
from repro.experiments.tables import ResultTable
from repro.network.bounds import weighted_cct_lower_bound
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import SCHEDULER_NAMES, make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix

__all__ = [
    "run_tournament",
    "tournament_sweep",
    "scorecard",
    "WORKLOAD_FAMILIES",
    "WEIGHT_DISTRIBUTIONS",
]

#: Workload families the tournament draws from.
WORKLOAD_FAMILIES = ("facebook", "uniform", "wide")

#: Coflow weight distributions layered over each family.
WEIGHT_DISTRIBUTIONS = ("unit", "zipf", "classes")

#: Proven approximation ratios -- tournament gaps must never exceed them.
PROVEN_RATIOS = {"wcct5": 5.0, "lpcct": 67.0 / 3.0}

_RATE = 128e6  # CoflowSim's 1 Gbps default, as elsewhere in the repo.


def _make_coflows(
    family: str, n_ports: int, n_coflows: int, seed: int
) -> list[Coflow]:
    """Draw one workload family deterministically from ``seed``."""
    if family == "facebook":
        return generate_coflow_mix(
            CoflowMixConfig(
                n_ports=n_ports,
                n_coflows=n_coflows,
                arrival_rate=2.0,
                seed=seed,
            )
        )
    rng = np.random.default_rng(seed)
    if family == "uniform":
        widths = rng.integers(1, 5, size=n_coflows)
        volume = lambda: float(rng.uniform(1e6, 50e6))  # noqa: E731
    elif family == "wide":
        widths = rng.integers(
            max(2, n_ports // 2), n_ports + 1, size=n_coflows
        )
        volume = lambda: float(rng.uniform(1e6, 20e6))  # noqa: E731
    else:
        raise ValueError(
            f"unknown workload family {family!r}; "
            f"choose from {WORKLOAD_FAMILIES}"
        )
    arrivals = np.cumsum(rng.exponential(0.5, size=n_coflows))
    coflows = []
    for k in range(n_coflows):
        flows = {}
        for _ in range(int(widths[k])):
            s, d = rng.choice(n_ports, size=2, replace=False)
            flows[(int(s), int(d))] = flows.get((int(s), int(d)), 0.0) + volume()
        coflows.append(
            Coflow(
                flows=[Flow(s, d, v) for (s, d), v in sorted(flows.items())],
                arrival_time=float(arrivals[k]),
                coflow_id=k,
            )
        )
    return coflows


def _assign_weights(
    coflows: list[Coflow], distribution: str, seed: int
) -> list[Coflow]:
    """Rebuild the coflows with weights drawn from ``distribution``."""
    rng = np.random.default_rng(seed)
    if distribution == "unit":
        weights = np.ones(len(coflows))
    elif distribution == "zipf":
        # Heavy-tailed integer weights, capped so one coflow cannot
        # dominate the whole objective.
        weights = np.minimum(rng.zipf(2.0, size=len(coflows)), 64).astype(float)
    elif distribution == "classes":
        # Two service classes: ~20% "interactive" coflows at weight 4.
        weights = np.where(rng.random(len(coflows)) < 0.2, 4.0, 1.0)
    else:
        raise ValueError(
            f"unknown weight distribution {distribution!r}; "
            f"choose from {WEIGHT_DISTRIBUTIONS}"
        )
    return [
        Coflow(
            flows=list(c.flows),
            arrival_time=c.arrival_time,
            coflow_id=c.coflow_id,
            name=c.name,
            deadline=c.deadline,
            weight=float(w),
        )
        for c, w in zip(coflows, weights)
    ]


def _tournament_cell(
    *,
    scheduler: str,
    family: str,
    weights: str,
    n_ports: int,
    n_coflows: int,
    seed: int,
) -> list:
    """One grid cell: one scheduler on one weighted workload.

    Returns
    -------
    list
        ``[scheduler, family, weights, weighted_avg_cct_s,
        weighted_completion_s, lp_bound_s, gap]`` row.  ``gap`` is the
        achieved total weighted completion time over the LP lower
        bound (>= 1.0).
    """
    coflows = _assign_weights(
        _make_coflows(family, n_ports, n_coflows, seed),
        weights,
        derive_seed(seed, "weights", weights),
    )
    fabric = Fabric(n_ports=n_ports, rate=_RATE)
    sim = CoflowSimulator(fabric, make_scheduler(scheduler))
    res = sim.run(coflows)
    achieved = sum(
        c.weight * res.completion_times[c.coflow_id] for c in coflows
    )
    w_total = sum(c.weight for c in coflows)
    w_cct = sum(c.weight * res.ccts[c.coflow_id] for c in coflows)
    bound = weighted_cct_lower_bound(coflows, fabric)
    return [
        scheduler,
        family,
        weights,
        w_cct / w_total,
        achieved,
        bound.lower_bound,
        bound.gap(achieved),
    ]


def tournament_sweep(
    *,
    n_ports: int = 24,
    n_coflows: int = 40,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    families: Sequence[str] = WORKLOAD_FAMILIES,
    weight_distributions: Sequence[str] = WEIGHT_DISTRIBUTIONS,
    quick: bool = False,
) -> SweepSpec:
    """The tournament grid as an engine sweep.

    Parameters
    ----------
    n_ports, n_coflows, seed:
        Instance shape and base seed (each family/weights pair derives
        its own stream deterministically).
    schedulers, families, weight_distributions:
        Grid axes; defaults cover every registered discipline.
    quick:
        Shrink to a 10-port, 10-coflow, facebook-only grid for smoke
        runs -- still every scheduler and two weight distributions.

    Returns
    -------
    SweepSpec
        One cell per (scheduler, family, weights) triple.
    """
    if quick:
        n_ports, n_coflows = 10, 10
        families = ("facebook",)
        weight_distributions = ("unit", "zipf")
    cells = [
        Cell(
            label=f"sched={s} family={f} weights={w}",
            params=dict(
                scheduler=s,
                family=f,
                weights=w,
                n_ports=n_ports,
                n_coflows=n_coflows,
                seed=derive_seed(seed, "tournament", f),
            ),
        )
        for f in families
        for w in weight_distributions
        for s in schedulers
    ]
    return SweepSpec(
        name="tournament",
        fn=_tournament_cell,
        cells=cells,
        assemble=rows_to_table(
            "Scheduler tournament: weighted CCT vs the LP lower bound",
            [
                "scheduler",
                "family",
                "weights",
                "w_avg_cct_s",
                "w_completion_s",
                "lp_bound_s",
                "gap",
            ],
            notes=(
                "gap = achieved sum(w*C) / interval-indexed LP lower bound "
                "(1.0 = provably optimal)",
                "proven ceilings: wcct5 <= 5x, lpcct <= 67/3x "
                "(Shafiee-Ghaderi; Qiu/Stein/Zhong)",
            ),
        ),
    )


def scorecard(grid: ResultTable) -> ResultTable:
    """Fold the tournament grid into a ranked per-scheduler scorecard.

    Rankings are by mean optimality gap across the grid (lower is
    better); ``wins`` counts the instances where the scheduler achieved
    the lowest weighted completion time (ties award every scheduler
    sharing the minimum).
    """
    schedulers = sorted(set(grid.column("scheduler")))
    instances: dict[tuple[str, str], dict[str, float]] = {}
    gaps: dict[str, list[float]] = {s: [] for s in schedulers}
    for row in grid.rows:
        sched, family, weights = row[0], row[1], row[2]
        achieved, gap = float(row[4]), float(row[6])
        gaps[sched].append(gap)
        instances.setdefault((family, weights), {})[sched] = achieved
    wins = {s: 0 for s in schedulers}
    for per_sched in instances.values():
        best = min(per_sched.values())
        for s, achieved in per_sched.items():
            if achieved <= best * (1 + 1e-9):
                wins[s] += 1
    table = ResultTable(
        "Tournament scorecard: schedulers ranked by mean optimality gap",
        ["rank", "scheduler", "mean_gap", "max_gap", "wins", "instances"],
    )
    ranked = sorted(
        schedulers, key=lambda s: (float(np.mean(gaps[s])), s)
    )
    for rank, s in enumerate(ranked, start=1):
        table.add_row(
            rank,
            s,
            float(np.mean(gaps[s])),
            float(np.max(gaps[s])),
            wins[s],
            len(gaps[s]),
        )
    table.add_note(
        "gap = sum(w*C) / LP lower bound; 1.0 means provably optimal"
    )
    return table


def run_tournament(
    *,
    n_ports: int = 24,
    n_coflows: int = 40,
    seed: int = 0,
    quick: bool = False,
) -> ResultTable:
    """Run the tournament grid and return the raw (unranked) table.

    ``ccf run tournament`` prints this grid; ``ccf tournament`` runs the
    same sweep and additionally folds it into :func:`scorecard`.
    """
    return run_sweep(
        tournament_sweep(
            n_ports=n_ports, n_coflows=n_coflows, seed=seed, quick=quick
        )
    ).table
