"""Broadcast-vs-repartition crossover experiment.

The cost-based physical-join choice (repro.analytics.compile) hinges on a
crossover: broadcasting the small side moves ``(n - 1) * |small|`` bytes
while repartitioning moves ``~|small| + |big|`` spread over ``n`` ports,
so broadcast wins for small clusters / tiny dimensions and loses as the
cluster grows.  With ``|big| = r * |small|`` the bandwidth crossover sits
near ``n = r + 1``.  This experiment sweeps the node count and reports
both plans' bandwidth-optimal CCTs plus the chooser's verdict.
"""

from __future__ import annotations

from repro.core.framework import CCF
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.join.broadcast import BroadcastJoin
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations

__all__ = ["run_broadcast_crossover", "crossover_sweep"]

#: Reduced grid behind ``ccf sweep crossover --quick``.
QUICK_NODES = (2, 4, 8, 16)


def _crossover_cell(*, n: int, scale_factor: float, seed: int) -> list:
    """One cluster size: cost both join plans and record the verdict.

    Parameters
    ----------
    n:
        Node count (the swept value).
    scale_factor, seed:
        TPC-H generator knobs.

    Returns
    -------
    list
        ``[n, broadcast_ms, repartition_ms, chooser]`` row.
    """
    customer, orders = generate_tpch_relations(
        TPCHConfig(n_nodes=n, scale_factor=scale_factor, skew=0.2, seed=seed)
    )
    join = DistributedJoin(
        customer,
        orders,
        partitioner=HashPartitioner(p=15 * n),
        skew_factor=50.0,
    )
    repart = CCF().plan(join, "ccf")
    bcast = BroadcastJoin(customer, orders, rate=repart.model.rate)
    b_cct = bcast.plan().cct
    return [
        n,
        b_cct * 1e3,
        repart.cct * 1e3,
        "broadcast" if b_cct < repart.cct else "repartition",
    ]


def crossover_sweep(
    *,
    nodes: tuple[int, ...] = (2, 4, 8, 12, 16, 24, 32),
    scale_factor: float = 0.002,
    seed: int = 2,
    quick: bool = False,
) -> SweepSpec:
    """The crossover sweep as an engine cell grid.

    Parameters
    ----------
    nodes, scale_factor, seed:
        As :func:`run_broadcast_crossover`.
    quick:
        Shrink the node grid to ``QUICK_NODES``.

    Returns
    -------
    SweepSpec
        One cell per node count.
    """
    if quick:
        nodes = QUICK_NODES
    cells = [
        Cell(
            label=f"nodes={n}",
            params=dict(n=n, scale_factor=scale_factor, seed=seed),
        )
        for n in nodes
    ]
    return SweepSpec(
        name="crossover",
        fn=_crossover_cell,
        cells=cells,
        assemble=rows_to_table(
            "Broadcast vs repartition: CCT (ms) over cluster size",
            ["nodes", "broadcast_ms", "repartition_ms", "chooser"],
            notes=(
                "ORDERS = 10 x CUSTOMER: uniform-placement theory puts the "
                "crossover near n = 11; zipf placement concentrates the "
                "broadcast send load on node 0 and pulls it a few nodes "
                "earlier",
            ),
        ),
    )


def run_broadcast_crossover(
    *,
    nodes: tuple[int, ...] = (2, 4, 8, 12, 16, 24, 32),
    scale_factor: float = 0.002,
    seed: int = 2,
) -> ResultTable:
    """Sweep node counts; compare broadcast and repartition CCTs.

    CUSTOMER (the small side) is 10x smaller than ORDERS, putting the
    theoretical crossover near n = 11.

    Parameters
    ----------
    nodes:
        Cluster sizes to sweep.
    scale_factor:
        TPC-H scale factor for the generated relations.
    seed:
        Relation-generator seed.

    Returns
    -------
    ResultTable
        One row per node count with both plans' CCTs and the chooser's
        verdict.
    """
    return run_sweep(
        crossover_sweep(nodes=nodes, scale_factor=scale_factor, seed=seed)
    ).table
