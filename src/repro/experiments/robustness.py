"""Robustness experiment: disciplines under fabric degradation.

The paper's long-term goal (§VI) is a system "always highly efficient and
robust in the presence of different workloads and network configurations".
This experiment quantifies the network-configuration half: the same CCF
coflow stream is executed on a healthy fabric and on one where a set of
ports degrades mid-run, and each discipline's CCT inflation is reported.
Adaptive (per-epoch re-allocating) disciplines absorb degradation better
than the uncoordinated baseline.
"""

from __future__ import annotations

from repro.core.framework import CCF
from repro.experiments.tables import ResultTable
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["run_robustness"]


def run_robustness(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    degrade_ports: tuple[int, ...] = (0, 1),
    degrade_factor: float = 0.25,
    degrade_at: float = 1.0,
    schedulers: tuple[str, ...] = ("fair", "wss", "sebf", "dclas"),
) -> ResultTable:
    """CCT inflation per discipline when ports degrade mid-run."""
    wl = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=scale_factor, partitions=4 * n_nodes
    )
    plan = CCF().plan(wl, "ccf")
    coflows = [
        plan.to_coflow(arrival_time=j * inter_arrival) for j in range(n_jobs)
    ]
    fabric = Fabric(n_ports=n_nodes, rate=plan.model.rate)

    table = ResultTable(
        title="Robustness: average CCT (s) with mid-run port degradation",
        columns=["scheduler", "healthy", "degraded", "inflation_x"],
    )
    for name in schedulers:
        healthy = CoflowSimulator(fabric, make_scheduler(name)).run(coflows)
        dyn = FabricDynamics.degrade(
            time=degrade_at,
            ports=list(degrade_ports),
            factor=degrade_factor,
            fabric=fabric,
        )
        degraded = CoflowSimulator(
            fabric, make_scheduler(name), dynamics=dyn
        ).run(coflows)
        table.add_row(
            name,
            healthy.average_cct,
            degraded.average_cct,
            degraded.average_cct / healthy.average_cct
            if healthy.average_cct
            else float("nan"),
        )
    table.add_note(
        f"ports {list(degrade_ports)} drop to {degrade_factor:.0%} of their "
        f"rate at t={degrade_at}s; {n_jobs} CCF join coflows in flight"
    )
    return table
