"""Robustness experiments: disciplines under degradation and node loss.

The paper's long-term goal (§VI) is a system "always highly efficient and
robust in the presence of different workloads and network configurations".
These experiments quantify the network-configuration half:

* :func:`run_robustness` -- the same CCF coflow stream executed on a
  healthy fabric, on one where ports degrade mid-run, and under a seeded
  chaos schedule of full port failures (repaired after an MTTR), with the
  failure-log summary surfaced per discipline.
* :func:`run_failure_recovery` -- schedulers x recovery policies under a
  deterministic mid-run node loss: how much completion time, lost bytes
  and failed work each *recovery* strategy (abort / retry / replan)
  costs, per scheduling discipline.
"""

from __future__ import annotations

from repro.core.framework import CCF
from repro.experiments.tables import ResultTable
from repro.network.chaos import ChaosConfig, chaos_schedule
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = ["run_robustness", "run_failure_recovery"]


def _ccf_coflows(n_nodes: int, scale_factor: float, n_jobs: int,
                 inter_arrival: float):
    from repro.workloads.analytic import AnalyticJoinWorkload

    wl = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=scale_factor, partitions=4 * n_nodes
    )
    plan = CCF().plan(wl, "ccf")
    coflows = [
        plan.to_coflow(arrival_time=j * inter_arrival) for j in range(n_jobs)
    ]
    return coflows, Fabric(n_ports=n_nodes, rate=plan.model.rate)


def run_robustness(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    degrade_ports: tuple[int, ...] = (0, 1),
    degrade_factor: float = 0.25,
    degrade_at: float = 1.0,
    schedulers: tuple[str, ...] = ("fair", "wss", "sebf", "dclas"),
    seed: int = 0,
    chaos_mtbf: float = 2.0,
    chaos_mttr: float = 2.0,
    chaos_horizon: float = 8.0,
) -> ResultTable:
    """CCT inflation per discipline under degradation and port failures.

    The ``seed`` drives the chaos schedule, so equal seeds reproduce the
    exact same fault sequence (and therefore the same table) run-to-run.
    All chaos failures are repaired, and flows are recovered with the
    ``replan`` policy; the failure-log summary columns report how much
    recovery work that took.
    """
    coflows, fabric = _ccf_coflows(n_nodes, scale_factor, n_jobs, inter_arrival)

    chaos = chaos_schedule(
        ChaosConfig(
            mtbf=chaos_mtbf,
            mttr=chaos_mttr,
            horizon=chaos_horizon,
            seed=seed,
        ),
        fabric,
    )

    table = ResultTable(
        title="Robustness: average CCT (s) under degradation and node loss",
        columns=[
            "scheduler",
            "healthy",
            "degraded",
            "inflation_x",
            "chaos",
            "port_failures",
            "reroutes",
            "bytes_lost",
        ],
    )
    for name in schedulers:
        healthy = CoflowSimulator(fabric, make_scheduler(name)).run(coflows)
        dyn = FabricDynamics.degrade(
            time=degrade_at,
            ports=list(degrade_ports),
            factor=degrade_factor,
            fabric=fabric,
        )
        degraded = CoflowSimulator(
            fabric, make_scheduler(name), dynamics=dyn
        ).run(coflows)
        chaotic = CoflowSimulator(
            fabric,
            make_scheduler(name),
            dynamics=chaos,
            recovery="replan",
        ).run(coflows)
        summary = chaotic.failure_summary()
        table.add_row(
            name,
            healthy.average_cct,
            degraded.average_cct,
            degraded.average_cct / healthy.average_cct
            if healthy.average_cct
            else float("nan"),
            chaotic.average_cct,
            summary["port_failures"],
            summary["reroutes"],
            summary["bytes_lost"],
        )
    table.add_note(
        f"ports {list(degrade_ports)} drop to {degrade_factor:.0%} of their "
        f"rate at t={degrade_at}s; {n_jobs} CCF join coflows in flight"
    )
    table.add_note(
        f"chaos column: seeded (seed={seed}) MTBF={chaos_mtbf}s / "
        f"MTTR={chaos_mttr}s full port failures, replan recovery"
    )
    return table


def run_failure_recovery(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    fail_ports: tuple[int, ...] = (0,),
    fail_at: float = 0.1,
    recover_at: float = 12.0,
    fail_direction: str = "ingress",
    schedulers: tuple[str, ...] = ("fair", "sebf", "dclas"),
    policies: tuple[str, ...] = ("abort", "retry", "replan"),
) -> ResultTable:
    """Schedulers x recovery policies under a deterministic node loss.

    One node dies mid-run and comes back much later; each recovery policy
    pays a different price: ``abort`` loses whole coflows, ``retry``
    waits out the downtime and re-sends lost progress, ``replan``
    reassigns the lost chunks to survivors immediately.

    The default ``fail_direction="ingress"`` models a receiver-side loss
    (reducer/storage dies, map outputs stay readable) -- the case where
    replanning chunk placement can actually route around the hole.  With
    ``"both"`` (full node loss) the dead node's *source* data is gone
    too, so every policy must wait for the repair and replan's edge
    shrinks to its rerouted receive side.
    """
    coflows, fabric = _ccf_coflows(n_nodes, scale_factor, n_jobs, inter_arrival)

    table = ResultTable(
        title="Failure recovery: cost of node loss per scheduler x policy",
        columns=[
            "scheduler",
            "policy",
            "avg_cct",
            "completed",
            "failed",
            "restarts",
            "reroutes",
            "bytes_lost",
        ],
    )
    for name in schedulers:
        for policy in policies:
            dyn = FabricDynamics.fail(
                time=fail_at,
                ports=list(fail_ports),
                fabric=fabric,
                recover_at=recover_at,
                direction=fail_direction,
            )
            res = CoflowSimulator(
                fabric, make_scheduler(name), dynamics=dyn, recovery=policy
            ).run(coflows)
            summary = res.failure_summary()
            table.add_row(
                name,
                policy,
                res.average_cct,
                len(res.ccts),
                len(res.failed_coflows),
                summary["restarts"],
                summary["reroutes"],
                summary["bytes_lost"],
            )
    table.add_note(
        f"ports {list(fail_ports)} lose their {fail_direction} side at "
        f"t={fail_at}s and recover at t={recover_at}s; "
        f"{n_jobs} CCF join coflows in flight"
    )
    return table
