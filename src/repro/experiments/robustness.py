"""Robustness experiments: disciplines under degradation and node loss.

The paper's long-term goal (§VI) is a system "always highly efficient and
robust in the presence of different workloads and network configurations".
These experiments quantify the network-configuration half:

* :func:`run_robustness` -- the same CCF coflow stream executed on a
  healthy fabric, on one where ports degrade mid-run, and under a seeded
  chaos schedule of full port failures (repaired after an MTTR), with the
  failure-log summary surfaced per discipline.
* :func:`run_failure_recovery` -- schedulers x recovery policies under a
  deterministic mid-run node loss: how much completion time, lost bytes
  and failed work each *recovery* strategy (abort / retry / replan)
  costs, per scheduling discipline.
"""

from __future__ import annotations

from repro.core.framework import CCF
from repro.experiments.engine import Cell, SweepSpec, rows_to_table, run_sweep
from repro.experiments.tables import ResultTable
from repro.network.chaos import ChaosConfig, chaos_schedule
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator

__all__ = [
    "run_robustness",
    "run_failure_recovery",
    "robustness_sweep",
    "recovery_sweep",
]


def _ccf_coflows(n_nodes: int, scale_factor: float, n_jobs: int,
                 inter_arrival: float):
    from repro.workloads.analytic import AnalyticJoinWorkload

    wl = AnalyticJoinWorkload(
        n_nodes=n_nodes, scale_factor=scale_factor, partitions=4 * n_nodes
    )
    plan = CCF().plan(wl, "ccf")
    coflows = [
        plan.to_coflow(arrival_time=j * inter_arrival) for j in range(n_jobs)
    ]
    return coflows, Fabric(n_ports=n_nodes, rate=plan.model.rate)


def _robustness_cell(
    *,
    scheduler: str,
    n_nodes: int,
    scale_factor: float,
    n_jobs: int,
    inter_arrival: float,
    degrade_ports: list,
    degrade_factor: float,
    degrade_at: float,
    seed: int,
    chaos_mtbf: float,
    chaos_mttr: float,
    chaos_horizon: float,
) -> list:
    """One discipline row: healthy / degraded / chaotic runs of the stream.

    Parameters
    ----------
    scheduler:
        Discipline name (the swept value).
    n_nodes, scale_factor, n_jobs, inter_arrival:
        Workload and stream knobs.
    degrade_ports, degrade_factor, degrade_at:
        Degradation scenario for the middle column.
    seed, chaos_mtbf, chaos_mttr, chaos_horizon:
        Seeded chaos schedule for the last columns.

    Returns
    -------
    list
        ``[scheduler, healthy, degraded, inflation_x, chaos,
        port_failures, reroutes, bytes_lost]`` row.
    """
    coflows, fabric = _ccf_coflows(n_nodes, scale_factor, n_jobs, inter_arrival)
    chaos = chaos_schedule(
        ChaosConfig(
            mtbf=chaos_mtbf, mttr=chaos_mttr, horizon=chaos_horizon, seed=seed
        ),
        fabric,
    )
    healthy = CoflowSimulator(fabric, make_scheduler(scheduler)).run(coflows)
    dyn = FabricDynamics.degrade(
        time=degrade_at,
        ports=list(degrade_ports),
        factor=degrade_factor,
        fabric=fabric,
    )
    degraded = CoflowSimulator(
        fabric, make_scheduler(scheduler), dynamics=dyn
    ).run(coflows)
    chaotic = CoflowSimulator(
        fabric,
        make_scheduler(scheduler),
        dynamics=chaos,
        recovery="replan",
    ).run(coflows)
    summary = chaotic.failure_summary()
    return [
        scheduler,
        healthy.average_cct,
        degraded.average_cct,
        degraded.average_cct / healthy.average_cct
        if healthy.average_cct
        else float("nan"),
        chaotic.average_cct,
        summary["port_failures"],
        summary["reroutes"],
        summary["bytes_lost"],
    ]


def robustness_sweep(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    degrade_ports: tuple[int, ...] = (0, 1),
    degrade_factor: float = 0.25,
    degrade_at: float = 1.0,
    schedulers: tuple[str, ...] = ("fair", "wss", "sebf", "dclas"),
    seed: int = 0,
    chaos_mtbf: float = 2.0,
    chaos_mttr: float = 2.0,
    chaos_horizon: float = 8.0,
    quick: bool = False,
) -> SweepSpec:
    """The robustness study as an engine cell grid (one cell per discipline).

    Parameters
    ----------
    n_nodes, scale_factor, n_jobs, inter_arrival, degrade_ports,
    degrade_factor, degrade_at, schedulers, seed, chaos_mtbf, chaos_mttr,
    chaos_horizon:
        As :func:`run_robustness`.
    quick:
        Shrink the workload (8 nodes, SF 0.2, 2 jobs) and drop to two
        disciplines.

    Returns
    -------
    SweepSpec
        One cell per scheduler.
    """
    if quick:
        n_nodes, scale_factor, n_jobs = 8, 0.2, 2
        schedulers = ("fair", "sebf")
    cells = [
        Cell(
            label=f"scheduler={name}",
            params=dict(
                scheduler=name,
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                n_jobs=n_jobs,
                inter_arrival=inter_arrival,
                degrade_ports=list(degrade_ports),
                degrade_factor=degrade_factor,
                degrade_at=degrade_at,
                seed=seed,
                chaos_mtbf=chaos_mtbf,
                chaos_mttr=chaos_mttr,
                chaos_horizon=chaos_horizon,
            ),
        )
        for name in schedulers
    ]
    return SweepSpec(
        name="robustness",
        fn=_robustness_cell,
        cells=cells,
        assemble=rows_to_table(
            "Robustness: average CCT (s) under degradation and node loss",
            [
                "scheduler",
                "healthy",
                "degraded",
                "inflation_x",
                "chaos",
                "port_failures",
                "reroutes",
                "bytes_lost",
            ],
            notes=(
                f"ports {list(degrade_ports)} drop to {degrade_factor:.0%} of "
                f"their rate at t={degrade_at}s; {n_jobs} CCF join coflows in "
                "flight",
                f"chaos column: seeded (seed={seed}) MTBF={chaos_mtbf}s / "
                f"MTTR={chaos_mttr}s full port failures, replan recovery",
            ),
        ),
    )


def run_robustness(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    degrade_ports: tuple[int, ...] = (0, 1),
    degrade_factor: float = 0.25,
    degrade_at: float = 1.0,
    schedulers: tuple[str, ...] = ("fair", "wss", "sebf", "dclas"),
    seed: int = 0,
    chaos_mtbf: float = 2.0,
    chaos_mttr: float = 2.0,
    chaos_horizon: float = 8.0,
) -> ResultTable:
    """CCT inflation per discipline under degradation and port failures.

    The ``seed`` drives the chaos schedule, so equal seeds reproduce the
    exact same fault sequence (and therefore the same table) run-to-run.
    All chaos failures are repaired, and flows are recovered with the
    ``replan`` policy; the failure-log summary columns report how much
    recovery work that took.

    Parameters
    ----------
    n_nodes, scale_factor:
        Workload size knobs.
    n_jobs, inter_arrival:
        Stream shape: job count and arrival spacing in seconds.
    degrade_ports, degrade_factor, degrade_at:
        Which ports degrade, to what fraction of their rate, and when.
    schedulers:
        Disciplines forming the rows.
    seed:
        Chaos-schedule seed.
    chaos_mtbf, chaos_mttr, chaos_horizon:
        Chaos process: mean time between failures / to repair, and the
        injection horizon, all in seconds.

    Returns
    -------
    ResultTable
        One row per discipline with healthy / degraded / chaotic CCTs
        and the chaotic run's failure-log summary.
    """
    return run_sweep(
        robustness_sweep(
            n_nodes=n_nodes,
            scale_factor=scale_factor,
            n_jobs=n_jobs,
            inter_arrival=inter_arrival,
            degrade_ports=degrade_ports,
            degrade_factor=degrade_factor,
            degrade_at=degrade_at,
            schedulers=schedulers,
            seed=seed,
            chaos_mtbf=chaos_mtbf,
            chaos_mttr=chaos_mttr,
            chaos_horizon=chaos_horizon,
        )
    ).table


def _recovery_cell(
    *,
    scheduler: str,
    policy: str,
    n_nodes: int,
    scale_factor: float,
    n_jobs: int,
    inter_arrival: float,
    fail_ports: list,
    fail_at: float,
    recover_at: float,
    fail_direction: str,
) -> list:
    """One (scheduler, policy) pair under the deterministic node loss.

    Parameters
    ----------
    scheduler, policy:
        The swept pair: scheduling discipline and recovery policy.
    n_nodes, scale_factor, n_jobs, inter_arrival:
        Workload and stream knobs.
    fail_ports, fail_at, recover_at, fail_direction:
        The failure scenario.

    Returns
    -------
    list
        ``[scheduler, policy, avg_cct, completed, failed, restarts,
        reroutes, bytes_lost]`` row.
    """
    coflows, fabric = _ccf_coflows(n_nodes, scale_factor, n_jobs, inter_arrival)
    dyn = FabricDynamics.fail(
        time=fail_at,
        ports=list(fail_ports),
        fabric=fabric,
        recover_at=recover_at,
        direction=fail_direction,
    )
    res = CoflowSimulator(
        fabric, make_scheduler(scheduler), dynamics=dyn, recovery=policy
    ).run(coflows)
    summary = res.failure_summary()
    return [
        scheduler,
        policy,
        res.average_cct,
        len(res.ccts),
        len(res.failed_coflows),
        summary["restarts"],
        summary["reroutes"],
        summary["bytes_lost"],
    ]


def recovery_sweep(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    fail_ports: tuple[int, ...] = (0,),
    fail_at: float = 0.1,
    recover_at: float = 12.0,
    fail_direction: str = "ingress",
    schedulers: tuple[str, ...] = ("fair", "sebf", "dclas"),
    policies: tuple[str, ...] = ("abort", "retry", "replan"),
    quick: bool = False,
) -> SweepSpec:
    """The recovery study as an engine grid (one cell per scheduler x policy).

    Parameters
    ----------
    n_nodes, scale_factor, n_jobs, inter_arrival, fail_ports, fail_at,
    recover_at, fail_direction, schedulers, policies:
        As :func:`run_failure_recovery`.
    quick:
        Shrink the workload (8 nodes, SF 0.2, 2 jobs) and drop to one
        discipline.

    Returns
    -------
    SweepSpec
        One cell per (scheduler, policy) pair, scheduler-major order.
    """
    if quick:
        n_nodes, scale_factor, n_jobs = 8, 0.2, 2
        schedulers = ("sebf",)
    cells = [
        Cell(
            label=f"scheduler={name} policy={policy}",
            params=dict(
                scheduler=name,
                policy=policy,
                n_nodes=n_nodes,
                scale_factor=scale_factor,
                n_jobs=n_jobs,
                inter_arrival=inter_arrival,
                fail_ports=list(fail_ports),
                fail_at=fail_at,
                recover_at=recover_at,
                fail_direction=fail_direction,
            ),
        )
        for name in schedulers
        for policy in policies
    ]
    return SweepSpec(
        name="recovery",
        fn=_recovery_cell,
        cells=cells,
        assemble=rows_to_table(
            "Failure recovery: cost of node loss per scheduler x policy",
            [
                "scheduler",
                "policy",
                "avg_cct",
                "completed",
                "failed",
                "restarts",
                "reroutes",
                "bytes_lost",
            ],
            notes=(
                f"ports {list(fail_ports)} lose their {fail_direction} side "
                f"at t={fail_at}s and recover at t={recover_at}s; "
                f"{n_jobs} CCF join coflows in flight",
            ),
        ),
    )


def run_failure_recovery(
    *,
    n_nodes: int = 16,
    scale_factor: float = 0.4,
    n_jobs: int = 4,
    inter_arrival: float = 1.0,
    fail_ports: tuple[int, ...] = (0,),
    fail_at: float = 0.1,
    recover_at: float = 12.0,
    fail_direction: str = "ingress",
    schedulers: tuple[str, ...] = ("fair", "sebf", "dclas"),
    policies: tuple[str, ...] = ("abort", "retry", "replan"),
) -> ResultTable:
    """Schedulers x recovery policies under a deterministic node loss.

    One node dies mid-run and comes back much later; each recovery policy
    pays a different price: ``abort`` loses whole coflows, ``retry``
    waits out the downtime and re-sends lost progress, ``replan``
    reassigns the lost chunks to survivors immediately.

    The default ``fail_direction="ingress"`` models a receiver-side loss
    (reducer/storage dies, map outputs stay readable) -- the case where
    replanning chunk placement can actually route around the hole.  With
    ``"both"`` (full node loss) the dead node's *source* data is gone
    too, so every policy must wait for the repair and replan's edge
    shrinks to its rerouted receive side.

    Parameters
    ----------
    n_nodes, scale_factor:
        Workload size knobs.
    n_jobs, inter_arrival:
        Stream shape: job count and arrival spacing in seconds.
    fail_ports, fail_at, recover_at, fail_direction:
        The failure scenario: which ports die, when, when they repair,
        and which side ("ingress"/"egress"/"both") is lost.
    schedulers, policies:
        Disciplines and recovery policies forming the row grid.

    Returns
    -------
    ResultTable
        One row per (scheduler, policy) pair.
    """
    return run_sweep(
        recovery_sweep(
            n_nodes=n_nodes,
            scale_factor=scale_factor,
            n_jobs=n_jobs,
            inter_arrival=inter_arrival,
            fail_ports=fail_ports,
            fail_at=fail_at,
            recover_at=recover_at,
            fail_direction=fail_direction,
            schedulers=schedulers,
            policies=policies,
        )
    ).table
