"""``repro.obs`` -- observability for the CCF pipeline.

A zero-overhead-when-disabled instrumentation layer threaded through the
simulator, schedulers, planners and job executor:

* :class:`Instrumentation` -- the no-op hook surface the pipeline calls
  into (coflow lifecycle, epoch samples, failures, planner phases,
  stage attempts).
* :class:`Tracer` -- the recording implementation: one structured event
  stream plus a live :class:`MetricsRegistry`.
* Exporters -- JSONL (canonical interchange), Chrome ``trace_event``
  JSON (Perfetto / ``chrome://tracing``), Prometheus text.
* :func:`summarize_trace` / ``ccf stats`` -- CCT percentiles, per-port
  bottleneck attribution, failure counts from a captured trace.
* :func:`repro_header` -- the provenance record embedded in every
  trace / bench / report artifact.
"""

from repro.obs.exporters import (
    TRACE_FORMATS,
    StreamingTracer,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_trace,
)
from repro.obs.header import git_describe, repro_header
from repro.obs.instrument import Instrumentation, MultiInstrumentation, Tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.stats import (
    names_from_trace,
    render_summary,
    result_from_trace,
    steady_state_stats,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "MultiInstrumentation",
    "StreamingTracer",
    "TRACE_FORMATS",
    "Tracer",
    "git_describe",
    "names_from_trace",
    "read_jsonl",
    "render_prometheus",
    "render_summary",
    "repro_header",
    "result_from_trace",
    "steady_state_stats",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "write_trace",
]
