"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, Prometheus text.

All three consume the same event stream a :class:`repro.obs.Tracer`
records (see :mod:`repro.obs.instrument` for the schema):

* **JSONL** -- one JSON object per line, reproducibility header first.
  The canonical interchange format: ``ccf stats``, ``ccf gantt
  --from-trace`` and ``ccf report --from-trace`` all read it back.
* **Chrome trace** -- the ``trace_event`` array format understood by
  Perfetto and ``chrome://tracing``: coflow lifetimes as duration
  events on a "coflows" process, per-port busy intervals as a Gantt on
  a "ports" process, counter tracks for flows in flight and aggregate
  rate, instant events for failures.
* **Prometheus** -- text exposition dump of the metrics registry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.obs.instrument import Tracer
from repro.obs.metrics import MetricsRegistry, render_prometheus

__all__ = [
    "StreamingTracer",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "write_trace",
    "TRACE_FORMATS",
]

TRACE_FORMATS = ("jsonl", "chrome", "prom")

#: trace_event pids: one synthetic "process" per track family.
_PID_COFLOWS = 1
_PID_PORTS = 2
_PID_CONTROL = 3

_US = 1e6  # trace_event timestamps are microseconds


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def write_jsonl(
    path: str | Path,
    events: Sequence[dict[str, Any]],
    header: dict[str, Any] | None = None,
) -> int:
    """Write header + events, one JSON object per line; returns #lines."""
    lines = [json.dumps({"kind": "header", **(header or {})})]
    lines += [json.dumps(e) for e in events]
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def read_jsonl(
    path: str | Path,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a JSONL trace back as ``(header, events)``."""
    header: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError(f"{path}:{lineno}: not a trace record")
        if record["kind"] == "header":
            header = {k: v for k, v in record.items() if k != "kind"}
        else:
            events.append(record)
    return header, events


class StreamingTracer(Tracer):
    """A :class:`Tracer` that flushes its events to a JSONL file as it goes.

    The plain tracer accumulates every event in RAM, which is fine for
    batch runs but unbounded for the open-loop service mode (millions of
    epochs).  This variant writes the reproducibility header line on
    construction and appends events to the file every ``flush_every``
    emissions, keeping at most that many events in memory.  The on-disk
    result is byte-identical to :func:`write_jsonl` of an equivalent
    in-RAM tracer; :func:`read_jsonl` reads it back unchanged.

    The metrics registry still aggregates over the *whole* run (it is
    O(metric names), not O(events)), so ``ccf stats``-style counters
    survive the flushes.  ``close()`` flushes the tail and closes the
    file; it is idempotent.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        flush_every: int = 4096,
        header: dict[str, Any] | None = None,
        sample_ports: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if flush_every <= 0:
            raise ValueError(
                f"flush_every must be positive, got {flush_every}"
            )
        super().__init__(
            header=header, sample_ports=sample_ports, metrics=metrics
        )
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.events_written = 0
        self._fh = self.path.open("w")
        self._fh.write(json.dumps({"kind": "header", **self.header}) + "\n")

    def _emit(self, kind: str, t: float, **fields: Any) -> None:
        super()._emit(kind, t, **fields)
        if len(self.events) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Append buffered events to the file and drop them from RAM."""
        if self._fh.closed or not self.events:
            return
        self._fh.write(
            "".join(json.dumps(e) + "\n" for e in self.events)
        )
        self._fh.flush()
        self.events_written += len(self.events)
        self.events.clear()

    def close(self) -> None:
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def _meta(pid: int, name: str) -> dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def to_chrome_trace(
    events: Sequence[dict[str, Any]],
    header: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Convert an event stream to the Chrome ``trace_event`` JSON object.

    Loadable in Perfetto / ``chrome://tracing``; simulation seconds map
    to trace microseconds, so one trace "second" is one simulated
    microsecond-scale tick regardless of the simulated clock range.
    """
    out: list[dict[str, Any]] = [
        _meta(_PID_COFLOWS, "coflows"),
        _meta(_PID_PORTS, "ports"),
        _meta(_PID_CONTROL, "control"),
    ]
    admit: dict[int, float] = {}
    names: dict[int, str] = {}
    for e in events:
        kind, t = e["kind"], e["t"]
        if kind == "coflow_submit":
            names[e["cid"]] = e.get("name") or f"cf{e['cid']}"
        elif kind == "coflow_admit":
            admit[e["cid"]] = t
        elif kind in ("coflow_complete", "coflow_abort"):
            cid = e["cid"]
            start = admit.pop(cid, t)
            label = names.get(cid, f"cf{cid}")
            if kind == "coflow_abort":
                label += " [aborted]"
            out.append(
                {
                    "name": label,
                    "cat": "coflow",
                    "ph": "X",
                    "ts": start * _US,
                    "dur": max(t - start, 0.0) * _US,
                    "pid": _PID_COFLOWS,
                    "tid": cid,
                    "args": {k: v for k, v in e.items() if k != "kind"},
                }
            )
        elif kind == "epoch":
            out.append(
                {
                    "name": "active_flows",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": _PID_CONTROL,
                    "tid": 0,
                    "args": {"flows": e["flows"]},
                }
            )
            out.append(
                {
                    "name": "aggregate_rate",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": _PID_CONTROL,
                    "tid": 0,
                    "args": {"bytes_per_s": e["rate"]},
                }
            )
            send = e.get("port_busy_send")
            recv = e.get("port_busy_recv")
            if send is not None and recv is not None:
                for port, (s, r) in enumerate(zip(send, recv)):
                    busy = max(s, r)
                    if busy <= 0.0:
                        continue
                    out.append(
                        {
                            "name": f"busy {busy:.0%}",
                            "cat": "port",
                            "ph": "X",
                            "ts": t * _US,
                            "dur": e["dur"] * _US,
                            "pid": _PID_PORTS,
                            "tid": port,
                            "args": {"send": s, "recv": r},
                        }
                    )
        elif kind == "failure":
            out.append(
                {
                    "name": e["failure_kind"],
                    "cat": "failure",
                    "ph": "i",
                    "s": "g",
                    "ts": t * _US,
                    "pid": _PID_CONTROL,
                    "tid": 0,
                    "args": {k: v for k, v in e.items() if k != "kind"},
                }
            )
        elif kind == "stage_attempt":
            out.append(
                {
                    "name": f"{e['stage']}#{e['attempt']}",
                    "cat": "stage",
                    "ph": "X",
                    "ts": t * _US,
                    "dur": e["dur"] * _US,
                    "pid": _PID_CONTROL,
                    "tid": 1,
                    "args": {k: v for k, v in e.items() if k != "kind"},
                }
            )
        elif kind == "planner_phase":
            out.append(
                {
                    "name": f"plan {e['stage']}",
                    "cat": "planner",
                    "ph": "i",
                    "s": "t",
                    "ts": t * _US,
                    "pid": _PID_CONTROL,
                    "tid": 2,
                    "args": {k: v for k, v in e.items() if k != "kind"},
                }
            )
    # Coflows still admitted at stream end (aborted runs cut short).
    for cid, start in admit.items():
        out.append(
            {
                "name": names.get(cid, f"cf{cid}") + " [unfinished]",
                "cat": "coflow",
                "ph": "X",
                "ts": start * _US,
                "dur": 0,
                "pid": _PID_COFLOWS,
                "tid": cid,
                "args": {},
            }
        )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "metadata": dict(header or {}),
    }


def write_chrome_trace(
    path: str | Path,
    events: Sequence[dict[str, Any]],
    header: dict[str, Any] | None = None,
) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    doc = to_chrome_trace(events, header)
    Path(path).write_text(json.dumps(doc, indent=1) + "\n")
    return len(doc["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus
# ---------------------------------------------------------------------------


def write_prometheus(
    path: str | Path,
    metrics: MetricsRegistry,
    header: dict[str, Any] | None = None,
) -> int:
    """Write the metrics registry in text exposition format."""
    text = render_prometheus(metrics)
    if header:
        preamble = "".join(
            f"# {k}: {json.dumps(v)}\n" for k, v in sorted(header.items())
        )
        text = preamble + text
    Path(path).write_text(text)
    return text.count("\n")


def write_trace(tracer: Tracer, path: str | Path, fmt: str = "jsonl") -> int:
    """Write a tracer's capture in the requested format; returns a count.

    ``jsonl``/``chrome`` return the number of records written; ``prom``
    the number of text lines.
    """
    if fmt == "jsonl":
        return write_jsonl(path, tracer.events, tracer.header)
    if fmt == "chrome":
        return write_chrome_trace(path, tracer.events, tracer.header)
    if fmt == "prom":
        return write_prometheus(path, tracer.metrics, tracer.header)
    raise ValueError(f"unknown trace format {fmt!r}; pick from {TRACE_FORMATS}")
