"""Trace analysis behind ``ccf stats``: summarize a captured JSONL trace.

Computes, from the one event stream alone (no re-simulation):

* coflow lifecycle counts and the CCT distribution (p50/p95/p99, mean,
  max) -- the paper's headline metric;
* per-port bottleneck attribution: which send/recv port was the most
  utilized in each epoch, weighted by epoch duration -- the empirical
  counterpart of the paper's ``T = max(max_i send_i, max_j recv_j)``;
* failure/recovery counters and bytes lost;
* epoch statistics (count, busy time, mean duration).

Also reconstructs a :class:`~repro.network.simulator.SimulationResult`
from a trace so the existing text visualizations (``gantt``,
``throughput_sparkline``) render without re-running the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network -> obs)
    from repro.network.simulator import SimulationResult

__all__ = [
    "summarize_trace",
    "result_from_trace",
    "names_from_trace",
    "render_summary",
    "steady_state_stats",
]


def names_from_trace(events: Sequence[dict[str, Any]]) -> dict[int, str]:
    """Coflow id -> display name, from the submit events."""
    return {
        e["cid"]: (e.get("name") or f"cf{e['cid']}")
        for e in events
        if e["kind"] == "coflow_submit"
    }


def result_from_trace(events: Sequence[dict[str, Any]]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` view from a JSONL event stream.

    Faithful for everything the consumers here need: completion times,
    CCTs, failed coflows, makespan, total bytes, the epoch timeline and
    the failure log.  (``n_epochs`` equals the number of epoch samples
    in the trace.)
    """
    # Imported here, not at module level: the simulator itself imports
    # repro.obs, and this is the one obs module that needs it back.
    from repro.network.recovery import FailureRecord
    from repro.network.simulator import Epoch, SimulationResult

    arrivals: dict[int, float] = {}
    volumes: dict[int, float] = {}
    completion: dict[int, float] = {}
    failed: dict[int, float] = {}
    epochs: list[Epoch] = []
    failures: list[FailureRecord] = []
    makespan = 0.0
    for e in events:
        kind = e["kind"]
        if kind == "coflow_submit":
            arrivals[e["cid"]] = e["arrival"]
            volumes[e["cid"]] = e["volume"]
        elif kind == "coflow_complete":
            completion[e["cid"]] = e["t"]
        elif kind == "coflow_abort":
            failed[e["cid"]] = e["t"]
        elif kind == "epoch":
            epochs.append(
                Epoch(
                    start=e["t"],
                    duration=e["dur"],
                    active_flows=e["flows"],
                    aggregate_rate=e["rate"],
                )
            )
        elif kind == "failure":
            failures.append(
                FailureRecord(
                    time=e["t"],
                    kind=e["failure_kind"],
                    port=e.get("port", -1),
                    coflow_id=e.get("cid", -1),
                    flows=e.get("flows", 0),
                    bytes_lost=e.get("bytes_lost", 0.0),
                    detail=e.get("detail", ""),
                )
            )
        elif kind == "run_end":
            makespan = e.get("makespan", makespan)
    ccts = {
        cid: t - arrivals.get(cid, 0.0) for cid, t in completion.items()
    }
    return SimulationResult(
        completion_times=completion,
        ccts=ccts,
        makespan=makespan or (max(completion.values()) if completion else 0.0),
        total_bytes=float(sum(volumes.values())),
        epochs=epochs,
        failures=failures,
        failed_coflows=failed,
        n_epochs=len(epochs),
    )


def _percentiles(values: list[float]) -> dict[str, float]:
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


def _weighted_percentiles(
    values: list[float], weights: list[float]
) -> dict[str, float]:
    """Weight-aware CCT distribution (lower weighted quantiles).

    ``pNN`` is the smallest value whose cumulative weight reaches NN% of
    the total -- with unit weights this coincides with the ordinary
    lower empirical quantile.  ``mean`` is the weighted mean and
    ``sum`` the weighted-CCT objective ``sum(w * cct)`` the
    approximation schedulers optimize.
    """
    if not values:
        return {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "mean": 0.0, "max": 0.0, "sum": 0.0,
        }
    arr = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    order = np.argsort(arr, kind="stable")
    arr, w = arr[order], w[order]
    cum = np.cumsum(w)
    total = cum[-1]
    out = {}
    for q in (50, 95, 99):
        idx = int(np.searchsorted(cum, q / 100.0 * total, side="left"))
        out[f"p{q}"] = float(arr[min(idx, arr.size - 1)])
    out["mean"] = float((w * arr).sum() / total)
    out["max"] = float(arr.max())
    out["sum"] = float((w * arr).sum())
    return out


def _port_attribution(
    events: Sequence[dict[str, Any]], top_k: int
) -> dict[str, Any] | None:
    """Duration-weighted 'who was the bottleneck port' decomposition."""
    busy_s: dict[tuple[str, int], float] = {}
    attributed: dict[tuple[str, int], float] = {}
    total = 0.0
    sampled = False
    for e in events:
        if e["kind"] != "epoch":
            continue
        send, recv = e.get("port_busy_send"), e.get("port_busy_recv")
        if send is None or recv is None:
            continue
        sampled = True
        dur = e["dur"]
        if dur <= 0:
            continue
        total += dur
        peak, peak_key = 0.0, None
        for direction, fracs in (("send", send), ("recv", recv)):
            for port, frac in enumerate(fracs):
                if frac <= 0.0:
                    continue
                key = (direction, port)
                busy_s[key] = busy_s.get(key, 0.0) + frac * dur
                if frac > peak:
                    peak, peak_key = frac, key
        if peak_key is not None:
            attributed[peak_key] = attributed.get(peak_key, 0.0) + dur
    if not sampled:
        return None
    ranked = sorted(attributed.items(), key=lambda kv: -kv[1])[:top_k]
    return {
        "busy_time_total_s": total,
        "top": [
            {
                "dir": direction,
                "port": port,
                "bottleneck_s": round(share, 9),
                "bottleneck_frac": round(share / total, 6) if total else 0.0,
                "busy_s": round(busy_s.get((direction, port), 0.0), 9),
            }
            for (direction, port), share in ranked
        ],
    }


def summarize_trace(
    events: Sequence[dict[str, Any]],
    header: dict[str, Any] | None = None,
    *,
    top_k_ports: int = 5,
) -> dict[str, Any]:
    """Aggregate a trace into the ``ccf stats`` summary dict."""
    kinds: dict[str, int] = {}
    for e in events:
        kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
    result = result_from_trace(events)
    first_byte: dict[int, float] = {
        e["cid"]: e["t"] for e in events if e["kind"] == "coflow_first_byte"
    }
    admit: dict[int, float] = {
        e["cid"]: e["t"] for e in events if e["kind"] == "coflow_admit"
    }
    wait = [
        first_byte[cid] - admit[cid]
        for cid in first_byte
        if cid in admit
    ]
    failure_kinds: dict[str, int] = {}
    for r in result.failures:
        failure_kinds[r.kind] = failure_kinds.get(r.kind, 0) + 1
    epoch_durs = [e.duration for e in result.epochs]
    # A complete epoch stream begins at the first coflow's arrival (the
    # loop fast-forwards idle time without emitting samples, but never
    # skips a *scheduling* epoch).  A first sample later than that means
    # the head of the timeline is missing -- e.g. the capture went
    # through a ``timeline_limit`` ring buffer -- and the epoch-derived
    # statistics below describe only the retained window.
    if result.epochs:
        arrivals = [
            e["arrival"] for e in events if e["kind"] == "coflow_submit"
        ]
        origin = min(arrivals) if arrivals else 0.0
        first = result.epochs[0].start
        epochs_truncated = first - origin > 1e-9 + 1e-9 * abs(first)
    else:
        epochs_truncated = False
    summary: dict[str, Any] = {
        "header": dict(header or {}),
        "events_total": len(events),
        "coflows": {
            "submitted": kinds.get("coflow_submit", 0),
            "completed": kinds.get("coflow_complete", 0),
            "aborted": kinds.get("coflow_abort", 0),
        },
        "cct_seconds": _percentiles(list(result.ccts.values())),
        "first_byte_wait_seconds": _percentiles(wait),
        "makespan_seconds": result.makespan,
        "total_bytes": result.total_bytes,
        "epochs": {
            "count": len(result.epochs),
            "busy_time_s": float(sum(epoch_durs)),
            "mean_duration_s": (
                float(np.mean(epoch_durs)) if epoch_durs else 0.0
            ),
            "truncated": epochs_truncated,
        },
        "failures": {
            "by_kind": failure_kinds,
            "bytes_lost": result.bytes_lost,
            "aborted_coflows": len(result.failed_coflows),
        },
        "platform": _platform_counters(events),
        "admission": _admission_counters(events),
        "ports": _port_attribution(events, top_k_ports),
    }
    # Weighted CCT distribution, present only when some submitted coflow
    # carries a non-unit weight -- unit-weight traces summarize exactly
    # as before.
    trace_weights = {
        e["cid"]: float(e.get("weight", 1.0))
        for e in events
        if e["kind"] == "coflow_submit"
    }
    if any(w != 1.0 for w in trace_weights.values()):
        done = sorted(result.ccts)
        summary["cct_weighted_seconds"] = _weighted_percentiles(
            [result.ccts[cid] for cid in done],
            [trace_weights.get(cid, 1.0) for cid in done],
        )
    steady = steady_state_stats(
        [
            (e["t"] - e["cct"], e["cct"])
            for e in events
            if e["kind"] == "coflow_complete"
        ]
    )
    if steady is not None:
        summary["cct_steady_seconds"] = steady
    return summary


def steady_state_stats(
    samples: Sequence[tuple[float, float]],
    *,
    batches: int = 20,
    min_samples: int = 40,
) -> dict[str, Any] | None:
    """Post-transient percentiles of a ``(time, value)`` sample stream.

    Open-loop runs start empty, so early CCTs are unrepresentatively
    fast; reporting the raw distribution understates steady-state
    latency.  This applies an MSER-style truncation: samples (sorted by
    time) are split into ``batches`` equal batches, and the warm-up
    cut is the batch boundary -- at most halfway in -- that minimizes
    the standard error of the remaining batch means.  Returns the
    percentiles of the retained samples plus the cut:

    ``{"p50", "p95", "p99", "mean", "max", "warmup_s", "warmup_samples",
    "samples"}``

    or None when there are fewer than ``min_samples`` samples (too few
    to call any window "steady").  Deterministic: no RNG involved.
    """
    if len(samples) < max(min_samples, 2 * batches):
        return None
    ordered = sorted(samples)
    values = np.asarray([v for _, v in ordered], dtype=float)
    n = len(values)
    batch = n // batches
    means = np.array(
        [values[i * batch : (i + 1) * batch].mean() for i in range(batches)]
    )
    best_k, best_sem = 0, np.inf
    for k in range(batches // 2 + 1):
        tail = means[k:]
        sem = float(tail.std(ddof=0)) / np.sqrt(len(tail))
        if sem < best_sem - 1e-15:
            best_sem, best_k = sem, k
    cut = best_k * batch
    kept = values[cut:]
    out = _percentiles(list(kept))
    out["warmup_s"] = float(ordered[cut][0] - ordered[0][0]) if cut else 0.0
    out["warmup_samples"] = int(cut)
    out["samples"] = int(len(kept))
    return out


def _admission_counters(
    events: Sequence[dict[str, Any]],
) -> dict[str, Any] | None:
    """Admission-control rulings from ``admission`` records, if any.

    Service-mode traces (``ccf serve --trace``) interleave the
    overload-control policy's decisions with the simulation stream;
    batch traces have none, in which case the section is ``None`` so
    old traces summarize exactly as before.
    """
    counts: dict[str, int] = {}
    shed_bytes = 0.0
    policy = ""
    for e in events:
        if e.get("kind") != "admission":
            continue
        decision = e.get("decision", "unknown")
        counts[decision] = counts.get(decision, 0) + 1
        if decision == "shed":
            shed_bytes += float(e.get("volume", 0.0))
        policy = e.get("policy") or policy
    if not counts:
        return None
    ruled = sum(counts.values())
    shed = counts.get("shed", 0)
    return {
        "policy": policy,
        "decisions": counts,
        "shed_fraction": shed / ruled if ruled else 0.0,
        "shed_bytes": shed_bytes,
    }


def _platform_counters(
    events: Sequence[dict[str, Any]],
) -> dict[str, int] | None:
    """Supervision counters from ``platform_event`` records, if any.

    Chaos-run traces (``ccf chaos --trace``) interleave platform events
    (retries, cell timeouts, worker crashes, pool rebuilds, cache
    quarantines) with the simulation stream; plain simulator traces have
    none, in which case the section is ``None`` so old traces summarize
    exactly as before.
    """
    counts: dict[str, int] = {}
    for e in events:
        if e.get("kind") != "platform_event":
            continue
        name = e.get("event", "unknown")
        counts[name] = counts.get(name, 0) + 1
    return counts or None


def _fmt_s(v: float) -> str:
    return f"{v:.6g}"


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable text rendering of :func:`summarize_trace`."""
    lines: list[str] = []
    header = summary.get("header") or {}
    bits = [
        f"{k}={header[k]}"
        for k in ("version", "git", "scheduler", "seed")
        if header.get(k) is not None
    ]
    if bits:
        lines.append("trace: " + "  ".join(bits))
    c = summary["coflows"]
    lines.append(
        f"coflows: {c['submitted']} submitted, {c['completed']} completed, "
        f"{c['aborted']} aborted"
    )
    p = summary["cct_seconds"]
    lines.append(
        f"CCT (s): p50={_fmt_s(p['p50'])}  p95={_fmt_s(p['p95'])}  "
        f"p99={_fmt_s(p['p99'])}  mean={_fmt_s(p['mean'])}  "
        f"max={_fmt_s(p['max'])}"
    )
    wp = summary.get("cct_weighted_seconds")
    if wp:
        lines.append(
            f"CCT weighted (s): p50={_fmt_s(wp['p50'])}  "
            f"p95={_fmt_s(wp['p95'])}  p99={_fmt_s(wp['p99'])}  "
            f"mean={_fmt_s(wp['mean'])}  sum(w*cct)={_fmt_s(wp['sum'])}"
        )
    steady = summary.get("cct_steady_seconds")
    if steady:
        lines.append(
            f"CCT steady-state (s): p50={_fmt_s(steady['p50'])}  "
            f"p95={_fmt_s(steady['p95'])}  p99={_fmt_s(steady['p99'])}  "
            f"(warm-up {_fmt_s(steady['warmup_s'])} s, "
            f"{steady['warmup_samples']} samples excluded)"
        )
    admission = summary.get("admission")
    if admission:
        rulings = ", ".join(
            f"{k}={v}" for k, v in sorted(admission["decisions"].items())
        )
        policy = admission.get("policy") or "unknown"
        lines.append(
            f"admission ({policy}): {rulings}; shed fraction "
            f"{admission['shed_fraction']:.1%}"
        )
    lines.append(
        f"makespan: {_fmt_s(summary['makespan_seconds'])} s over "
        f"{summary['epochs']['count']} epochs "
        f"(busy {_fmt_s(summary['epochs']['busy_time_s'])} s)"
    )
    if summary["epochs"].get("truncated"):
        lines.append(
            "WARNING: epoch timeline is truncated (oldest samples "
            "dropped, e.g. by a timeline ring buffer); epoch counts, "
            "busy time and port attribution cover only the retained "
            "window"
        )
    ports = summary.get("ports")
    if ports is None:
        lines.append(
            "ports: no per-port samples in trace "
            "(captured with sample_ports=False)"
        )
    elif ports["top"]:
        lines.append("bottleneck attribution (duration-weighted):")
        for row in ports["top"]:
            lines.append(
                f"  {row['dir']:>4} port {row['port']:>3}: bottleneck "
                f"{row['bottleneck_frac']:.1%} of busy time "
                f"({_fmt_s(row['busy_s'])} busy-seconds)"
            )
    f = summary["failures"]
    if f["by_kind"]:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(f["by_kind"].items()))
        lines.append(
            f"failures: {kinds}; bytes lost {f['bytes_lost']:.6g}; "
            f"{f['aborted_coflows']} coflows aborted"
        )
    else:
        lines.append("failures: none")
    platform = summary.get("platform")
    if platform:
        counters = ", ".join(
            f"{k}={v}" for k, v in sorted(platform.items())
        )
        lines.append(f"platform faults absorbed: {counters}")
    return "\n".join(lines)
