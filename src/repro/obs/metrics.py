"""Minimal metrics registry: counters, gauges and histograms.

Prometheus-flavoured but dependency-free: metric identity is
``(name, labels)``, histograms use cumulative ``le`` buckets, and
:func:`render_prometheus` emits the text exposition format.  The
registry is plain Python on purpose -- it is only touched when
instrumentation is enabled, never on the simulator hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

#: Default histogram buckets: log-spaced over the CCT ranges the
#: simulator produces (sub-second fluid runs up to 1e9-second clocks).
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-3, 10))

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing value."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per ``le`` bound (ending with +Inf = n)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            return math.nan
        target = q * self.n
        for bound, cum in zip(self.buckets, self.cumulative()):
            if cum >= target:
                return bound
        return math.inf


class MetricsRegistry:
    """Named metrics, each a family of ``(labels -> instrument)``."""

    def __init__(self) -> None:
        self._metrics: dict[str, dict[LabelSet, object]] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _get(self, kind, name, help_text, labels, factory):
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            self._help[name] = help_text
            self._metrics[name] = {}
        elif known != kind:
            raise ValueError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )
        family = self._metrics[name]
        key = _labelset(labels)
        inst = family.get(key)
        if inst is None:
            inst = family[key] = factory()
        return inst

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(
            "histogram", name, help_text, labels,
            lambda: Histogram(buckets=buckets),
        )

    def families(self):
        """Iterate ``(name, kind, help, {labelset: instrument})``."""
        for name in sorted(self._metrics):
            yield (
                name,
                self._kinds[name],
                self._help[name],
                self._metrics[name],
            )


def _fmt_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Text exposition format (``# HELP`` / ``# TYPE`` / samples)."""
    lines: list[str] = []
    for name, kind, help_text, family in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, inst in sorted(family.items()):
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(inst.value)}"
                )
            else:  # histogram
                cum = inst.cumulative()
                bounds = list(inst.buckets) + [math.inf]
                for bound, count in zip(bounds, cum):
                    le = _fmt_labels(labels, (("le", _fmt_value(bound)),))
                    lines.append(f"{name}_bucket{le} {count}")
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} {_fmt_value(inst.total)}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(labels)} {inst.n}"
                )
    return "\n".join(lines) + "\n"
