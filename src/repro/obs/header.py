"""Reproducibility headers for every artifact the toolchain writes.

Traces, bench payloads and reports are only useful later if they say
*how* they were produced.  :func:`repro_header` collects the run
configuration (seed, scheduler, fabric shape) together with the package
version, the git revision of the working tree (when available) and the
platform -- one dict, embedded verbatim as the first JSONL record of a
trace, the ``repro`` key of ``BENCH_simulator.json``, and the preamble
of ``ccf report`` markdown.
"""

from __future__ import annotations

import platform
import subprocess
import time
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["repro_header", "git_describe"]

#: Version of the header record layout itself.
HEADER_SCHEMA = 1


def git_describe() -> str | None:
    """``git describe`` of the tree this package was imported from.

    Returns None when the package does not live in a git checkout (an
    installed wheel), when git is missing, or on any other failure --
    reproducibility metadata must never break the run that records it.
    """
    try:
        out = subprocess.run(
            ["git", "-C", str(Path(__file__).resolve().parent),
             "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def _package_version() -> str:
    try:  # the canonical source; repro.__version__ mirrors it
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def repro_header(
    *,
    seed: int | None = None,
    scheduler: str | None = None,
    fabric: Any = None,
    **extra: Any,
) -> dict[str, Any]:
    """One self-describing provenance record for an output artifact.

    Parameters
    ----------
    seed:
        Whatever seed governed the randomness of the run (workload,
        chaos, noise -- caller's choice; omit when deterministic).
    scheduler:
        Scheduling-discipline name, when one was involved.
    fabric:
        A :class:`repro.network.fabric.Fabric` (serialized as shape) or
        any JSON-ready description of the fabric.
    extra:
        Additional caller-specific keys merged in verbatim (e.g.
        ``strategy="ccf"``, ``coflow_file="plan.json"``).
    """
    header: dict[str, Any] = {
        "schema": HEADER_SCHEMA,
        "package": "repro",
        "version": _package_version(),
        "git": git_describe(),
        "created_unix": round(time.time(), 3),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
    }
    if seed is not None:
        header["seed"] = int(seed)
    if scheduler is not None:
        header["scheduler"] = str(scheduler)
    if fabric is not None:
        if hasattr(fabric, "n_ports"):
            header["fabric"] = {
                "n_ports": int(fabric.n_ports),
                "rate": float(fabric.rate),
            }
        else:
            header["fabric"] = fabric
    header.update(extra)
    return header
