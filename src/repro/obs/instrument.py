"""The instrumentation surface threaded through the CCF pipeline.

One object -- an :class:`Instrumentation` -- receives every observable
moment of a run: coflow lifecycle transitions (submit -> admit ->
first-byte -> complete/abort), per-epoch samples (port utilization,
residual bytes, queue depth), fabric failure/recovery records, planner
phases and job-stage attempts.  The base class is a **no-op**: every
hook is an empty method and ``enabled`` is False, so the simulator's hot
path pays exactly one boolean test per guarded site when observability
is off (the bench gate pins this).

:class:`Tracer` is the recording implementation: it appends structured
event dicts (the one event stream every exporter and ``ccf stats``
consume) and keeps a :class:`~repro.obs.metrics.MetricsRegistry` of
counters/gauges/histograms up to date as events arrive.

Event stream schema (one dict per event, ``kind`` discriminates)::

    run_start      t, coflows, total_bytes
    coflow_submit  t, cid, arrival, volume, width, name
    coflow_admit   t, cid
    coflow_first_byte  t, cid
    coflow_complete    t, cid, cct
    coflow_abort   t, cid
    epoch          t (start), dur, flows, rate  [+ coflows, residual,
                   queue, port_busy_send, port_busy_recv when sampled]
    failure        t, failure_kind, port, cid, flows, bytes_lost, detail
    planner_phase  t, stage, wall_s, strategy
    stage_attempt  t (start), dur, stage, attempt, status, cid
    run_end        t, makespan
    platform_event t, event (retry | cell_timeout | worker_crash |
                   pool_rebuild | quarantine | interrupt), experiment,
                   cell, attempt, detail
    admission      t, decision (admit | defer | shed), cid, volume,
                   reason, policy

Times are simulation seconds except ``wall_s`` (planner wall-clock) and
``platform_event`` times, which are wall-clock unix seconds: platform
events describe the *machinery* running the experiment (the sweep
engine's retries, timeouts and crash recoveries), not the simulated
fabric, so there is no simulation clock to stamp them with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.recovery import FailureRecord

__all__ = ["Instrumentation", "Tracer", "MultiInstrumentation"]

#: Sub-second..years log buckets for CCT / epoch-duration histograms.
_TIME_BUCKETS = tuple(10.0 ** e for e in range(-6, 10))

DetailFn = Callable[[], dict[str, Any]]


class Instrumentation:
    """No-op observability sink -- subclass and override what you need.

    ``enabled`` gates every emission site in the simulator; the other
    two flags let a sink opt out of the emissions that cost more than a
    method call to *produce* (first-byte detection needs a per-epoch
    mask, port samples need per-port bincounts).
    """

    #: Master switch: emission sites are skipped entirely when False.
    enabled: bool = False
    #: Whether coflow first-byte detection should run (per-epoch cost).
    wants_flow_events: bool = False
    #: Whether epoch samples should include per-port busy fractions.
    wants_port_samples: bool = False

    # -- run boundary ---------------------------------------------------
    def run_start(
        self, *, time: float, n_coflows: int, total_bytes: float
    ) -> None:
        """A simulation run begins."""

    def run_end(self, *, time: float, makespan: float) -> None:
        """The run's epoch loop finished."""

    # -- coflow lifecycle ----------------------------------------------
    def coflow_submit(
        self,
        cid: int,
        *,
        time: float,
        arrival: float,
        volume: float,
        width: int,
        name: str = "",
        weight: float = 1.0,
    ) -> None:
        """A coflow became known (run start or mid-run injection)."""

    def coflow_admit(self, cid: int, *, time: float) -> None:
        """A pending coflow's flows joined the active set."""

    def coflow_first_byte(self, cid: int, *, time: float) -> None:
        """The coflow received a positive rate for the first time."""

    def coflow_complete(self, cid: int, *, time: float, cct: float) -> None:
        """All of the coflow's flows drained."""

    def coflow_abort(self, cid: int, *, time: float) -> None:
        """The recovery layer gave up on the coflow."""

    # -- epoch samples --------------------------------------------------
    def epoch(
        self,
        *,
        start: float,
        duration: float,
        active_flows: int,
        aggregate_rate: float,
        detail: DetailFn | None = None,
    ) -> None:
        """One epoch elapsed.

        ``detail`` lazily computes the expensive sample fields (active
        coflows, residual bytes, queue depth, per-port busy fractions);
        sinks that do not need them simply never call it.
        """

    # -- failures -------------------------------------------------------
    def failure(self, record: "FailureRecord") -> None:
        """A failure-log record was appended (port event or recovery action)."""

    # -- control plane --------------------------------------------------
    def planner_phase(
        self,
        stage: str,
        *,
        time: float,
        wall_s: float,
        strategy: str = "",
    ) -> None:
        """A planning phase (stage assignment / replan) finished."""

    def stage_attempt(
        self,
        stage: str,
        attempt: int,
        *,
        start: float,
        end: float,
        status: str,
        coflow_id: int = -1,
    ) -> None:
        """A job stage attempt span closed (completed or aborted)."""

    # -- platform (supervised execution) --------------------------------
    def platform_event(
        self,
        event: str,
        *,
        time: float,
        experiment: str = "",
        cell: str = "",
        attempt: int = 0,
        detail: str = "",
    ) -> None:
        """The execution platform intervened (retry, timeout, crash, ...).

        ``time`` is wall-clock unix seconds, not simulation time: these
        events belong to the machinery running the experiment.
        """

    # -- admission control (service mode) --------------------------------
    def admission(
        self,
        decision: str,
        *,
        time: float,
        cid: int,
        volume: float = 0.0,
        reason: str = "",
        policy: str = "",
    ) -> None:
        """An overload-control policy ruled on an arriving coflow.

        ``decision`` is ``admit`` / ``defer`` / ``shed``; ``reason`` is
        the policy's short explanation (e.g. ``queue_full``,
        ``watermark``, ``slo_breach``).  Simulation time.
        """

    def close(self) -> None:
        """Flush/teardown hook for sinks holding external resources."""


class Tracer(Instrumentation):
    """Recording instrumentation: event list + live metrics registry.

    Parameters
    ----------
    header:
        Reproducibility header (:func:`repro.obs.header.repro_header`)
        stored alongside the events and written first by the exporters.
    sample_ports:
        Record per-port busy fractions in every epoch sample.  Costs two
        bincounts per epoch and ``2 * n_ports`` floats per sample; turn
        off for very long runs where only lifecycle events matter.
    metrics:
        Registry to update (defaults to a fresh one).
    """

    enabled = True
    wants_flow_events = True

    def __init__(
        self,
        *,
        header: dict[str, Any] | None = None,
        sample_ports: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.header: dict[str, Any] = dict(header or {})
        self.events: list[dict[str, Any]] = []
        self.metrics = metrics or MetricsRegistry()
        self.wants_port_samples = bool(sample_ports)
        m = self.metrics
        self._epochs = m.counter("epochs_total", "simulator epochs executed")
        self._submitted = m.counter(
            "coflows_submitted_total", "coflows entering the run"
        )
        self._completed = m.counter(
            "coflows_completed_total", "coflows that finished"
        )
        self._aborted = m.counter(
            "coflows_aborted_total", "coflows abandoned by recovery"
        )
        self._bytes_lost = m.counter(
            "bytes_lost_total", "bytes lost to failures (re-sent or abandoned)"
        )
        self._port_failures = m.counter(
            "port_failures_total", "port-failure events observed"
        )
        self._cct = m.histogram(
            "cct_seconds", "coflow completion time", buckets=_TIME_BUCKETS
        )
        self._epoch_dur = m.histogram(
            "epoch_duration_seconds", "epoch length", buckets=_TIME_BUCKETS
        )
        self._sim_time = m.gauge("sim_time_seconds", "simulation clock")
        self._active_flows = m.gauge("active_flows", "flows in flight")
        self._active_coflows = m.gauge("active_coflows", "coflows in flight")
        self._queue_depth = m.gauge(
            "queue_depth", "coflows arrived-but-not-admitted"
        )
        self._residual = m.gauge(
            "residual_bytes", "unfinished volume across active flows"
        )

    # -- helpers --------------------------------------------------------
    def _emit(self, kind: str, t: float, **fields: Any) -> None:
        event = {"kind": kind, "t": float(t)}
        event.update(fields)
        self.events.append(event)

    # -- hooks ----------------------------------------------------------
    def run_start(self, *, time, n_coflows, total_bytes):
        self._emit(
            "run_start", time,
            coflows=int(n_coflows), total_bytes=float(total_bytes),
        )

    def run_end(self, *, time, makespan):
        self._emit("run_end", time, makespan=float(makespan))
        self._sim_time.set(time)

    def coflow_submit(
        self, cid, *, time, arrival, volume, width, name="", weight=1.0
    ):
        self._submitted.inc()
        self._emit(
            "coflow_submit", time,
            cid=int(cid), arrival=float(arrival), volume=float(volume),
            width=int(width), name=str(name), weight=float(weight),
        )

    def coflow_admit(self, cid, *, time):
        self._emit("coflow_admit", time, cid=int(cid))

    def coflow_first_byte(self, cid, *, time):
        self._emit("coflow_first_byte", time, cid=int(cid))

    def coflow_complete(self, cid, *, time, cct):
        self._completed.inc()
        self._cct.observe(float(cct))
        self._emit("coflow_complete", time, cid=int(cid), cct=float(cct))

    def coflow_abort(self, cid, *, time):
        self._aborted.inc()
        self._emit("coflow_abort", time, cid=int(cid))

    def epoch(self, *, start, duration, active_flows, aggregate_rate,
              detail=None):
        self._epochs.inc()
        self._epoch_dur.observe(float(duration))
        self._sim_time.set(start + duration)
        self._active_flows.set(active_flows)
        event: dict[str, Any] = {
            "dur": float(duration),
            "flows": int(active_flows),
            "rate": float(aggregate_rate),
        }
        if detail is not None:
            extra = detail()
            event.update(extra)
            if "coflows" in extra:
                self._active_coflows.set(extra["coflows"])
            if "queue" in extra:
                self._queue_depth.set(extra["queue"])
            if "residual" in extra:
                self._residual.set(extra["residual"])
            for direction in ("send", "recv"):
                busy = extra.get(f"port_busy_{direction}")
                if busy is None:
                    continue
                for port, frac in enumerate(busy):
                    if frac > 0.0:
                        self.metrics.counter(
                            "port_busy_seconds_total",
                            "per-port busy time (utilization x duration)",
                            labels={"port": str(port), "dir": direction},
                        ).inc(frac * duration)
        self._emit("epoch", start, **event)

    def failure(self, record):
        if record.kind == "port_failed":
            self._port_failures.inc()
        if record.bytes_lost:
            self._bytes_lost.inc(record.bytes_lost)
        self.metrics.counter(
            "failure_events_total", "failure-log records by kind",
            labels={"failure_kind": record.kind},
        ).inc()
        self._emit(
            "failure", record.time,
            failure_kind=record.kind, port=int(record.port),
            cid=int(record.coflow_id), flows=int(record.flows),
            bytes_lost=float(record.bytes_lost), detail=record.detail,
        )

    def planner_phase(self, stage, *, time, wall_s, strategy=""):
        self.metrics.counter(
            "planner_phases_total", "planning phases executed"
        ).inc()
        self.metrics.counter(
            "planner_seconds_total", "wall-clock planning time"
        ).inc(wall_s)
        self._emit(
            "planner_phase", time,
            stage=str(stage), wall_s=float(wall_s), strategy=str(strategy),
        )

    def stage_attempt(self, stage, attempt, *, start, end, status,
                      coflow_id=-1):
        self.metrics.counter(
            "stage_attempts_total", "job stage attempts by outcome",
            labels={"status": status},
        ).inc()
        self._emit(
            "stage_attempt", start,
            dur=float(end - start), stage=str(stage), attempt=int(attempt),
            status=str(status), cid=int(coflow_id),
        )

    def platform_event(self, event, *, time, experiment="", cell="",
                       attempt=0, detail=""):
        self.metrics.counter(
            "platform_events_total", "supervised-execution interventions",
            labels={"event": event},
        ).inc()
        self._emit(
            "platform_event", time,
            event=str(event), experiment=str(experiment), cell=str(cell),
            attempt=int(attempt), detail=str(detail),
        )

    def admission(self, decision, *, time, cid, volume=0.0, reason="",
                  policy=""):
        self.metrics.counter(
            "admission_decisions_total",
            "service-mode admission rulings by decision",
            labels={"decision": decision},
        ).inc()
        self._emit(
            "admission", time,
            decision=str(decision), cid=int(cid), volume=float(volume),
            reason=str(reason), policy=str(policy),
        )


class MultiInstrumentation(Instrumentation):
    """Fan one emission stream out to several sinks."""

    def __init__(self, children: Iterable[Instrumentation]) -> None:
        self.children = [c for c in children if c is not None]
        self.enabled = any(c.enabled for c in self.children)
        self.wants_flow_events = any(
            c.wants_flow_events for c in self.children
        )
        self.wants_port_samples = any(
            c.wants_port_samples for c in self.children
        )

    def run_start(self, **kw):
        for c in self.children:
            c.run_start(**kw)

    def run_end(self, **kw):
        for c in self.children:
            c.run_end(**kw)

    def coflow_submit(self, cid, **kw):
        for c in self.children:
            c.coflow_submit(cid, **kw)

    def coflow_admit(self, cid, **kw):
        for c in self.children:
            c.coflow_admit(cid, **kw)

    def coflow_first_byte(self, cid, **kw):
        for c in self.children:
            c.coflow_first_byte(cid, **kw)

    def coflow_complete(self, cid, **kw):
        for c in self.children:
            c.coflow_complete(cid, **kw)

    def coflow_abort(self, cid, **kw):
        for c in self.children:
            c.coflow_abort(cid, **kw)

    def epoch(self, *, detail=None, **kw):
        cache: dict[str, Any] | None = None

        def shared_detail() -> dict[str, Any]:
            nonlocal cache
            if cache is None:
                cache = detail()
            return cache

        for c in self.children:
            c.epoch(detail=None if detail is None else shared_detail, **kw)

    def failure(self, record):
        for c in self.children:
            c.failure(record)

    def planner_phase(self, stage, **kw):
        for c in self.children:
            c.planner_phase(stage, **kw)

    def stage_attempt(self, stage, attempt, **kw):
        for c in self.children:
            c.stage_attempt(stage, attempt, **kw)

    def platform_event(self, event, **kw):
        for c in self.children:
            c.platform_event(event, **kw)

    def admission(self, decision, **kw):
        for c in self.children:
            c.admission(decision, **kw)

    def close(self):
        for c in self.children:
            c.close()
