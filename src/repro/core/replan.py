"""Stage-level replanning: route an existing assignment around dead nodes.

PR 1's flow-recovery layer rebuilds *individual* lost chunks mid-coflow.
Real engines additionally recover at **stage** granularity: when a node
dies, the stage's lost tasks are re-executed on survivors and downstream
stages consume the data from its new location (lineage re-execution).
This module provides the two primitives that layer needs:

* :func:`replan_assignment` -- take a stage's committed assignment and a
  liveness mask, keep every partition already placed on a surviving node
  (those placements act as checkpoints), and re-run Algorithm 1's step
  rule -- via :class:`~repro.core.incremental.IncrementalPlanner` with its
  ``allowed`` destination mask -- for exactly the partitions stranded on
  dead nodes, seeded with the surviving placement's port loads.
* :func:`lineage_matrix` / :func:`remap_chunks` -- express the resulting
  placement change as a row-stochastic node->node move matrix and push it
  through descendant stages' chunk matrices, so children are planned
  against where their inputs *actually* live after recovery.
"""

from __future__ import annotations

import numpy as np

from repro.core.incremental import IncrementalPlanner
from repro.core.model import ShuffleModel

__all__ = ["replan_assignment", "lineage_matrix", "remap_chunks"]


def replan_assignment(
    model: ShuffleModel,
    dest: np.ndarray,
    allowed: np.ndarray,
    *,
    locality_tiebreak: bool = True,
) -> np.ndarray:
    """Reassign the partitions of ``dest`` placed on disallowed nodes.

    Partitions already destined to an allowed node keep their placement;
    the rest are fed -- largest chunk first, Algorithm 1's processing
    order -- through an :class:`IncrementalPlanner` restricted to the
    allowed nodes and seeded with the port loads the kept placement
    already commits, so reassignments spread across survivors exactly as
    the paper's greedy spreads partitions.

    Parameters
    ----------
    model:
        The stage's (true) shuffle model.
    dest:
        Current assignment vector, shape ``(p,)``.
    allowed:
        Boolean liveness mask over nodes; at least one must be True.

    Returns
    -------
    A new assignment with every partition on an allowed node.  When no
    partition is stranded the input assignment is returned unchanged.
    """
    dest = model.validate_assignment(dest)
    allowed = np.asarray(allowed, dtype=bool)
    if allowed.shape != (model.n,):
        raise ValueError(f"allowed mask must have shape ({model.n},)")
    if not allowed.any():
        raise ValueError("replan needs at least one surviving node")

    stranded = ~allowed[dest]
    if not stranded.any():
        return dest

    new_dest = dest.copy()
    kept = np.flatnonzero(~stranded)
    send0, recv0 = model.initial_loads()
    send = send0.copy()
    recv = recv0.copy()
    if kept.size:
        h_kept = model.h[:, kept]
        kept_dest = dest[kept]
        # Loads the surviving placement commits: node i sends its resident
        # bytes of every kept partition not assigned to i; dest receives
        # the rest of the partition.
        sizes = h_kept.sum(axis=0)
        recv += np.bincount(
            kept_dest,
            weights=sizes - h_kept[kept_dest, np.arange(kept.size)],
            minlength=model.n,
        )
        send += h_kept.sum(axis=1)
        np.subtract.at(
            send, kept_dest, h_kept[kept_dest, np.arange(kept.size)]
        )

    planner = IncrementalPlanner(
        n_nodes=model.n,
        initial_send=send,
        initial_recv=recv,
        locality_tiebreak=locality_tiebreak,
        allowed=allowed,
    )
    lost = np.flatnonzero(stranded)
    order = lost[np.argsort(-model.h[:, lost].max(axis=0), kind="stable")]
    for k in order:
        new_dest[k] = planner.assign(model.h[:, k])
    return new_dest


def lineage_matrix(
    model: ShuffleModel, old_dest: np.ndarray, new_dest: np.ndarray
) -> np.ndarray:
    """Row-stochastic node->node matrix describing a placement change.

    ``M[d, j]`` is the fraction of the stage-output bytes formerly placed
    on node ``d`` that the replanned assignment places on node ``j``
    (weighted by partition size).  Nodes whose placement is unchanged --
    or that received no bytes to begin with -- keep an identity row, so
    ``M`` composes under matrix multiplication across successive replans
    and conserves bytes exactly (every row sums to 1).
    """
    old_dest = model.validate_assignment(old_dest)
    new_dest = model.validate_assignment(new_dest)
    n = model.n
    m = np.eye(n)
    moved = old_dest != new_dest
    if not moved.any():
        return m
    sizes = model.partition_sizes
    for d in np.unique(old_dest[moved]):
        mask = old_dest == d  # every partition formerly destined to d
        total = float(sizes[mask].sum())
        if total <= 0:
            continue
        row = np.bincount(new_dest[mask], weights=sizes[mask], minlength=n)
        m[d] = row / total
    return m


def remap_chunks(h: np.ndarray, move: np.ndarray) -> np.ndarray:
    """Apply a lineage move matrix to a descendant's chunk matrix.

    Bytes resident on node ``i`` follow the fraction ``move[i, j]`` to
    node ``j``: ``h'[j, k] = sum_i move[i, j] * h[i, k]``.  Because every
    row of ``move`` sums to 1, the per-partition volumes (and therefore
    the total) are conserved exactly.
    """
    h = np.asarray(h, dtype=float)
    move = np.asarray(move, dtype=float)
    if move.shape != (h.shape[0], h.shape[0]):
        raise ValueError(
            f"move matrix must have shape ({h.shape[0]}, {h.shape[0]})"
        )
    return move.T @ h
