"""Execution plans: an assignment bundled with its evaluation.

The schedule/control layer of CCF (paper Fig. 3) hands the data-processing
layer an *execution plan*: the destination of every partition plus the flow
volumes the plan induces.  :class:`ExecutionPlan` is that hand-off object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import PlanMetrics, ShuffleModel
from repro.network.flow import Coflow

__all__ = ["ExecutionPlan"]


@dataclass
class ExecutionPlan:
    """A fully-evaluated partition-to-node assignment.

    Parameters
    ----------
    model:
        The shuffle model the plan was computed for.
    dest:
        ``dest[k]`` is the node that receives partition ``k``.
    strategy:
        Name of the strategy that produced the plan (``hash`` / ``mini`` /
        ``ccf`` / ``ccf-exact`` / custom).
    solve_seconds:
        Wall-clock time spent computing the assignment (the scheduling
        overhead the paper's §III-B worries about).
    """

    model: ShuffleModel
    dest: np.ndarray
    strategy: str = ""
    solve_seconds: float = 0.0
    _metrics: PlanMetrics | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.dest = self.model.validate_assignment(self.dest)

    @property
    def metrics(self) -> PlanMetrics:
        """Lazy, cached evaluation of the plan."""
        if self._metrics is None:
            self._metrics = self.model.evaluate(self.dest)
        return self._metrics

    @property
    def traffic(self) -> float:
        """Bytes crossing the network under this plan."""
        return self.metrics.traffic

    @property
    def cct(self) -> float:
        """Bandwidth-optimal coflow completion time in seconds."""
        return self.metrics.cct

    @property
    def bottleneck_bytes(self) -> float:
        """The paper's objective ``T`` in bytes."""
        return self.metrics.bottleneck_bytes

    def to_coflow(self, *, arrival_time: float = 0.0) -> Coflow:
        """The plan's shuffle as a coflow, ready for the simulator."""
        return self.model.to_coflow(
            self.dest, arrival_time=arrival_time, name=self.strategy
        )

    def describe(self) -> str:
        """Multi-line human-readable description of the plan."""
        m = self.metrics
        lines = [
            f"plan[{self.strategy}] n={self.model.n} p={self.model.p}",
            f"  {m.summary()}",
            f"  solve time: {self.solve_seconds * 1e3:.2f} ms",
        ]
        return "\n".join(lines)
