"""Exact solution of the CCF co-optimization MILP (model (3)).

The paper solves model (3) with Gurobi; offline we substitute SciPy's
``milp`` (the HiGHS branch-and-cut solver) -- an identical formulation and
likewise exact.  Variables are the binary assignment ``x[j, k]`` plus the
continuous makespan ``T``:

    minimize  T
    s.t.      sum_k h[i,k] * (1 - x[i,k]) + send0_i <= T     (for all i)
              sum_k (S_k - h[j,k]) * x[j,k] + recv0_j <= T   (for all j)
              sum_j x[j,k] = 1                               (for all k)
              x binary, T >= 0

The problem is an integer multi-commodity flow instance (NP-complete); the
paper reports > 30 min solver time at n=500, p=7500, which motivates
Algorithm 1.  ``benchmarks/bench_solver_scaling.py`` reproduces the scaling
behaviour and measures the heuristic's optimality gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.model import ShuffleModel

__all__ = ["ccf_exact", "ExactResult"]

#: Refuse instances with more binary variables than this unless forced;
#: branch-and-cut time is exponential in the worst case.
_MAX_VARIABLES_DEFAULT = 50_000


@dataclass
class ExactResult:
    """Outcome of the exact MILP solve.

    Attributes
    ----------
    dest:
        Optimal assignment vector.
    bottleneck_bytes:
        Optimal objective ``T*`` in bytes.
    solve_seconds:
        Wall-clock solver time.
    status:
        HiGHS status string.
    """

    dest: np.ndarray
    bottleneck_bytes: float
    solve_seconds: float
    status: str


def ccf_exact(
    model: ShuffleModel,
    *,
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    max_variables: int = _MAX_VARIABLES_DEFAULT,
) -> ExactResult:
    """Solve model (3) exactly.

    Parameters
    ----------
    model:
        The shuffle model (chunk matrix + initial flows).
    time_limit:
        Optional solver wall-clock limit in seconds; when hit, the best
        incumbent found is returned (status reflects the early stop).
    mip_rel_gap:
        Relative optimality-gap termination criterion (0 = prove optimal).
    max_variables:
        Safety limit on ``n * p``; raise it explicitly for big instances.

    Raises
    ------
    ValueError
        If the instance exceeds ``max_variables`` or the solver finds no
        feasible assignment (cannot happen for valid inputs).
    """
    n, p = model.n, model.p
    if p == 0:
        return ExactResult(np.zeros(0, dtype=np.int64), 0.0, 0.0, "empty")
    n_x = n * p
    if n_x > max_variables:
        raise ValueError(
            f"exact MILP with n*p = {n_x} variables exceeds max_variables="
            f"{max_variables}; use ccf_heuristic or raise the limit"
        )

    h = model.h
    sizes = model.partition_sizes
    send0, recv0 = model.initial_loads()
    row_tot = h.sum(axis=1)

    # Variable layout: x[j, k] at index j * p + k, then T at index n_x.
    c = np.zeros(n_x + 1)
    c[n_x] = 1.0

    # (3.1) send constraints: -sum_k h[i,k] x[i,k] - T <= -(row_tot_i + send0_i)
    send_rows = sp.hstack(
        [
            sp.block_diag([-h[i: i + 1, :] for i in range(n)], format="csr"),
            -np.ones((n, 1)),
        ],
        format="csr",
    )
    send_ub = -(row_tot + send0)

    # (3.2) recv constraints: sum_k (S_k - h[j,k]) x[j,k] - T <= -recv0_j
    recv_rows = sp.hstack(
        [
            sp.block_diag(
                [(sizes - h[j, :]).reshape(1, -1) for j in range(n)], format="csr"
            ),
            -np.ones((n, 1)),
        ],
        format="csr",
    )
    recv_ub = -recv0

    # (1.3) each partition assigned exactly once: sum_j x[j,k] = 1
    ones = sp.hstack(
        [sp.hstack([sp.identity(p, format="csr")] * n), sp.csr_matrix((p, 1))],
        format="csr",
    )

    constraints = [
        LinearConstraint(send_rows, -np.inf, send_ub),
        LinearConstraint(recv_rows, -np.inf, recv_ub),
        LinearConstraint(ones, 1.0, 1.0),
    ]
    integrality = np.concatenate([np.ones(n_x), [0.0]])
    lb = np.zeros(n_x + 1)
    ub = np.concatenate([np.ones(n_x), [np.inf]])

    options: dict = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    start = time.perf_counter()
    res = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    elapsed = time.perf_counter() - start

    if res.x is None:
        raise ValueError(f"MILP solve failed: {res.message}")
    x = np.asarray(res.x[:n_x]).reshape(n, p)
    dest = x.argmax(axis=0).astype(np.int64)
    return ExactResult(
        dest=dest,
        bottleneck_bytes=float(res.x[n_x]),
        solve_seconds=elapsed,
        status=str(res.message),
    )
