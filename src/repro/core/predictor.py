"""Closed-form CCT predictions for the paper's workload class.

For the statistically uniform TPC-H workload (uniform keys, zipf node
weights ``w`` with fixed ranking, skew fraction ``s`` on the big
relation) each strategy's bandwidth-optimal CCT has a closed form -- no
planning needed.  These expressions were used to validate the paper's
reported speedup bands before a line of the planner existed (DESIGN.md),
and are exposed here as an instant paper-scale predictor; the test suite
pins them against the actual planner within a few percent.

With ``V`` the total bytes, ``V_ord``/``V_cust`` the relation split and
``R`` the port rate:

* **Hash** is bound by the worst of (a) the heaviest node's send load
  ``w_0·V·(1−1/n)`` (it must emit nearly everything it holds) and (b)
  the skew hotspot ``s·V_ord`` landing on one receiver, plus that
  receiver's background share.
* **Mini** flushes everything to node 0 (largest chunk of every
  partition): CCT ≈ ``V_res·(1−w_0) / R`` where ``V_res`` is the
  shuffle-eligible residue after partial duplication.
* **CCF** balances node 0's send against its receive: assigning node 0 a
  fraction ``a`` of the partitions trades ``send_0 = w_0·V_res·(1−a)``
  against ``recv_0 = a·V_res·(1−w_0)``; the optimum equalizes them at
  ``T = V_res · w_0(1−w_0) / R``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.analytic import AnalyticJoinWorkload

__all__ = ["PredictedCCTs", "predict_ccts"]


@dataclass(frozen=True)
class PredictedCCTs:
    """Closed-form CCT predictions (seconds) for the three strategies."""

    hash_cct: float
    mini_cct: float
    ccf_cct: float

    @property
    def speedup_over_mini(self) -> float:
        return self.mini_cct / self.ccf_cct if self.ccf_cct else float("inf")

    @property
    def speedup_over_hash(self) -> float:
        return self.hash_cct / self.ccf_cct if self.ccf_cct else float("inf")


def predict_ccts(workload: AnalyticJoinWorkload) -> PredictedCCTs:
    """Predict Hash/Mini/CCF communication times without planning."""
    n = workload.n_nodes
    w0 = float(workload.node_weights[0])
    rate = workload.rate
    v_total = workload.total_bytes
    v_ord = workload.order_bytes
    skew = workload.skew

    # Shuffle-eligible residue after partial duplication (Mini/CCF).
    v_res = (1 - skew) * v_ord + workload.customer_bytes

    # Hash: no skew handling; heaviest sender vs skew-hotspot receiver.
    # The hot node keeps its own share of the skewed bytes local.
    hot_node = workload.skewed_partition % n
    w_hot = float(workload.node_weights[hot_node])
    send0 = w0 * v_total * (1 - 1 / n)
    background = (v_total - skew * v_ord) * (1 - 1 / n) / n
    hotspot = skew * v_ord * (1 - w_hot) + background
    hash_t = max(send0, hotspot, background)

    # Mini: every partition's largest chunk is on node 0 -> all traffic
    # converges there.
    mini_t = v_res * (1 - w0)

    # CCF: equalize node 0's send and receive.
    ccf_t = v_res * w0 * (1 - w0) / (w0 + (1 - w0)) if n > 1 else 0.0

    return PredictedCCTs(
        hash_cct=hash_t / rate,
        mini_cct=mini_t / rate,
        ccf_cct=ccf_t / rate,
    )
