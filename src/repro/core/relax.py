"""LP relaxation of model (3) with randomized rounding.

A middle ground between Algorithm 1 and the exact MILP: drop the
integrality constraint on ``x[j, k]`` (the LP solves in polynomial time
and its optimum ``T_LP`` is a *lower bound* on the integral optimum),
then round each partition to a destination drawn from its fractional
assignment and repair with a greedy pass.  Several rounding trials are
evaluated and the best one kept.

This solver is not part of the paper; it is included as a quality probe:
``T_LP <= T* <= T_heuristic`` sandwiches both the exact optimum and the
heuristic's gap without paying the exponential branch-and-bound cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.core.model import ShuffleModel

__all__ = ["ccf_lp_rounding", "LPRoundingResult"]


@dataclass
class LPRoundingResult:
    """Outcome of the relax-and-round solve.

    Attributes
    ----------
    dest:
        Best rounded assignment.
    bottleneck_bytes:
        The rounded plan's ``T`` (an upper bound on the optimum).
    lp_lower_bound:
        The fractional optimum ``T_LP`` (a lower bound on the optimum).
    solve_seconds:
        Total wall-clock time (LP + all rounding trials).
    trials:
        Number of rounding trials evaluated.
    """

    dest: np.ndarray
    bottleneck_bytes: float
    lp_lower_bound: float
    solve_seconds: float
    trials: int

    @property
    def gap_upper_bound(self) -> float:
        """Certified optimality gap: (T_rounded - T_LP) / T_LP."""
        if self.lp_lower_bound == 0:
            return 0.0
        return (self.bottleneck_bytes - self.lp_lower_bound) / self.lp_lower_bound


def _solve_lp(model: ShuffleModel) -> tuple[np.ndarray, float]:
    """Fractional optimum of model (3): returns (x[n, p], T_LP)."""
    n, p = model.n, model.p
    h = model.h
    sizes = model.partition_sizes
    send0, recv0 = model.initial_loads()
    row_tot = h.sum(axis=1)
    n_x = n * p

    c = np.zeros(n_x + 1)
    c[n_x] = 1.0

    send_rows = sp.hstack(
        [
            sp.block_diag([-h[i: i + 1, :] for i in range(n)], format="csr"),
            -np.ones((n, 1)),
        ],
        format="csr",
    )
    recv_rows = sp.hstack(
        [
            sp.block_diag(
                [(sizes - h[j, :]).reshape(1, -1) for j in range(n)], format="csr"
            ),
            -np.ones((n, 1)),
        ],
        format="csr",
    )
    a_ub = sp.vstack([send_rows, recv_rows], format="csr")
    b_ub = np.concatenate([-(row_tot + send0), -recv0])

    ones = sp.hstack(
        [sp.hstack([sp.identity(p, format="csr")] * n), sp.csr_matrix((p, 1))],
        format="csr",
    )
    b_eq = np.ones(p)

    bounds = [(0.0, 1.0)] * n_x + [(0.0, None)]
    res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=ones, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if res.x is None:
        raise ValueError(f"LP relaxation failed: {res.message}")
    return np.asarray(res.x[:n_x]).reshape(n, p), float(res.x[n_x])


def ccf_lp_rounding(
    model: ShuffleModel,
    *,
    trials: int = 16,
    seed: int = 0,
) -> LPRoundingResult:
    """Solve the LP relaxation and round to an integral assignment.

    Parameters
    ----------
    model:
        The shuffle model.
    trials:
        Independent randomized-rounding draws to evaluate; the best by
        achieved ``T`` is returned.  Trial 0 is the deterministic
        round-to-argmax.
    seed:
        RNG seed for the randomized trials.
    """
    if trials < 1:
        raise ValueError("need at least one rounding trial")
    start = time.perf_counter()
    n, p = model.n, model.p
    if p == 0:
        return LPRoundingResult(
            dest=np.zeros(0, dtype=np.int64),
            bottleneck_bytes=0.0,
            lp_lower_bound=0.0,
            solve_seconds=time.perf_counter() - start,
            trials=0,
        )

    frac, t_lp = _solve_lp(model)
    # Normalize defensively: HiGHS returns x summing to 1 per partition,
    # but guard against tiny drift before treating columns as pmfs.
    col_sums = frac.sum(axis=0)
    col_sums[col_sums <= 0] = 1.0
    pmf = np.clip(frac, 0.0, None) / col_sums

    rng = np.random.default_rng(seed)
    best_dest: np.ndarray | None = None
    best_t = np.inf
    for trial in range(trials):
        if trial == 0:
            dest = pmf.argmax(axis=0).astype(np.int64)
        else:
            # Vectorized categorical draw per partition via inverse CDF.
            cdf = np.cumsum(pmf, axis=0)
            u = rng.random(p)
            dest = (u[None, :] < cdf).argmax(axis=0).astype(np.int64)
        t = model.evaluate(dest).bottleneck_bytes
        if t < best_t:
            best_t, best_dest = t, dest

    assert best_dest is not None
    return LPRoundingResult(
        dest=best_dest,
        bottleneck_bytes=float(best_t),
        lp_lower_bound=t_lp,
        solve_seconds=time.perf_counter() - start,
        trials=trials,
    )
