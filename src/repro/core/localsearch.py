"""Local-search refinement of assignments (beyond the paper).

Algorithm 1 is a one-pass greedy; property testing surfaced small
instances where it lands above both baselines.  This module adds a
classical polish: single-partition *move* local search.  Repeatedly, the
partition moves that most reduce the bottleneck ``T`` are applied until
no single move improves -- a 2-approximation-style cleanup that provably
never hurts, typically closes the greedy's gap on adversarial instances,
and costs O(rounds * n * p) vectorized work.

The search exploits the same incremental structure as the heuristic:
moving partition ``k`` from ``a`` to ``b`` changes only
``send[a] += h[a,k]``, ``send[b] -= h[b,k]``, ``recv[a] -= S_k - h[a,k]``
and ``recv[b] += S_k - h[b,k]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.heuristic import _top2
from repro.core.model import ShuffleModel

__all__ = ["refine_assignment", "RefinementResult"]


@dataclass
class RefinementResult:
    """Outcome of local search.

    Attributes
    ----------
    dest:
        The refined assignment.
    initial_t, final_t:
        Bottleneck bytes before and after.
    moves:
        Number of improving moves applied.
    """

    dest: np.ndarray
    initial_t: float
    final_t: float
    moves: int

    @property
    def improvement(self) -> float:
        """Relative reduction of ``T`` (0 when already locally optimal)."""
        if self.initial_t == 0:
            return 0.0
        return (self.initial_t - self.final_t) / self.initial_t


def _loads(model: ShuffleModel, dest: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    m = model.evaluate(dest)
    return m.send_loads.copy(), m.recv_loads.copy()


def refine_assignment(
    model: ShuffleModel,
    dest: np.ndarray,
    *,
    max_moves: int = 10_000,
) -> RefinementResult:
    """Hill-climb on ``T`` with single-partition moves.

    Parameters
    ----------
    model:
        The shuffle model.
    dest:
        Starting assignment (any strategy's output); not modified.
    max_moves:
        Safety cap on the number of applied moves.
    """
    dest = model.validate_assignment(dest).copy()
    h = model.h
    n, p = model.n, model.p
    if p == 0 or n == 1:
        t0 = model.evaluate(dest).bottleneck_bytes
        return RefinementResult(dest=dest, initial_t=t0, final_t=t0, moves=0)

    sizes = model.partition_sizes
    send, recv = _loads(model, dest)
    initial_t = float(max(send.max(), recv.max()))
    current_t = initial_t
    moves = 0

    for _ in range(max_moves):
        # Only moves touching a bottleneck port can reduce T; gather the
        # partitions involved with the current bottleneck.
        bottleneck = current_t
        hot_send = np.flatnonzero(send >= bottleneck - 1e-9)
        hot_recv = np.flatnonzero(recv >= bottleneck - 1e-9)
        cand_parts: set[int] = set()
        for i in hot_send:
            # i sends every partition it holds but wasn't assigned.
            cand_parts.update(
                np.flatnonzero((h[i] > 0) & (dest != i)).tolist()
            )
        for j in hot_recv:
            cand_parts.update(np.flatnonzero(dest == j).tolist())
        if not cand_parts:
            break

        best: tuple[float, int, int] | None = None
        for k in cand_parts:
            a = dest[k]
            col = h[:, k]
            s_k = sizes[k]
            # Loads with partition k unassigned: every holder stops
            # sending its chunk (a never sent its own), a stops receiving.
            send_wo = send - col
            send_wo[a] += col[a]
            recv_wo = recv.copy()
            recv_wo[a] -= s_k - col[a]

            # Assigning k to b: send loads become send_wo + col except
            # entry b (kept local); only recv[b] changes on the recv side.
            base = send_wo + col
            m1, a1, m2 = _top2(base)
            max_send = np.full(n, m1)
            max_send[a1] = max(m2, send_wo[a1])

            r1, b1, r2 = _top2(recv_wo)
            max_recv_others = np.full(n, r1)
            max_recv_others[b1] = r2
            recv_cand = recv_wo + (s_k - col)

            t_b = np.maximum(max_send, np.maximum(max_recv_others, recv_cand))
            t_b[a] = np.inf  # staying put is not a move
            b = int(t_b.argmin())
            if best is None or t_b[b] < best[0]:
                best = (float(t_b[b]), k, b)

        if best is None or best[0] >= current_t - 1e-9:
            break
        _, k, b = best
        a = dest[k]
        col = h[:, k]
        s_k = sizes[k]
        send[a] += col[a]
        send[b] -= col[b]
        recv[a] -= s_k - col[a]
        recv[b] += s_k - col[b]
        dest[k] = b
        current_t = float(max(send.max(), recv.max()))
        moves += 1
    else:  # pragma: no cover - loop guard
        pass

    final_t = model.evaluate(dest).bottleneck_bytes
    return RefinementResult(
        dest=dest, initial_t=initial_t, final_t=final_t, moves=moves
    )
