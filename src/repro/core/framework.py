"""The CCF orchestrator: the schedule/control layer of the paper's Fig. 3.

An analytical job is decomposed into distributed operators; for each
operator the framework takes the workload's data/network information,
optionally runs skew pre-processing, computes an application-level
assignment with the chosen strategy, and emits an
:class:`~repro.core.plan.ExecutionPlan` whose coflow the data-processing
layer (our simulator) executes.

Strategy semantics follow the paper's evaluation setup (§IV-A):

* ``hash``  -- no skew handling (represents network-level-only
  optimization: the raw hash plan executed by an optimal coflow schedule);
* ``mini``  -- skew handling + per-partition traffic minimization
  (application- and network-level optimization, but decoupled);
* ``ccf``   -- skew handling + Algorithm 1 (the co-optimization);
* ``ccf-ls``  -- ``ccf`` polished by single-move local search;
* ``ccf-exact`` -- skew handling + the exact MILP (small instances only).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.exact import ccf_exact
from repro.core.heuristic import ccf_heuristic
from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan
from repro.core.strategies import hash_assignment, mini_assignment

__all__ = ["CCF", "PlanComparison", "ShuffleWorkload", "DEFAULT_STRATEGIES"]

#: The three schemes compared throughout the paper's evaluation.
DEFAULT_STRATEGIES = ("hash", "mini", "ccf")


@runtime_checkable
class ShuffleWorkload(Protocol):
    """Anything that can express its shuffle as a :class:`ShuffleModel`.

    ``skew_handling=False`` must return the raw model (all bytes in the
    chunk matrix); ``True`` applies partial duplication when the workload
    has skew information (and may return the raw model when it has none).
    """

    def shuffle_model(self, *, skew_handling: bool) -> ShuffleModel:  # pragma: no cover
        ...


@dataclass
class PlanComparison:
    """Plans of several strategies over the same workload.

    Provides the derived quantities reported in the paper: traffic,
    communication time, and pairwise speedups.
    """

    plans: dict[str, ExecutionPlan] = field(default_factory=dict)

    def __getitem__(self, strategy: str) -> ExecutionPlan:
        return self.plans[strategy]

    def __contains__(self, strategy: str) -> bool:
        return strategy in self.plans

    @property
    def strategies(self) -> list[str]:
        return list(self.plans)

    def traffic(self, strategy: str) -> float:
        """Network traffic (bytes) of one strategy's plan."""
        return self.plans[strategy].traffic

    def cct(self, strategy: str) -> float:
        """Communication time (seconds) of one strategy's plan."""
        return self.plans[strategy].cct

    def speedup(self, slow: str, fast: str) -> float:
        """How many times faster ``fast``'s communication is than ``slow``'s."""
        denom = self.plans[fast].cct
        if denom == 0:
            return float("inf")
        return self.plans[slow].cct / denom

    def row(self) -> dict[str, float]:
        """Flat metric dict, convenient for experiment tables."""
        out: dict[str, float] = {}
        for name, plan in self.plans.items():
            out[f"{name}_traffic_gb"] = plan.traffic / 1e9
            out[f"{name}_cct_s"] = plan.cct
            out[f"{name}_solve_s"] = plan.solve_seconds
        return out


class CCF:
    """Coflow-based Co-optimization Framework front-end.

    Parameters
    ----------
    skew_handling:
        Apply partial duplication for the ``mini``/``ccf`` strategies when
        the workload supports it (paper default: on).
    sort_partitions, locality_tiebreak:
        Algorithm 1 knobs (see :func:`repro.core.heuristic.ccf_heuristic`).
    exact_time_limit:
        Wall-clock cap for the ``ccf-exact`` strategy.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CCF, ShuffleModel
    >>> model = ShuffleModel(h=np.array([[4., 0.], [1., 3.]]), rate=1.0)
    >>> plan = CCF().plan(model, strategy="ccf")
    >>> plan.dest.shape
    (2,)
    """

    def __init__(
        self,
        *,
        skew_handling: bool = True,
        sort_partitions: bool = True,
        locality_tiebreak: bool = True,
        exact_time_limit: float | None = None,
        exact_max_variables: int | None = None,
    ) -> None:
        self.skew_handling = skew_handling
        self.sort_partitions = sort_partitions
        self.locality_tiebreak = locality_tiebreak
        self.exact_time_limit = exact_time_limit
        self.exact_max_variables = exact_max_variables

    # ------------------------------------------------------------------
    def model_for(
        self, workload: ShuffleWorkload | ShuffleModel, strategy: str
    ) -> ShuffleModel:
        """Resolve the shuffle model a strategy plans against.

        Per the paper's setup, skew handling is integrated into ``mini``
        and ``ccf`` but not into ``hash``.
        """
        if isinstance(workload, ShuffleModel):
            return workload
        use_skew = self.skew_handling and strategy != "hash"
        return workload.shuffle_model(skew_handling=use_skew)

    def assign(self, model: ShuffleModel, strategy: str) -> np.ndarray:
        """Compute the assignment vector for one strategy."""
        if strategy == "hash":
            return hash_assignment(model)
        if strategy == "mini":
            return mini_assignment(model)
        if strategy == "ccf":
            return ccf_heuristic(
                model,
                sort_partitions=self.sort_partitions,
                locality_tiebreak=self.locality_tiebreak,
            )
        if strategy == "ccf-ls":
            from repro.core.localsearch import refine_assignment

            start = ccf_heuristic(
                model,
                sort_partitions=self.sort_partitions,
                locality_tiebreak=self.locality_tiebreak,
            )
            return refine_assignment(model, start).dest
        if strategy == "ccf-exact":
            kwargs: dict = {"time_limit": self.exact_time_limit}
            if self.exact_max_variables is not None:
                kwargs["max_variables"] = self.exact_max_variables
            return ccf_exact(model, **kwargs).dest
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of "
            "'hash', 'mini', 'ccf', 'ccf-ls', 'ccf-exact'"
        )

    def plan(
        self, workload: ShuffleWorkload | ShuffleModel, strategy: str = "ccf"
    ) -> ExecutionPlan:
        """Produce a timed, evaluated execution plan for one operator."""
        model = self.model_for(workload, strategy)
        start = time.perf_counter()
        dest = self.assign(model, strategy)
        elapsed = time.perf_counter() - start
        return ExecutionPlan(
            model=model, dest=dest, strategy=strategy, solve_seconds=elapsed
        )

    def compare(
        self,
        workload: ShuffleWorkload | ShuffleModel,
        strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    ) -> PlanComparison:
        """Plan the same workload under several strategies (paper Fig. 4)."""
        return PlanComparison(
            plans={s: self.plan(workload, s) for s in strategies}
        )
