"""The CCF shuffle model: chunk matrix, initial flows, and plan evaluation.

Notation follows the paper (Table I):

* ``n`` computing nodes, ``p`` hash partitions.
* ``h[i, k]`` -- bytes of partition ``k`` resident on node ``i``.
* ``x[j, k]`` -- binary decision: partition ``k`` is assigned to node ``j``
  (here represented densely as ``dest[k] = j``).
* ``v0[i, j]`` -- initial flow volumes fixed *before* the assignment (the
  broadcast traffic produced by partial-duplication skew handling, §III-C).

For an assignment the induced flow volume is
``v[i, j] = v0[i, j] + sum_k h[i, k] * x[j, k]  (i != j)`` and the paper's
objective (model (3)) is ``T = max(max_i send_i, max_j recv_j)`` over port
byte loads; under a non-blocking switch with uniform port rate ``R`` the
bandwidth-optimal CCT is exactly ``T / R``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.fabric import DEFAULT_PORT_RATE
from repro.network.flow import Coflow, coflow_from_matrix

__all__ = ["ShuffleModel", "PlanMetrics", "group_by_destination"]


def group_by_destination(h: np.ndarray, dest: np.ndarray) -> np.ndarray:
    """Aggregate chunk columns by destination: ``M[i, j] = sum_{k: dest[k]=j} h[i, k]``.

    Vectorized with a stable sort + ``reduceat`` (O(n*p + p log p)) instead
    of a dense one-hot matmul (O(n*p*n)), which matters at paper scale
    (n=1000, p=15000).
    """
    n, p = h.shape
    out = np.zeros((n, n))
    if p == 0:
        return out
    order = np.argsort(dest, kind="stable")
    sorted_dest = dest[order]
    # Start index of each destination group in the sorted order.
    starts = np.flatnonzero(np.r_[True, sorted_dest[1:] != sorted_dest[:-1]])
    groups = sorted_dest[starts]
    sums = np.add.reduceat(h[:, order], starts, axis=1)
    out[:, groups] = sums
    return out


@dataclass
class PlanMetrics:
    """Evaluation of one assignment under the CCF model.

    Attributes
    ----------
    traffic:
        Total bytes crossing the network (off-diagonal volume), the metric
        the ``Mini`` strategy minimizes (paper Fig. 5(a)/6(a)/7(a)).
    send_loads, recv_loads:
        Per-port byte loads including initial flows -- the paper's
        ``C_i`` / ``C_j`` (constraints (3.1)/(3.2)).
    bottleneck_bytes:
        ``T = max(max send, max recv)``, the objective of model (3).
    cct:
        Bandwidth-optimal coflow completion time ``T / rate`` in seconds
        (Fig. 5(b)/6(b)/7(b)).
    local_bytes:
        Bytes that stayed on their node (data locality exploited).
    """

    traffic: float
    send_loads: np.ndarray
    recv_loads: np.ndarray
    bottleneck_bytes: float
    cct: float
    local_bytes: float

    def summary(self) -> str:
        """One-line human-readable summary (GB / seconds)."""
        return (
            f"traffic={self.traffic / 1e9:.1f} GB, "
            f"T={self.bottleneck_bytes / 1e9:.2f} GB, "
            f"CCT={self.cct:.1f} s, local={self.local_bytes / 1e9:.1f} GB"
        )


@dataclass
class ShuffleModel:
    """Inputs of the co-optimization problem for one distributed operator.

    Parameters
    ----------
    h:
        Chunk-size matrix, shape ``(n, p)``, non-negative bytes.
    v0:
        Initial flow volumes, shape ``(n, n)``, zero diagonal.  Defaults to
        no initial flows.  Produced by skew handling (broadcast traffic).
    rate:
        Uniform port rate in bytes/second (``R_l`` in the paper); default
        is CoflowSim's 128 MB/s.
    local_bytes_pre:
        Bytes already pinned local by pre-processing (skewed tuples kept in
        place); accounted in :attr:`PlanMetrics.local_bytes` only.
    extra_send, extra_recv:
        Residual per-port byte loads from *other* traffic already on the
        fabric (in-flight shuffles of earlier operators -- the online
        extension).  They tighten constraints (3.1)/(3.2) exactly like
        initial flows but carry no pairwise structure and are not counted
        as this operator's traffic.
    """

    h: np.ndarray
    v0: np.ndarray | None = None
    rate: float = DEFAULT_PORT_RATE
    local_bytes_pre: float = 0.0
    name: str = ""
    extra_send: np.ndarray | None = None
    extra_recv: np.ndarray | None = None
    _partition_sizes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.h = np.asarray(self.h, dtype=float)
        if self.h.ndim != 2:
            raise ValueError(f"h must be 2-D (n, p), got shape {self.h.shape}")
        if (self.h < 0).any():
            raise ValueError("chunk sizes must be non-negative")
        n = self.h.shape[0]
        if self.v0 is None:
            self.v0 = np.zeros((n, n))
        else:
            self.v0 = np.asarray(self.v0, dtype=float)
            if self.v0.shape != (n, n):
                raise ValueError(f"v0 must have shape ({n}, {n})")
            if (self.v0 < 0).any():
                raise ValueError("initial flow volumes must be non-negative")
            if np.diagonal(self.v0).any():
                raise ValueError("v0 diagonal (local flows) must be zero")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        for attr in ("extra_send", "extra_recv"):
            val = getattr(self, attr)
            if val is None:
                setattr(self, attr, np.zeros(n))
            else:
                val = np.asarray(val, dtype=float)
                if val.shape != (n,):
                    raise ValueError(f"{attr} must have shape ({n},)")
                if (val < 0).any():
                    raise ValueError(f"{attr} must be non-negative")
                setattr(self, attr, val)
        self._partition_sizes = self.h.sum(axis=0)

    @property
    def n(self) -> int:
        """Number of computing nodes."""
        return int(self.h.shape[0])

    @property
    def p(self) -> int:
        """Number of data partitions."""
        return int(self.h.shape[1])

    @property
    def partition_sizes(self) -> np.ndarray:
        """``S_k = sum_i h[i, k]`` -- total size of each partition (bytes)."""
        return self._partition_sizes

    @property
    def total_bytes(self) -> float:
        """All shuffle-eligible bytes plus initial flow volume."""
        return float(self.h.sum() + self.v0.sum())

    def initial_loads(self) -> tuple[np.ndarray, np.ndarray]:
        """Fixed (send, recv) port loads: initial flows plus residuals."""
        return (
            self.v0.sum(axis=1) + self.extra_send,
            self.v0.sum(axis=0) + self.extra_recv,
        )

    def validate_assignment(self, dest: np.ndarray) -> np.ndarray:
        """Check an assignment vector and return it as an int64 array."""
        dest = np.asarray(dest)
        if dest.shape != (self.p,):
            raise ValueError(f"assignment must have shape ({self.p},), got {dest.shape}")
        if not np.issubdtype(dest.dtype, np.integer):
            raise ValueError("assignment must be integral")
        if dest.size and ((dest < 0) | (dest >= self.n)).any():
            raise ValueError(f"assignment values must be in [0, {self.n})")
        return dest.astype(np.int64)

    def volume_matrix(self, dest: np.ndarray) -> np.ndarray:
        """Full ``(n, n)`` flow-volume matrix for an assignment.

        ``V[i, j]`` = bytes node ``i`` sends to node ``j``; the diagonal
        holds the bytes that stay local (not network traffic).
        """
        dest = self.validate_assignment(dest)
        return group_by_destination(self.h, dest) + self.v0

    def evaluate(self, dest: np.ndarray) -> PlanMetrics:
        """Compute :class:`PlanMetrics` for an assignment (vectorized)."""
        vol = self.volume_matrix(dest)
        diag = np.diagonal(vol).copy()
        send = vol.sum(axis=1) - diag + self.extra_send
        recv = vol.sum(axis=0) - diag + self.extra_recv
        bottleneck = float(max(send.max(initial=0.0), recv.max(initial=0.0)))
        return PlanMetrics(
            traffic=float(vol.sum() - diag.sum()),
            send_loads=send,
            recv_loads=recv,
            bottleneck_bytes=bottleneck,
            cct=bottleneck / self.rate,
            local_bytes=float(diag.sum() + self.local_bytes_pre),
        )

    def to_coflow(
        self, dest: np.ndarray, *, arrival_time: float = 0.0, name: str | None = None
    ) -> Coflow:
        """Materialize the assignment's shuffle as a :class:`Coflow`."""
        vol = self.volume_matrix(dest)
        return coflow_from_matrix(
            vol, arrival_time=arrival_time, name=name if name is not None else self.name
        )

    def cct_hetero(
        self,
        dest: np.ndarray,
        egress_rates: np.ndarray,
        ingress_rates: np.ndarray,
    ) -> float:
        """Bandwidth-optimal CCT under heterogeneous per-port rates.

        Generalizes ``T / R`` to ``max(max_i send_i/R^out_i,
        max_j recv_j/R^in_j)`` -- the closed form for a single coflow on
        a non-blocking switch with per-NIC speeds.
        """
        egress_rates = np.asarray(egress_rates, dtype=float)
        ingress_rates = np.asarray(ingress_rates, dtype=float)
        for nm, arr in (("egress", egress_rates), ("ingress", ingress_rates)):
            if arr.shape != (self.n,):
                raise ValueError(f"{nm}_rates must have shape ({self.n},)")
            if (arr <= 0).any():
                raise ValueError(f"{nm}_rates must be strictly positive")
        m = self.evaluate(dest)
        return float(
            max(
                (m.send_loads / egress_rates).max(initial=0.0),
                (m.recv_loads / ingress_rates).max(initial=0.0),
            )
        )

    def traffic_lower_bound(self) -> float:
        """Minimum achievable traffic: every partition keeps its largest chunk.

        This is exactly what ``Mini`` achieves, since partitions are
        independent in the traffic objective.
        """
        if self.p == 0:
            return float(self.v0.sum())
        return float(
            (self.partition_sizes - self.h.max(axis=0)).sum() + self.v0.sum()
        )

    def bottleneck_lower_bound(self) -> float:
        """A valid lower bound on ``T`` for any assignment.

        Combines two relaxations: (a) total traffic is at least the Mini
        traffic and is spread over at most ``n`` receiving ports, so some
        port ingests at least the mean; (b) the initial flows ``v0`` are
        fixed, so their port loads bound ``T`` from below.
        """
        send0, recv0 = self.initial_loads()
        mean_recv = (self.traffic_lower_bound()) / self.n if self.n else 0.0
        return float(max(mean_recv, send0.max(initial=0.0), recv0.max(initial=0.0)))
