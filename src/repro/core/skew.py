"""Partial-duplication skew handling (paper §III-C; Xu et al., SIGMOD'08).

Data skew -- a few join keys carrying a large share of the tuples -- turns
hash-based redistribution into a network hotspot.  Partial duplication
avoids moving the skewed tuples at all:

* skewed tuples of the *large* relation stay where they are (a "local
  move" costs nothing);
* the few matching tuples of the *small* relation are broadcast to every
  other node so the local joins remain complete.

In the CCF model this shows up as (a) a reduced chunk matrix ``h'`` (the
skewed and broadcast bytes leave the assignment problem) and (b) initial
flow volumes ``v0[i, j] = b_i`` (node ``i`` broadcasts its matching
small-relation bytes to every other node), which constraint (1.2') treats
as the initial status of each flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ShuffleModel

__all__ = ["PartialDuplication", "SkewHandlingResult", "detect_skewed_keys"]


def detect_skewed_keys(
    key_counts: dict[int, int] | np.ndarray, *, factor: float = 100.0
) -> np.ndarray:
    """Identify skewed keys: frequency above ``factor`` times the median.

    The median is used as the typical-frequency estimate because the hot
    keys themselves would inflate a mean and mask moderate skew.

    Parameters
    ----------
    key_counts:
        Either a mapping ``key -> count`` or an array where the index is
        the key and the value its count.
    factor:
        Multiple of the median frequency above which a key is skewed.

    Returns
    -------
    numpy.ndarray
        Sorted array of skewed key values.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if isinstance(key_counts, dict):
        keys = np.fromiter(key_counts.keys(), dtype=np.int64, count=len(key_counts))
        counts = np.fromiter(key_counts.values(), dtype=np.int64, count=len(key_counts))
    else:
        counts = np.asarray(key_counts)
        keys = np.arange(counts.shape[0], dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    present = counts > 0
    typical = float(np.median(counts[present])) if present.any() else 0.0
    skewed = keys[(counts > factor * typical) & present]
    return np.sort(skewed)


@dataclass
class SkewHandlingResult:
    """Output of partial duplication: the residual co-optimization problem.

    Attributes
    ----------
    model:
        The residual :class:`ShuffleModel` -- ``h'`` plus broadcast ``v0``.
    local_bytes:
        Skewed large-relation bytes pinned in place (never transferred).
    broadcast_traffic:
        Total bytes the broadcast injects into the network,
        ``sum_i b_i * (n - 1)``.
    """

    model: ShuffleModel
    local_bytes: float
    broadcast_traffic: float


class PartialDuplication:
    """Pre-processing pass turning a skewed shuffle into a residual one.

    Use :meth:`apply` with explicit byte matrices, e.g. produced by a
    workload generator or measured from real relations.
    """

    def apply(
        self,
        h_full: np.ndarray,
        *,
        h_skew_local: np.ndarray | None = None,
        h_broadcast: np.ndarray | None = None,
        rate: float | None = None,
        name: str = "",
    ) -> SkewHandlingResult:
        """Build the residual model.

        Parameters
        ----------
        h_full:
            Chunk matrix ``(n, p)`` of the complete shuffle (both
            relations, including skewed tuples).
        h_skew_local:
            Bytes (same shape) of large-relation skewed tuples to keep
            local.  Must be element-wise ``<= h_full``.
        h_broadcast:
            Bytes (same shape) of small-relation tuples matching the
            skewed keys; they leave the assignment problem and are instead
            broadcast from their resident node to all others.
        rate:
            Port rate for the residual model (default: model default).
        """
        h_full = np.asarray(h_full, dtype=float)
        n, _ = h_full.shape
        zeros = np.zeros_like(h_full)
        h_skew_local = zeros if h_skew_local is None else np.asarray(h_skew_local, float)
        h_broadcast = zeros if h_broadcast is None else np.asarray(h_broadcast, float)
        for nm, m in (("h_skew_local", h_skew_local), ("h_broadcast", h_broadcast)):
            if m.shape != h_full.shape:
                raise ValueError(f"{nm} must have shape {h_full.shape}")
            if (m < 0).any():
                raise ValueError(f"{nm} must be non-negative")
        removed = h_skew_local + h_broadcast
        if (removed > h_full * (1 + 1e-9) + 1e-6).any():
            raise ValueError("skewed + broadcast bytes exceed the chunk matrix")

        residual = np.maximum(h_full - removed, 0.0)
        b = h_broadcast.sum(axis=1)
        v0 = np.tile(b[:, None], (1, n))
        np.fill_diagonal(v0, 0.0)

        kwargs = {} if rate is None else {"rate": rate}
        model = ShuffleModel(
            h=residual,
            v0=v0,
            local_bytes_pre=float(h_skew_local.sum()),
            name=name,
            **kwargs,
        )
        return SkewHandlingResult(
            model=model,
            local_bytes=float(h_skew_local.sum()),
            broadcast_traffic=float(v0.sum()),
        )
