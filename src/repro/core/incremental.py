"""Incremental (streaming) co-optimization: assign partitions as they appear.

Algorithm 1 is intrinsically online in the partitions: each step assigns
one partition against the loads accumulated so far.  This module exposes
that structure as a streaming API -- a planner object that receives chunk
columns one at a time (e.g. as an ingest pipeline discovers partitions)
and immediately returns each partition's destination, maintaining exactly
the greedy's incremental state.

Feeding the same columns in the greedy's sorted order reproduces
``ccf_heuristic`` verbatim (tested); arbitrary arrival orders degrade
gracefully -- the cost of not being able to sort is precisely the
sorted-vs-unsorted gap the ablation bench measures.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristic import _top2

__all__ = ["IncrementalPlanner"]


class IncrementalPlanner:
    """Streaming destination assignment with Algorithm 1's step rule.

    Parameters
    ----------
    n_nodes:
        Fabric size.
    initial_send, initial_recv:
        Optional starting port loads (bytes) -- broadcast volumes or
        residuals of in-flight shuffles.
    locality_tiebreak:
        Prefer the largest local chunk among equally good destinations.
    allowed:
        Optional boolean mask over nodes restricting which destinations
        may be picked (at least one must be allowed).  Used by the
        fault-tolerance layer to re-plan chunks around failed ports; the
        disallowed nodes' loads still count toward the objective ``T``.
        :meth:`forbid` / :meth:`allow` adjust the mask later.

    Examples
    --------
    >>> import numpy as np
    >>> planner = IncrementalPlanner(n_nodes=3)
    >>> planner.assign(np.array([9.0, 1.0, 0.0]))  # keeps big chunk local
    0
    >>> planner.partitions_assigned
    1
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        initial_send: np.ndarray | None = None,
        initial_recv: np.ndarray | None = None,
        locality_tiebreak: bool = True,
        allowed: np.ndarray | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n = n_nodes
        self.locality_tiebreak = locality_tiebreak
        self._send = self._init_load(initial_send, "initial_send")
        self._recv = self._init_load(initial_recv, "initial_recv")
        self._count = 0
        if allowed is None:
            self._allowed = np.ones(self.n, dtype=bool)
        else:
            self._allowed = np.asarray(allowed, dtype=bool).copy()
            if self._allowed.shape != (self.n,):
                raise ValueError(f"allowed must have shape ({self.n},)")
            if not self._allowed.any():
                raise ValueError("at least one destination must be allowed")

    def forbid(self, node: int) -> None:
        """Remove a node from the candidate destinations (e.g. it died)."""
        if self._allowed.sum() == 1 and self._allowed[node]:
            raise ValueError("cannot forbid the last allowed destination")
        self._allowed[node] = False

    def allow(self, node: int) -> None:
        """Re-admit a node as a candidate destination (e.g. it recovered)."""
        self._allowed[node] = True

    def allowed_destinations(self) -> np.ndarray:
        """Copy of the boolean candidate-destination mask."""
        return self._allowed.copy()

    def _init_load(self, arr: np.ndarray | None, name: str) -> np.ndarray:
        if arr is None:
            return np.zeros(self.n)
        arr = np.asarray(arr, dtype=float).copy()
        if arr.shape != (self.n,):
            raise ValueError(f"{name} must have shape ({self.n},)")
        if (arr < 0).any():
            raise ValueError(f"{name} must be non-negative")
        return arr

    @property
    def partitions_assigned(self) -> int:
        """Number of partitions routed so far."""
        return self._count

    @property
    def bottleneck_bytes(self) -> float:
        """Current objective ``T`` over everything assigned so far."""
        return float(
            max(self._send.max(initial=0.0), self._recv.max(initial=0.0))
        )

    def loads(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the current (send, recv) byte loads."""
        return self._send.copy(), self._recv.copy()

    def peek(self, chunk_bytes: np.ndarray) -> tuple[int, float]:
        """Destination Algorithm 1 would pick, without committing.

        Returns ``(destination, resulting_T)``.
        """
        col = np.asarray(chunk_bytes, dtype=float)
        if col.shape != (self.n,):
            raise ValueError(f"chunk vector must have shape ({self.n},)")
        if (col < 0).any():
            raise ValueError("chunk bytes must be non-negative")
        if self.n == 1:
            return 0, self.bottleneck_bytes
        if self._allowed.sum() == 1:
            d = int(np.flatnonzero(self._allowed)[0])
            s_k = float(col.sum())
            send = self._send + col
            send[d] -= col[d]
            recv_d = self._recv[d] + (s_k - col[d])
            return d, float(max(send.max(), max(self._recv.max(), recv_d)))

        s_k = float(col.sum())
        base_send = self._send + col
        m1, a1, m2 = _top2(base_send)
        max_send = np.full(self.n, m1)
        max_send[a1] = max(m2, self._send[a1])

        r1, b1, r2 = _top2(self._recv)
        max_recv_others = np.full(self.n, r1)
        max_recv_others[b1] = r2
        recv_candidate = self._recv + (s_k - col)
        max_recv = np.maximum(max_recv_others, recv_candidate)

        t_d = np.maximum(max_send, max_recv)
        t_masked = np.where(self._allowed, t_d, np.inf)
        if self.locality_tiebreak:
            t_min = t_masked.min()
            ties = np.flatnonzero(
                (t_masked <= t_min * (1 + 1e-12) + 1e-9) & self._allowed
            )
            d = int(ties[np.argmax(col[ties])])
        else:
            d = int(t_masked.argmin())
        return d, float(t_d[d])

    def assign(self, chunk_bytes: np.ndarray) -> int:
        """Route one partition and commit its loads; returns the node."""
        col = np.asarray(chunk_bytes, dtype=float)
        d, _ = self.peek(col)
        s_k = float(col.sum())
        self._send += col
        self._send[d] -= col[d]
        self._recv[d] += s_k - col[d]
        self._count += 1
        return d
