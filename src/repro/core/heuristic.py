"""Algorithm 1: the CCF greedy heuristic (paper §III-B), vectorized.

The exact co-optimization (model (3)) is an integer multi-commodity-flow
MILP -- NP-complete, and the paper reports Gurobi needing over half an hour
at n=500, p=7500.  Algorithm 1 instead:

1. sorts partitions by their largest chunk, descending (big chunks move
   ``T`` the most, so they are placed first while the load vectors are
   still flexible);
2. for each partition in that order, tries all ``n`` destinations and
   keeps the one minimizing the *current* objective
   ``T = max(max_i C_i, max_j C_j)`` over the partitions placed so far.

A naive transcription costs O(p * n^2) with Python-level loops.  The
vectorized implementation below maintains incremental ``send``/``recv``
load vectors and evaluates all ``n`` candidate destinations of a partition
in O(n) numpy work using a top-2 argmax trick, for O(n*p) total -- seconds
at paper scale (n=1000, p=15000).  A direct, loop-based transcription of
the paper's pseudocode (:func:`ccf_heuristic_reference`) is kept for
cross-validation in the test suite.

Beyond the paper's pseudocode we add an optional *locality tie-break*:
among destinations with equal minimal ``T_d``, prefer the one holding the
largest local chunk.  This never changes the achieved ``T`` for the current
step but reduces traffic, reproducing the paper's observation that "CCF
could be able to explore part of data locality" (Fig. 5(a) discussion).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ShuffleModel

__all__ = ["ccf_heuristic", "ccf_heuristic_reference"]


def _top2(values: np.ndarray) -> tuple[float, int, float]:
    """Return (max, argmax, second max) of a 1-D array."""
    a1 = int(values.argmax())
    m1 = float(values[a1])
    if values.shape[0] == 1:
        return m1, a1, -np.inf
    # Mask out the argmax to find the runner-up.
    prev = values[a1]
    values[a1] = -np.inf
    m2 = float(values.max())
    values[a1] = prev
    return m1, a1, m2


def ccf_heuristic(
    model: ShuffleModel,
    *,
    sort_partitions: bool = True,
    locality_tiebreak: bool = True,
    egress_rates: np.ndarray | None = None,
    ingress_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized Algorithm 1.

    Parameters
    ----------
    model:
        Shuffle model with chunk matrix ``h`` and initial flows ``v0``.
    sort_partitions:
        Process partitions in descending order of their largest chunk
        (line 1 of Algorithm 1).  Disable only for the ablation bench.
    locality_tiebreak:
        Among equally good destinations prefer the largest local chunk.
    egress_rates, ingress_rates:
        Optional per-port rates (bytes/second) for heterogeneous fabrics;
        candidate scores become seconds (``load / rate``) instead of
        bytes.  With uniform rates the assignment is identical to the
        byte-scored algorithm.

    Returns
    -------
    numpy.ndarray
        ``dest[k]`` -- the chosen node for each partition.
    """
    h = model.h
    n, p = model.n, model.p
    dest = np.zeros(p, dtype=np.int64)
    if p == 0:
        return dest
    if n == 1:
        return dest

    inv_out = inv_in = None
    if egress_rates is not None or ingress_rates is not None:
        e = (
            np.asarray(egress_rates, dtype=float)
            if egress_rates is not None
            else np.full(n, model.rate)
        )
        i = (
            np.asarray(ingress_rates, dtype=float)
            if ingress_rates is not None
            else np.full(n, model.rate)
        )
        if e.shape != (n,) or i.shape != (n,):
            raise ValueError(f"per-port rates must have shape ({n},)")
        if (e <= 0).any() or (i <= 0).any():
            raise ValueError("per-port rates must be strictly positive")
        inv_out, inv_in = 1.0 / e, 1.0 / i

    send0, recv0 = model.initial_loads()
    send = send0.copy()  # C_i accumulated over assigned partitions
    recv = recv0.copy()  # C_j accumulated over assigned partitions
    sizes = model.partition_sizes

    if sort_partitions:
        order = np.argsort(-h.max(axis=0), kind="stable")
    else:
        order = np.arange(p)

    for k in order:
        col = h[:, k]
        s_k = sizes[k]

        # If partition k were assigned to d, the send loads become
        # ``send + col`` except entry d which stays at ``send[d]``
        # (node d keeps its own chunk local).
        base_send = send + col
        scaled_send = base_send * inv_out if inv_out is not None else base_send
        m1, a1, m2 = _top2(scaled_send)

        # max over i of the send loads, for every candidate d at once:
        # for d != a1 it is m1; for d == a1 it is max(m2, send[a1]).
        max_send = np.full(n, m1)
        own_send = send[a1] * inv_out[a1] if inv_out is not None else send[a1]
        max_send[a1] = max(m2, own_send)

        # Receive side: only entry d changes, to recv[d] + (S_k - h[d,k]).
        scaled_recv = recv * inv_in if inv_in is not None else recv
        r1, b1, r2 = _top2(scaled_recv)
        max_recv_others = np.full(n, r1)
        max_recv_others[b1] = r2
        recv_candidate = recv + (s_k - col)
        if inv_in is not None:
            recv_candidate = recv_candidate * inv_in
        max_recv = np.maximum(max_recv_others, recv_candidate)

        t_d = np.maximum(max_send, max_recv)

        if locality_tiebreak:
            t_min = t_d.min()
            ties = np.flatnonzero(t_d <= t_min * (1 + 1e-12) + 1e-9)
            d = int(ties[np.argmax(col[ties])])
        else:
            d = int(t_d.argmin())

        dest[k] = d
        send += col
        send[d] -= col[d]
        recv[d] += s_k - col[d]

    return dest


def ccf_heuristic_reference(
    model: ShuffleModel,
    *,
    sort_partitions: bool = True,
    locality_tiebreak: bool = True,
) -> np.ndarray:
    """Direct transcription of the paper's Algorithm 1 pseudocode.

    O(p * n^2); used to cross-validate :func:`ccf_heuristic` on small
    instances.  For each partition and each candidate destination ``d`` it
    recomputes every ``C_i`` (constraint (3.1)) and ``C_j`` (constraint
    (3.2)) from the assignments made so far, takes
    ``T_d = max(C_i, C_j)`` (line 7), and keeps the minimizing ``d``
    (line 9).
    """
    h = model.h
    n, p = model.n, model.p
    dest = np.full(p, -1, dtype=np.int64)
    if p == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(p, dtype=np.int64)

    send0, recv0 = model.initial_loads()
    sizes = model.partition_sizes

    if sort_partitions:
        order = np.argsort(-h.max(axis=0), kind="stable")
    else:
        order = np.arange(p)

    for k in order:
        best_d, best_t, best_local = -1, np.inf, -np.inf
        for d in range(n):
            dest[k] = d
            assigned = dest >= 0
            send = send0.copy()
            recv = recv0.copy()
            for kk in np.flatnonzero(assigned):
                dd = dest[kk]
                send += h[:, kk]
                send[dd] -= h[dd, kk]
                recv[dd] += sizes[kk] - h[dd, kk]
            t_d = max(send.max(), recv.max())
            local = h[d, k]
            better = t_d < best_t - 1e-9
            tie = abs(t_d - best_t) <= 1e-9 + 1e-12 * best_t
            if better or (
                tie and locality_tiebreak and local > best_local + 1e-12
            ):
                best_d, best_t, best_local = d, t_d, local
        dest[k] = best_d

    return dest
