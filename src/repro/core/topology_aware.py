"""Topology-aware co-optimization: Algorithm 1 under oversubscribed trees.

The paper's model assumes a non-blocking switch but notes that "our model
can be easily extended to complex network conditions (e.g., routing) by
adding parameters to these two constraints" (§III-A, footnote 4).  This
module performs that extension for the two-level tree of
:class:`repro.network.topology.TwoLevelTopology`: beyond the per-NIC send
and receive constraints (3.1)/(3.2), every rack's uplink carries all
bytes leaving the rack and its downlink all bytes entering it.  The
objective becomes wall-clock time directly (port and uplink rates
differ):

    T = max( max_i send_i / R_nic,
             max_j recv_j / R_nic,
             max_r up_r   / R_uplink(r),
             max_r down_r / R_uplink(r) )

The greedy stays O(n·p) using the same incremental top-2 trick, with one
extra pair of load vectors at rack granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ShuffleModel
from repro.network.topology import TwoLevelTopology

__all__ = [
    "TopologyPlanMetrics",
    "ccf_heuristic_topology",
    "evaluate_on_topology",
]


@dataclass
class TopologyPlanMetrics:
    """Evaluation of an assignment under an oversubscribed topology.

    ``cct`` is the bandwidth-optimal completion time including uplink
    constraints; ``nic_seconds`` / ``uplink_seconds`` expose which family
    of constraints binds.
    """

    cct: float
    nic_seconds: float
    uplink_seconds: float
    traffic: float

    @property
    def uplink_bound(self) -> bool:
        """True when the rack uplinks (not the NICs) are the bottleneck."""
        return self.uplink_seconds > self.nic_seconds


def _rack_chunks(h: np.ndarray, racks: np.ndarray, n_racks: int) -> np.ndarray:
    """Aggregate chunk matrix to rack granularity: (n_racks, p)."""
    out = np.zeros((n_racks, h.shape[1]))
    np.add.at(out, racks, h)
    return out


def evaluate_on_topology(
    model: ShuffleModel, topo: TwoLevelTopology, dest: np.ndarray
) -> TopologyPlanMetrics:
    """Closed-form optimal CCT of an assignment under the topology."""
    if model.n != topo.n_hosts:
        raise ValueError("model nodes and topology hosts differ")
    dest = model.validate_assignment(dest)
    metrics = model.evaluate(dest)
    nic_seconds = max(
        metrics.send_loads.max(initial=0.0), metrics.recv_loads.max(initial=0.0)
    ) / topo.host_rate

    racks = np.arange(model.n) // topo.hosts_per_rack
    n_racks = topo.n_racks
    h_rack = _rack_chunks(model.h, racks, n_racks)
    sizes = model.partition_sizes
    dest_rack = racks[dest]

    up = np.zeros(n_racks)
    down = np.zeros(n_racks)
    for r in range(n_racks):
        mine = dest_rack == r
        # Bytes entering rack r: everything of its partitions held elsewhere.
        down[r] = (sizes[mine] - h_rack[r, mine]).sum()
    # Bytes leaving rack r: its chunks of partitions destined elsewhere.
    for r in range(n_racks):
        other = dest_rack != r
        up[r] = h_rack[r, other].sum()
    # Initial flows also traverse uplinks when cross-rack.
    if model.v0.any():
        v0 = model.v0
        for i in range(model.n):
            for j in range(model.n):
                if v0[i, j] and racks[i] != racks[j]:
                    up[racks[i]] += v0[i, j]
                    down[racks[j]] += v0[i, j]

    uplink_rates = np.array([topo.uplink_rate(r) for r in range(n_racks)])
    uplink_seconds = max(
        (up / uplink_rates).max(initial=0.0),
        (down / uplink_rates).max(initial=0.0),
    )
    return TopologyPlanMetrics(
        cct=max(nic_seconds, uplink_seconds),
        nic_seconds=float(nic_seconds),
        uplink_seconds=float(uplink_seconds),
        traffic=metrics.traffic,
    )


def _top2(values: np.ndarray) -> tuple[float, int, float]:
    a1 = int(values.argmax())
    m1 = float(values[a1])
    if values.shape[0] == 1:
        return m1, a1, -np.inf
    prev = values[a1]
    values[a1] = -np.inf
    m2 = float(values.max())
    values[a1] = prev
    return m1, a1, m2


def ccf_heuristic_topology(
    model: ShuffleModel,
    topo: TwoLevelTopology,
    *,
    sort_partitions: bool = True,
) -> np.ndarray:
    """Algorithm 1 with rack-uplink constraints folded into ``T_d``.

    Identical greedy skeleton to :func:`repro.core.heuristic.ccf_heuristic`
    but each candidate destination is scored in seconds, combining the NIC
    terms with the destination rack's uplink/downlink terms.
    """
    if model.n != topo.n_hosts:
        raise ValueError("model nodes and topology hosts differ")
    n, p = model.n, model.p
    dest = np.zeros(p, dtype=np.int64)
    if p == 0 or n == 1:
        return dest

    racks = np.arange(n) // topo.hosts_per_rack
    n_racks = topo.n_racks
    uplink_rates = np.array([topo.uplink_rate(r) for r in range(n_racks)])
    r_nic = topo.host_rate

    h = model.h
    h_rack = _rack_chunks(h, racks, n_racks)
    sizes = model.partition_sizes
    rack_sizes = h_rack  # alias for clarity below

    send0, recv0 = model.initial_loads()
    send = send0.copy()
    recv = recv0.copy()
    up = np.zeros(n_racks)
    down = np.zeros(n_racks)
    if model.v0.any():
        for i in range(n):
            for j in range(n):
                if model.v0[i, j] and racks[i] != racks[j]:
                    up[racks[i]] += model.v0[i, j]
                    down[racks[j]] += model.v0[i, j]

    order = (
        np.argsort(-h.max(axis=0), kind="stable") if sort_partitions else np.arange(p)
    )

    for k in order:
        col = h[:, k]
        col_rack = rack_sizes[:, k]
        s_k = sizes[k]

        # NIC send: as in the flat heuristic, in seconds.
        base_send = send + col
        m1, a1, m2 = _top2(base_send)
        max_send = np.full(n, m1)
        max_send[a1] = max(m2, send[a1])

        r1, b1, r2 = _top2(recv)
        max_recv_others = np.full(n, r1)
        max_recv_others[b1] = r2
        recv_candidate = recv + (s_k - col)
        max_recv = np.maximum(max_recv_others, recv_candidate)

        nic_time = np.maximum(max_send, max_recv) / r_nic

        # Rack terms, computed per candidate rack then expanded to nodes.
        base_up = (up + col_rack) / uplink_rates
        u1, ua, u2 = _top2(base_up)
        max_up_rack = np.full(n_racks, u1)
        max_up_rack[ua] = max(u2, up[ua] / uplink_rates[ua])

        down_time = down / uplink_rates
        d1, da, d2 = _top2(down_time)
        max_down_others = np.full(n_racks, d1)
        max_down_others[da] = d2
        down_candidate = (down + (s_k - col_rack)) / uplink_rates
        max_down_rack = np.maximum(max_down_others, down_candidate)

        rack_time = np.maximum(max_up_rack, max_down_rack)[racks]

        t_d = np.maximum(nic_time, rack_time)
        t_min = t_d.min()
        ties = np.flatnonzero(t_d <= t_min * (1 + 1e-12) + 1e-9)
        d = int(ties[np.argmax(col[ties])])

        dest[k] = d
        send += col
        send[d] -= col[d]
        recv[d] += s_k - col[d]
        rd = racks[d]
        up += col_rack
        up[rd] -= col_rack[rd]
        down[rd] += s_k - col_rack[rd]

    return dest
