"""Concurrent co-optimization of several operators sharing the fabric.

The paper's architecture runs a job's operators sequentially, but real
analytical engines overlap independent operators (different queries,
different stages).  When K shuffles run *simultaneously* on a
non-blocking switch and finish together, the bandwidth-optimal makespan
is again ``max port load / rate`` -- now over the **sum** of the
operators' loads.  That makes joint planning exactly equivalent to
solving one merged model whose chunk matrix is the column-wise
concatenation of the operators' matrices, so Algorithm 1 (or the exact
MILP) applies unchanged.

``plan_concurrent`` performs the merge, solves once, splits the
assignment back per operator, and reports both the per-operator metrics
and the joint makespan.  Independent (oblivious) planning can collide on
ports; the merged plan cannot be worse than the best independent plan on
the crafted workloads in the tests, and is often strictly better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan

__all__ = ["ConcurrentPlan", "plan_concurrent", "merge_models", "joint_makespan"]


def merge_models(models: list[ShuffleModel]) -> ShuffleModel:
    """Concatenate operators into one co-optimization instance.

    All models must agree on node count and rate.  Initial flows and
    residual loads add; ``local_bytes_pre`` accumulates.
    """
    if not models:
        raise ValueError("need at least one model")
    n = models[0].n
    rate = models[0].rate
    for m in models:
        if m.n != n:
            raise ValueError("models span different node counts")
        if m.rate != rate:
            raise ValueError("models disagree on port rate")
    return ShuffleModel(
        h=np.concatenate([m.h for m in models], axis=1),
        v0=sum((m.v0 for m in models), np.zeros((n, n))),
        rate=rate,
        local_bytes_pre=sum(m.local_bytes_pre for m in models),
        name="+".join(filter(None, (m.name for m in models))) or "merged",
        extra_send=sum((m.extra_send for m in models), np.zeros(n)),
        extra_recv=sum((m.extra_recv for m in models), np.zeros(n)),
    )


def joint_makespan(plans: list[ExecutionPlan]) -> float:
    """Bandwidth-optimal makespan of several shuffles running together.

    All plans must share the rate; the makespan is the max summed port
    load over the rate.
    """
    if not plans:
        return 0.0
    rate = plans[0].model.rate
    n = max(p.model.n for p in plans)
    send = np.zeros(n)
    recv = np.zeros(n)
    for p in plans:
        if p.model.rate != rate:
            raise ValueError("plans disagree on port rate")
        m = p.metrics
        send[: p.model.n] += m.send_loads
        recv[: p.model.n] += m.recv_loads
    return float(max(send.max(), recv.max()) / rate)


@dataclass
class ConcurrentPlan:
    """Joint plan for K concurrent operators.

    Attributes
    ----------
    plans:
        One :class:`ExecutionPlan` per input model (same order).
    makespan_seconds:
        Bandwidth-optimal completion time of all shuffles together.
    """

    plans: list[ExecutionPlan]
    makespan_seconds: float

    def __len__(self) -> int:
        return len(self.plans)

    def __getitem__(self, i: int) -> ExecutionPlan:
        return self.plans[i]


def plan_concurrent(
    models: list[ShuffleModel],
    *,
    strategy: str = "ccf",
    ccf: CCF | None = None,
) -> ConcurrentPlan:
    """Jointly plan K operators that will share the fabric.

    The merged instance is solved once with ``strategy``; the assignment
    is split back so each operator gets its own plan (whose metrics are
    its *own* loads -- the joint makespan is reported separately).
    """
    ccf = ccf or CCF()
    merged = merge_models(models)
    merged_plan = ccf.plan(merged, strategy)

    plans: list[ExecutionPlan] = []
    offset = 0
    for m in models:
        dest = merged_plan.dest[offset: offset + m.p]
        offset += m.p
        plans.append(
            ExecutionPlan(
                model=m,
                dest=dest,
                strategy=f"{strategy}-concurrent",
                solve_seconds=merged_plan.solve_seconds,
            )
        )
    return ConcurrentPlan(
        plans=plans, makespan_seconds=joint_makespan(plans)
    )
