"""Reusable resilience primitives: retries, budgets, stalls, crash reports.

PRs 1-2 made the *simulated* fabric fault-tolerant; this module makes the
*platform itself* survive.  Everything the supervised execution layer
needs lives here and nowhere else:

* a structured **error taxonomy** (:class:`StallError`,
  :class:`BudgetExceeded`, :class:`CellTimeout`, :class:`WorkerCrash`,
  :class:`CacheCorruption`) so supervisors can react to *what* went
  wrong instead of pattern-matching message strings;
* :class:`Backoff` + :func:`retry_call` -- bounded retries with
  exponential backoff and **deterministic jitter** (hash-derived, so the
  same attempt of the same task always waits the same time: retry
  schedules are reproducible across processes and platforms, the same
  property :func:`repro.experiments.engine.derive_seed` gives seeds);
* :class:`Deadline` -- a wall-clock budget that raises
  :class:`BudgetExceeded` when overrun;
* :class:`StallDetector` -- counts consecutive no-progress observations
  (a simulation clock that stops advancing) and trips after a bound;
* :func:`run_with_timeout` -- SIGALRM-based hard timeout for one call
  (how sweep workers bound a single cell);
* :func:`crash_report` / :func:`write_crash_report` -- the structured
  post-mortem document every watchdog abort attaches to its error.

The primitives are dependency-free and synchronous on purpose: the
simulator's epoch loop, the sweep engine's worker pool and the chaos
campaign runner all thread through them without an event loop or a
supervisor daemon.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "ResilienceError",
    "StallError",
    "BudgetExceeded",
    "CellTimeout",
    "WorkerCrash",
    "CacheCorruption",
    "Backoff",
    "retry_call",
    "Deadline",
    "StallDetector",
    "run_with_timeout",
    "crash_report",
    "write_crash_report",
]


# -- error taxonomy -----------------------------------------------------


class ResilienceError(RuntimeError):
    """Base of the supervised-execution error taxonomy.

    Subclasses of :class:`RuntimeError` on purpose: call sites that
    predate the taxonomy (``except RuntimeError``) keep working, while
    supervisors can catch the precise failure class.  Every instance can
    carry a structured crash ``report`` (see :func:`crash_report`).
    """

    def __init__(self, message: str = "", *, report: dict | None = None) -> None:
        super().__init__(message)
        self.report = report

    def __reduce__(self):  # keep ``report`` across pickling (worker -> parent)
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {"report": self.report},
        )


class StallError(ResilienceError):
    """The watched computation stopped making progress (clock frozen)."""


class BudgetExceeded(ResilienceError):
    """A resource budget (wall clock, epochs) was exhausted."""


class CellTimeout(BudgetExceeded):
    """One unit of work overran its per-call wall-clock budget."""


class WorkerCrash(ResilienceError):
    """A worker process died hard (killed / segfaulted), taking work with it."""


class CacheCorruption(ResilienceError):
    """A persisted artifact failed its integrity check (truncated / garbled)."""


# -- retry / backoff ----------------------------------------------------


def _jitter_factor(seed: int, attempt: int, jitter: float) -> float:
    """Deterministic jitter multiplier in ``[1 - jitter, 1 + jitter]``.

    Hash-derived (like :func:`~repro.experiments.engine.derive_seed`)
    rather than drawn from a shared RNG, so the factor depends only on
    ``(seed, attempt, jitter)`` -- stable across processes, platforms
    and numpy versions, which keeps retry schedules reproducible and
    testable.
    """
    if jitter == 0.0:
        return 1.0
    digest = hashlib.sha256(
        json.dumps([int(seed), int(attempt)]).encode()
    ).digest()
    unit = int.from_bytes(digest[:8], "big") / float(2**64)  # [0, 1)
    return 1.0 + jitter * (2.0 * unit - 1.0)


@dataclass(frozen=True)
class Backoff:
    """Bounded exponential backoff with deterministic jitter.

    The *base* schedule is ``base_delay * multiplier**k`` capped at
    ``max_delay`` -- monotone non-decreasing by construction.  Jitter
    multiplies each delay by a hash-derived factor in
    ``[1 - jitter, 1 + jitter]`` so independent retriers decorrelate
    without sacrificing reproducibility.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (so ``max_attempts - 1``
        retries).  Must be >= 1.
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Exponential growth factor (>= 1 keeps the schedule monotone).
    max_delay:
        Upper clamp on the un-jittered delay.
    jitter:
        Fractional jitter amplitude in ``[0, 1)``; 0 disables it.
    seed:
        Decorrelates the jitter streams of different retriers.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (monotone schedule)")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def base_schedule(self, attempt: int) -> float:
        """Un-jittered delay after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )

    def delay(self, attempt: int) -> float:
        """Jittered delay after the ``attempt``-th failure (1-based)."""
        return self.base_schedule(attempt) * _jitter_factor(
            self.seed, attempt, self.jitter
        )

    def delays(self) -> Iterator[float]:
        """The full retry-delay sequence (``max_attempts - 1`` values)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay(attempt)


def retry_call(
    fn: Callable[..., Any],
    *args: Any,
    policy: Backoff | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    **kwargs: Any,
) -> Any:
    """Call ``fn`` under a bounded retry/backoff policy.

    Parameters
    ----------
    fn, args, kwargs:
        The call to supervise.
    policy:
        Backoff schedule; defaults to :class:`Backoff` defaults.
    retry_on:
        Exception classes worth retrying.  Anything else propagates
        immediately (``KeyboardInterrupt``/``SystemExit`` are never
        retried: they do not subclass :class:`Exception`).
    sleep:
        Injectable clock for tests.
    on_retry:
        Observer called as ``on_retry(attempt, error, delay)`` before
        each backoff sleep.

    Returns
    -------
    Any
        ``fn``'s value on the first successful attempt.

    Raises
    ------
    BaseException
        The final attempt's error, once ``policy.max_attempts`` is
        exhausted.
    """
    policy = policy or Backoff()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            pause = policy.delay(attempt)
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)


# -- budgets and stalls -------------------------------------------------


class Deadline:
    """A wall-clock budget; :meth:`check` raises once it is overrun.

    Parameters
    ----------
    budget_s:
        Seconds allowed from construction, or None for unlimited (every
        check passes -- lets call sites keep one code path).
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        budget_s: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError("budget_s must be strictly positive (or None)")
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds spent since construction."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited; can go negative)."""
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() < 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`BudgetExceeded` if the budget is overrun."""
        if self.expired:
            raise BudgetExceeded(
                f"{what} exceeded its wall-clock budget of "
                f"{self.budget_s:.6g}s (elapsed {self.elapsed():.6g}s)"
            )


class StallDetector:
    """Trips after N consecutive observations without forward progress.

    The simulator feeds it the simulation clock once per epoch: an epoch
    that leaves the clock exactly where it was is a *no-progress* epoch.
    Bounded bursts of those are legitimate (simultaneous discrete events
    each consume an epoch), so the detector only trips after
    ``max_stalled`` consecutive ones -- the signature of a scheduler /
    dynamics interaction that will spin forever.
    """

    def __init__(self, max_stalled: int) -> None:
        if max_stalled < 1:
            raise ValueError("max_stalled must be >= 1")
        self.max_stalled = max_stalled
        self.stalled = 0
        self._last: float | None = None

    def observe(self, value: float) -> bool:
        """Record one observation; True when the stall bound is hit."""
        if self._last is not None and value <= self._last:
            self.stalled += 1
        else:
            self.stalled = 0
        self._last = value
        return self.stalled >= self.max_stalled


# -- hard per-call timeouts ---------------------------------------------


def run_with_timeout(
    fn: Callable[..., Any],
    timeout_s: float | None,
    *args: Any,
    what: str = "call",
    **kwargs: Any,
) -> Any:
    """Run ``fn`` with a hard wall-clock timeout via ``SIGALRM``.

    Raises :class:`CellTimeout` when the call overruns.  The alarm only
    works on POSIX main threads; anywhere else (Windows, worker threads)
    the call runs unbounded -- callers needing a guarantee there must
    layer a :class:`Deadline` inside ``fn`` instead.  Sweep workers are
    POSIX processes running cells on their main thread, which is exactly
    the case this exists for.
    """
    if (
        timeout_s is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn(*args, **kwargs)
    if timeout_s <= 0:
        raise ValueError("timeout_s must be strictly positive (or None)")

    def _alarm(signum, frame):
        raise CellTimeout(f"{what} exceeded its timeout of {timeout_s:.6g}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(*args, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- crash reports ------------------------------------------------------


def crash_report(
    error: BaseException,
    *,
    context: dict[str, Any] | None = None,
    events: Sequence[dict[str, Any]] | None = None,
    max_events: int = 50,
) -> dict[str, Any]:
    """Build the structured post-mortem attached to watchdog errors.

    Parameters
    ----------
    error:
        The triggering exception.
    context:
        Caller-specific state (simulation clock, active coflows, sweep
        cell label, ...), merged under ``"context"``.
    events:
        The run's structured event stream (``repro.obs`` tracer events);
        only the last ``max_events`` are kept.

    Returns
    -------
    dict
        JSON-ready document with a reproducibility header, the error
        class/message, the context and the event tail.
    """
    from repro.obs.header import repro_header

    report: dict[str, Any] = {
        "kind": "crash_report",
        "error": {"type": type(error).__name__, "message": str(error)},
        "header": repro_header(),
        "context": dict(context or {}),
    }
    if events is not None:
        tail = list(events)[-max_events:]
        report["events_total"] = len(events)
        report["last_events"] = tail
    return report


def write_crash_report(
    report: dict[str, Any], directory: str | Path
) -> Path:
    """Persist one crash report as pretty JSON; returns the path.

    File names embed the wall clock and pid plus a disambiguating
    counter, so concurrent crashing workers never clobber each other.
    Writing is best-effort durable (temp file + rename) like the cell
    cache: a crash while writing the crash report must not leave a
    half-document that later tooling chokes on.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"crash-{int(time.time())}-{os.getpid()}"
    path = directory / f"{stem}.json"
    n = 0
    while path.exists():
        n += 1
        path = directory / f"{stem}-{n}.json"
    tmp = path.with_name(f".{path.name}.tmp")
    tmp.write_text(json.dumps(report, indent=1, default=str) + "\n")
    os.replace(tmp, path)
    return path
