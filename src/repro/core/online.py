"""Online co-optimization: planning against in-flight shuffles.

The paper assumes every flow of an operator starts together, and notes
(§II-B, footnote 1) that the framework "can be extended to online ...
cases very easily" because it is built on the coflow abstraction.  This
module performs that extension: a sequence of operators arrives over
time, and each new operator is planned with Algorithm 1 against *initial
port loads* equal to the residual bytes of the shuffles still in flight.

The residual model assumes the data plane runs each coflow with MADD
(all flows of a coflow finish together at its bottleneck time ``T``), so
a port loaded with ``L`` bytes at submission drains linearly and carries
``L * max(0, 1 - (t - t0) / T)`` residual bytes at time ``t``.  This is
exactly the schedule the paper's bandwidth-based model prescribes, and it
keeps the online planner closed-form.

Fault tolerance and degraded estimates
--------------------------------------
The online path inherits the job-level fault-tolerance machinery:

* construct with ``stage_policy=`` and report failures through
  :meth:`OnlineCCF.node_failed` / :meth:`OnlineCCF.node_recovered`.
  In-flight shuffles touching the dead node are failed, parked until the
  node recovers, or **replanned** (their outstanding receive bytes move
  to the least-loaded survivor, chosen with Algorithm 1's step rule via
  :class:`~repro.core.incremental.IncrementalPlanner`) according to the
  policy; new submissions avoid dead nodes entirely
  (:func:`~repro.core.replan.replan_assignment`).
* construct with ``noise=`` (a :class:`~repro.core.noise.NoisyEstimates`
  or a bare sigma) and every submission's assignment is computed from a
  perturbed/censored view of its chunk matrix while all book-keeping --
  residuals, durations, reported metrics -- charges the true bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.framework import CCF, ShuffleWorkload
from repro.core.incremental import IncrementalPlanner
from repro.core.model import ShuffleModel
from repro.core.noise import NoisyEstimates
from repro.core.plan import ExecutionPlan
from repro.core.replan import replan_assignment

__all__ = ["OnlineCCF", "InFlightShuffle", "OnlineEvent"]


@dataclass
class InFlightShuffle:
    """Book-keeping for a previously submitted shuffle."""

    submit_time: float
    duration: float  # bandwidth-optimal CCT in seconds
    send_loads: np.ndarray
    recv_loads: np.ndarray

    def residual(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """(send, recv) bytes still outstanding at time ``now``."""
        if self.duration <= 0:
            frac = 0.0
        else:
            frac = max(0.0, 1.0 - (now - self.submit_time) / self.duration)
        return self.send_loads * frac, self.recv_loads * frac

    def finished(self, now: float) -> bool:
        return now >= self.submit_time + self.duration

    @property
    def implied_rate(self) -> float:
        """Port rate the (bottleneck, duration) pair implies."""
        if self.duration <= 0:
            return 0.0
        bottleneck = max(
            self.send_loads.max(initial=0.0), self.recv_loads.max(initial=0.0)
        )
        return bottleneck / self.duration


@dataclass(frozen=True)
class OnlineEvent:
    """Structured record of one online failure/recovery action.

    ``kind`` is one of ``node_failed``, ``node_recovered``,
    ``shuffle_failed``, ``shuffle_parked``, ``shuffle_replanned`` or
    ``shuffle_restarted``.
    """

    time: float
    kind: str
    node: int = -1
    bytes_affected: float = 0.0
    detail: str = ""


class OnlineCCF:
    """CCF front-end that tracks fabric occupancy across submissions.

    Parameters
    ----------
    n_nodes:
        Fabric size; all submitted workloads must match it.
    ccf:
        The underlying (offline) framework used for each plan.
    stage_policy:
        Optional job-level fault-tolerance policy (name or instance from
        :mod:`repro.analytics.stagepolicy`) governing what happens to
        in-flight shuffles when :meth:`node_failed` is reported.
    noise:
        Optional :class:`NoisyEstimates` (or bare sigma) degrading the
        planner's view of every submission's chunk sizes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.online import OnlineCCF
    >>> from repro.core.model import ShuffleModel
    >>> online = OnlineCCF(n_nodes=3)
    >>> m = ShuffleModel(h=np.array([[4., 4.], [4., 4.], [0., 0.]]), rate=1.0)
    >>> plan = online.submit(m, time=0.0)     # plans against an idle fabric
    >>> len(online.in_flight(0.0))            # its shuffle is now in flight
    1
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        ccf: CCF | None = None,
        stage_policy: "object | str | None" = None,
        noise: NoisyEstimates | float | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self.ccf = ccf or CCF()
        if stage_policy is not None:
            # Lazy import: stage policies live in the analytics layer,
            # which imports repro.core at module load.
            from repro.analytics.stagepolicy import make_stage_policy

            stage_policy = make_stage_policy(stage_policy)
        self.stage_policy = stage_policy
        if isinstance(noise, (int, float)):
            noise = NoisyEstimates(sigma=float(noise))
        if noise is not None and noise.is_null:
            noise = None
        self.noise = noise
        self._history: list[InFlightShuffle] = []
        self._parked: list[InFlightShuffle] = []
        self._dead: set[int] = set()
        self._last_time = 0.0
        self._submissions = 0
        self.events: list[OnlineEvent] = []
        #: Shuffles pruned from ``_history`` after draining (see
        #: :meth:`_advance`); with the count, ``len(_history) +
        #: drained_shuffles`` still totals every submission, so service
        #: loops can assert bounded memory without losing accounting.
        self.drained_shuffles = 0

    @property
    def dead_nodes(self) -> set[int]:
        """Nodes currently reported failed."""
        return set(self._dead)

    def in_flight(self, now: float) -> list[InFlightShuffle]:
        """Shuffles not yet drained at time ``now``."""
        return [s for s in self._history if not s.finished(now)]

    def residual_loads(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate outstanding (send, recv) bytes per port at ``now``."""
        send = np.zeros(self.n_nodes)
        recv = np.zeros(self.n_nodes)
        for s in self.in_flight(now):
            ds, dr = s.residual(now)
            send += ds
            recv += dr
        return send, recv

    def _occupied_model(self, model: ShuffleModel, now: float) -> ShuffleModel:
        """Fold the residual port loads into the model.

        Residuals are per-port totals with no pairwise structure, so they
        enter as the model's ``extra_send`` / ``extra_recv`` vectors --
        tightening constraints (3.1)/(3.2) exactly, without polluting the
        operator's own volume matrix.
        """
        send, recv = self.residual_loads(now)
        if not send.any() and not recv.any():
            return model
        return ShuffleModel(
            h=model.h,
            v0=model.v0,
            rate=model.rate,
            local_bytes_pre=model.local_bytes_pre,
            name=model.name,
            extra_send=model.extra_send + send,
            extra_recv=model.extra_recv + recv,
        )

    #: Prune ``_history`` once it holds this many entries (amortized:
    #: the scan is O(len) but runs at most once per threshold growth).
    _PRUNE_THRESHOLD = 256

    def _advance(self, time: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"submissions must be time-ordered: {time} < {self._last_time}"
            )
        self._last_time = time
        # Drained shuffles contribute zero residual forever (time is
        # monotone, residual fraction hits 0 and stays there), so they
        # can be dropped without changing any future plan.  Without the
        # prune an open-loop service run holding one OnlineCCF for
        # thousands of submissions grows _history without bound.
        if len(self._history) >= self._PRUNE_THRESHOLD:
            alive = [s for s in self._history if not s.finished(time)]
            self.drained_shuffles += len(self._history) - len(alive)
            self._history = alive

    def submit(
        self,
        workload: ShuffleWorkload | ShuffleModel,
        *,
        time: float,
        strategy: str = "ccf",
    ) -> ExecutionPlan:
        """Plan a new operator at ``time`` against the occupied fabric.

        Returns a plan computed on the *occupied* model (its metrics count
        the in-flight bytes as initial flows); the plan's assignment is
        applied to the operator's own traffic.  Submissions must be in
        non-decreasing time order.  With dead nodes reported, the
        assignment is re-routed so no partition lands on a dead node;
        with ``noise`` configured, the assignment is computed from the
        degraded view of the chunk sizes.
        """
        self._advance(time)

        base = self.ccf.model_for(workload, strategy)
        if base.n != self.n_nodes:
            raise ValueError(
                f"workload spans {base.n} nodes, fabric has {self.n_nodes}"
            )
        occupied = self._occupied_model(base, time)
        if self.noise is None:
            plan = self.ccf.plan(occupied, strategy)
        else:
            plan_model = self.noise.reseeded(self._submissions).perturb_model(
                occupied
            )
            dest = self.ccf.assign(plan_model, strategy)
            plan = ExecutionPlan(model=occupied, dest=dest, strategy=strategy)
        self._submissions += 1

        if self._dead and occupied.p > 0:
            allowed = np.ones(self.n_nodes, dtype=bool)
            allowed[list(self._dead)] = False
            if not allowed.any():
                raise ValueError("every node is dead; nothing can be planned")
            dest = replan_assignment(occupied, plan.dest, allowed)
            plan = ExecutionPlan(
                model=occupied,
                dest=dest,
                strategy=strategy,
                solve_seconds=plan.solve_seconds,
            )

        # Record this shuffle's own loads (without the synthetic residuals)
        # for future submissions.
        own = base.evaluate(plan.dest)
        duration = own.bottleneck_bytes / base.rate
        self._history.append(
            InFlightShuffle(
                submit_time=time,
                duration=duration,
                send_loads=own.send_loads,
                recv_loads=own.recv_loads,
            )
        )
        return plan

    def node_failed(
        self, time: float, node: int, *, direction: str = "both"
    ) -> list[OnlineEvent]:
        """Report a node failure; apply the stage policy to in-flight work.

        ``direction`` mirrors :meth:`FabricDynamics.fail`: ``"both"`` is
        a full node loss, ``"ingress"`` a receiver-side loss (the node's
        resident data remains readable -- the replannable case),
        ``"egress"`` a sender-side loss.  Per the configured policy,
        every in-flight shuffle with residual bytes on the dead
        direction(s):

        * ``fail-job`` -- is dropped (its transfer failed);
        * ``retry-stage`` -- is parked and restarted from scratch when
          :meth:`node_recovered` reports the node back;
        * ``replan-stage`` -- keeps running: its outstanding receive
          bytes on the dead node move to the least-loaded surviving
          node (Algorithm 1's step rule); when the dead node holds the
          shuffle's *source* bytes (``egress``/``both`` loss) there is
          nothing to replan and the shuffle is parked as under
          ``retry-stage``.

        Returns the events recorded for this failure.
        """
        if self.stage_policy is None:
            raise ValueError(
                "OnlineCCF was constructed without a stage_policy; pass "
                "stage_policy='fail-job'|'retry-stage'|'replan-stage' to "
                "handle node failures"
            )
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if direction not in ("both", "ingress", "egress"):
            raise ValueError(
                f"direction must be 'both', 'ingress' or 'egress', "
                f"got {direction!r}"
            )
        self._advance(time)
        from repro.analytics.stagepolicy import (
            FailJobPolicy,
            ReplanStagePolicy,
        )

        new_events = [OnlineEvent(time=time, kind="node_failed", node=node)]
        self._dead.add(node)
        survivors = np.ones(self.n_nodes, dtype=bool)
        survivors[list(self._dead)] = False

        send_dead = direction in ("both", "egress")
        recv_dead = direction in ("both", "ingress")
        for s in list(self.in_flight(time)):
            send_res, recv_res = s.residual(time)
            affected = (send_dead and send_res[node] > 0) or (
                recv_dead and recv_res[node] > 0
            )
            if not affected:
                continue  # shuffle does not touch the dead direction(s)
            self._history.remove(s)
            if isinstance(self.stage_policy, FailJobPolicy):
                new_events.append(
                    OnlineEvent(
                        time=time,
                        kind="shuffle_failed",
                        node=node,
                        bytes_affected=float(send_res.sum() + recv_res.sum()),
                        detail="in-flight shuffle dropped (fail-job)",
                    )
                )
                continue
            replannable = (
                isinstance(self.stage_policy, ReplanStagePolicy)
                and not (send_dead and send_res[node] > 0)
                and survivors.any()
            )
            if not replannable:
                # Park until the node recovers; restart from scratch then
                # (stage-granularity recovery re-runs the whole transfer).
                self._parked.append(s)
                new_events.append(
                    OnlineEvent(
                        time=time,
                        kind="shuffle_parked",
                        node=node,
                        bytes_affected=float(send_res.sum() + recv_res.sum()),
                        detail="waiting for node recovery",
                    )
                )
                continue
            # Replan: the dead node's outstanding receive bytes move to
            # the surviving node Algorithm 1's step rule picks, given
            # everyone else's residuals; senders re-aim, so send residuals
            # are unchanged.
            lost = float(recv_res[node])
            recv_new = recv_res.copy()
            recv_new[node] = 0.0
            other_send, other_recv = self.residual_loads(time)
            planner = IncrementalPlanner(
                n_nodes=self.n_nodes,
                initial_send=other_send + send_res,
                initial_recv=other_recv + recv_new,
                allowed=survivors,
            )
            target = planner.assign(np.zeros(self.n_nodes))
            recv_new[target] += lost
            rate = s.implied_rate
            bottleneck = max(
                send_res.max(initial=0.0), recv_new.max(initial=0.0)
            )
            self._history.append(
                InFlightShuffle(
                    submit_time=time,
                    duration=bottleneck / rate if rate > 0 else 0.0,
                    send_loads=send_res,
                    recv_loads=recv_new,
                )
            )
            new_events.append(
                OnlineEvent(
                    time=time,
                    kind="shuffle_replanned",
                    node=node,
                    bytes_affected=lost,
                    detail=f"recv bytes moved to node {target}",
                )
            )
        self.events.extend(new_events)
        return new_events

    def node_recovered(self, time: float, node: int) -> list[OnlineEvent]:
        """Report a node repair; restart parked shuffles that can run."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        self._advance(time)
        self._dead.discard(node)
        new_events = [OnlineEvent(time=time, kind="node_recovered", node=node)]
        still_parked: list[InFlightShuffle] = []
        for s in self._parked:
            touches_dead = any(
                s.send_loads[d] > 0 or s.recv_loads[d] > 0 for d in self._dead
            )
            if touches_dead:
                still_parked.append(s)
                continue
            self._history.append(
                InFlightShuffle(
                    submit_time=time,
                    duration=s.duration,
                    send_loads=s.send_loads,
                    recv_loads=s.recv_loads,
                )
            )
            new_events.append(
                OnlineEvent(
                    time=time,
                    kind="shuffle_restarted",
                    node=node,
                    bytes_affected=float(
                        s.send_loads.sum() + s.recv_loads.sum()
                    ),
                    detail="parked shuffle restarted from scratch",
                )
            )
        self._parked = still_parked
        self.events.extend(new_events)
        return new_events

    def reset(self) -> None:
        """Forget all in-flight state."""
        self._history.clear()
        self._parked.clear()
        self._dead.clear()
        self.events.clear()
        self._last_time = 0.0
        self._submissions = 0
        self.drained_shuffles = 0
