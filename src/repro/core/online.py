"""Online co-optimization: planning against in-flight shuffles.

The paper assumes every flow of an operator starts together, and notes
(§II-B, footnote 1) that the framework "can be extended to online ...
cases very easily" because it is built on the coflow abstraction.  This
module performs that extension: a sequence of operators arrives over
time, and each new operator is planned with Algorithm 1 against *initial
port loads* equal to the residual bytes of the shuffles still in flight.

The residual model assumes the data plane runs each coflow with MADD
(all flows of a coflow finish together at its bottleneck time ``T``), so
a port loaded with ``L`` bytes at submission drains linearly and carries
``L * max(0, 1 - (t - t0) / T)`` residual bytes at time ``t``.  This is
exactly the schedule the paper's bandwidth-based model prescribes, and it
keeps the online planner closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.framework import CCF, ShuffleWorkload
from repro.core.model import ShuffleModel
from repro.core.plan import ExecutionPlan

__all__ = ["OnlineCCF", "InFlightShuffle"]


@dataclass
class InFlightShuffle:
    """Book-keeping for a previously submitted shuffle."""

    submit_time: float
    duration: float  # bandwidth-optimal CCT in seconds
    send_loads: np.ndarray
    recv_loads: np.ndarray

    def residual(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """(send, recv) bytes still outstanding at time ``now``."""
        if self.duration <= 0:
            frac = 0.0
        else:
            frac = max(0.0, 1.0 - (now - self.submit_time) / self.duration)
        return self.send_loads * frac, self.recv_loads * frac

    def finished(self, now: float) -> bool:
        return now >= self.submit_time + self.duration


class OnlineCCF:
    """CCF front-end that tracks fabric occupancy across submissions.

    Parameters
    ----------
    n_nodes:
        Fabric size; all submitted workloads must match it.
    ccf:
        The underlying (offline) framework used for each plan.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.online import OnlineCCF
    >>> from repro.core.model import ShuffleModel
    >>> online = OnlineCCF(n_nodes=3)
    >>> m = ShuffleModel(h=np.array([[4., 4.], [4., 4.], [0., 0.]]), rate=1.0)
    >>> plan = online.submit(m, time=0.0)     # plans against an idle fabric
    >>> len(online.in_flight(0.0))            # its shuffle is now in flight
    1
    """

    def __init__(self, n_nodes: int, *, ccf: CCF | None = None) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self.ccf = ccf or CCF()
        self._history: list[InFlightShuffle] = []
        self._last_time = 0.0

    def in_flight(self, now: float) -> list[InFlightShuffle]:
        """Shuffles not yet drained at time ``now``."""
        return [s for s in self._history if not s.finished(now)]

    def residual_loads(self, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate outstanding (send, recv) bytes per port at ``now``."""
        send = np.zeros(self.n_nodes)
        recv = np.zeros(self.n_nodes)
        for s in self.in_flight(now):
            ds, dr = s.residual(now)
            send += ds
            recv += dr
        return send, recv

    def _occupied_model(self, model: ShuffleModel, now: float) -> ShuffleModel:
        """Fold the residual port loads into the model.

        Residuals are per-port totals with no pairwise structure, so they
        enter as the model's ``extra_send`` / ``extra_recv`` vectors --
        tightening constraints (3.1)/(3.2) exactly, without polluting the
        operator's own volume matrix.
        """
        send, recv = self.residual_loads(now)
        if not send.any() and not recv.any():
            return model
        return ShuffleModel(
            h=model.h,
            v0=model.v0,
            rate=model.rate,
            local_bytes_pre=model.local_bytes_pre,
            name=model.name,
            extra_send=model.extra_send + send,
            extra_recv=model.extra_recv + recv,
        )

    def submit(
        self,
        workload: ShuffleWorkload | ShuffleModel,
        *,
        time: float,
        strategy: str = "ccf",
    ) -> ExecutionPlan:
        """Plan a new operator at ``time`` against the occupied fabric.

        Returns a plan computed on the *occupied* model (its metrics count
        the in-flight bytes as initial flows); the plan's assignment is
        applied to the operator's own traffic.  Submissions must be in
        non-decreasing time order.
        """
        if time < self._last_time:
            raise ValueError(
                f"submissions must be time-ordered: {time} < {self._last_time}"
            )
        self._last_time = time

        base = self.ccf.model_for(workload, strategy)
        if base.n != self.n_nodes:
            raise ValueError(
                f"workload spans {base.n} nodes, fabric has {self.n_nodes}"
            )
        occupied = self._occupied_model(base, time)
        plan = self.ccf.plan(occupied, strategy)

        # Record this shuffle's own loads (without the synthetic residuals)
        # for future submissions.
        own = base.evaluate(plan.dest)
        duration = own.bottleneck_bytes / base.rate
        self._history.append(
            InFlightShuffle(
                submit_time=time,
                duration=duration,
                send_loads=own.send_loads,
                recv_loads=own.recv_loads,
            )
        )
        return plan

    def reset(self) -> None:
        """Forget all in-flight state."""
        self._history.clear()
        self._last_time = 0.0
