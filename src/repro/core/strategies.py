"""Application-level scheduling baselines: ``Hash`` and ``Mini``.

These are the two comparison schemes of the paper's evaluation (§IV-A):

* **Hash** -- the classical hash-based join: partition ``k`` goes to node
  ``k mod n`` (its "responsible" node).  Spreads traffic but ignores both
  data locality and the network.
* **Mini** -- minimize network traffic: each partition goes to the node
  already holding its largest chunk, so the minimum possible number of
  bytes crosses the network.  This is the strategy class of track-join and
  other data-management-level optimizers; partitions are independent in
  the traffic objective, so the greedy per-partition choice is globally
  optimal for traffic.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ShuffleModel

__all__ = ["hash_assignment", "mini_assignment", "STRATEGIES"]


def hash_assignment(model: ShuffleModel) -> np.ndarray:
    """``dest[k] = k mod n`` -- the paper's Hash baseline."""
    return (np.arange(model.p, dtype=np.int64) % model.n).astype(np.int64)


def mini_assignment(model: ShuffleModel) -> np.ndarray:
    """Send each partition to the node holding its largest chunk.

    Ties break toward the lowest node index (numpy ``argmax`` semantics),
    which matches the paper's observation that under a uniform (zipf = 0)
    distribution Mini degenerates to flushing everything to one node.
    """
    if model.p == 0:
        return np.empty(0, dtype=np.int64)
    return model.h.argmax(axis=0).astype(np.int64)


#: Registry of application-level strategies by name.  The CCF strategies
#: live in :mod:`repro.core.heuristic` / :mod:`repro.core.exact` and are
#: registered by :mod:`repro.core.framework`.
STRATEGIES = {
    "hash": hash_assignment,
    "mini": mini_assignment,
}
