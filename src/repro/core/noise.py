"""Degraded size estimates: planning against noisy / censored chunk sizes.

The co-optimization plans from the chunk matrix ``h[i, k]``, which a real
engine obtains from statistics (catalog estimates, sampled map output
sizes).  Those statistics are *never* exact -- Qiu, Stein & Zhong's
experimental coflow study and Shi et al.'s joint routing/bandwidth work
both observe that schedule quality degrades sharply once flow-size
information is inaccurate.  :class:`NoisyEstimates` models that regime:

* **Multiplicative noise** -- every ``h[i, k]`` entry the planner sees is
  scaled by a seeded lognormal factor with unit mean (``sigma`` is the
  log-scale standard deviation), so estimates are unbiased but scattered.
* **Missing-column censoring** -- a seeded fraction of partitions have no
  size estimate at all; the planner sees zeros for them (it is blind to
  their volume) while the simulator still charges the true bytes.

The wrapper is *plan-time only*: :meth:`perturb_model` returns a model to
compute the assignment on; the true model evaluates and executes the
resulting plan, so the measured gap is exactly the T-optimality cost of
planning from bad statistics.  :meth:`flow_factor` serves the simulator's
scheduler-view variant (``CoflowSimulator(estimate_noise=...)``): the
scheduling discipline sees perturbed remaining volumes, the fluid drain
uses the true ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.model import ShuffleModel

__all__ = ["NoisyEstimates"]


@dataclass(frozen=True)
class NoisyEstimates:
    """Seeded perturbation of the planner's view of chunk sizes.

    Parameters
    ----------
    sigma:
        Log-scale standard deviation of the multiplicative lognormal
        noise applied to every ``h`` entry (0 disables it).  The factor
        distribution has unit mean, so estimates are unbiased.
    censor_fraction:
        Fraction of partition columns whose size is unknown to the
        planner; censored columns are zeroed in the planning model (and
        censored flows report a near-zero size to the scheduler).
    seed:
        RNG seed; equal seeds yield identical perturbations.
    """

    sigma: float = 0.0
    censor_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("estimate-noise sigma must be >= 0")
        if not 0.0 <= self.censor_fraction <= 1.0:
            raise ValueError("censor fraction must be in [0, 1]")

    @property
    def is_null(self) -> bool:
        """True when the wrapper changes nothing."""
        return self.sigma == 0.0 and self.censor_fraction == 0.0

    def reseeded(self, salt: int) -> "NoisyEstimates":
        """An equivalent wrapper with a seed derived from ``(seed, salt)``.

        Used to give every DAG stage its own independent (but
        reproducible) noise draw whatever order the stages happen to be
        planned in.
        """
        derived = int(
            np.random.default_rng([self.seed, salt]).integers(0, 2**31)
        )
        return replace(self, seed=derived)

    def perturb_model(self, model: ShuffleModel) -> ShuffleModel:
        """The model the planner sees: perturbed/censored ``h``.

        ``v0``, the rate and the residual extras are carried through
        unchanged -- they are commitments, not estimates.  The returned
        model is only for computing an assignment; evaluate and execute
        the assignment on the *true* model.
        """
        if self.is_null:
            return model
        rng = np.random.default_rng(self.seed)
        h = model.h.copy()
        if self.sigma > 0:
            factors = rng.lognormal(
                mean=-0.5 * self.sigma**2, sigma=self.sigma, size=h.shape
            )
            h *= factors
        if self.censor_fraction > 0 and model.p > 0:
            n_censored = int(round(self.censor_fraction * model.p))
            if n_censored > 0:
                cols = rng.choice(model.p, size=n_censored, replace=False)
                h[:, cols] = 0.0
        return ShuffleModel(
            h=h,
            v0=model.v0,
            rate=model.rate,
            local_bytes_pre=model.local_bytes_pre,
            name=f"{model.name}+noise" if model.name else "noisy",
            extra_send=model.extra_send,
            extra_recv=model.extra_recv,
        )

    def flow_factor(self, coflow_id: int, src: int, dst: int) -> float:
        """Multiplicative factor on one flow's *reported* remaining bytes.

        Deterministic in ``(seed, coflow_id, src, dst)``.  Censored flows
        return 0.0 -- the scheduler has no size information for them (the
        simulator floors the reported value to keep allocations sane).
        """
        rng = np.random.default_rng([self.seed, coflow_id, src, dst])
        if self.censor_fraction > 0 and rng.random() < self.censor_fraction:
            return 0.0
        if self.sigma == 0:
            return 1.0
        return float(
            rng.lognormal(mean=-0.5 * self.sigma**2, sigma=self.sigma)
        )
