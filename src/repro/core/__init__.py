"""Core CCF: the paper's co-optimization model, algorithms and framework.

* :mod:`repro.core.model` -- the shuffle model (chunk matrix ``h[i,k]``,
  initial flows ``v0``) and plan evaluation (models (1)->(3) of the paper).
* :mod:`repro.core.strategies` -- application-level baselines: ``Hash``
  (hash-based join) and ``Mini`` (per-partition traffic minimizer, the
  track-join-style strategy).
* :mod:`repro.core.heuristic` -- Algorithm 1, the fast greedy CCF solver.
* :mod:`repro.core.exact` -- the exact MILP formulation (model (3)).
* :mod:`repro.core.skew` -- partial-duplication skew handling (§III-C).
* :mod:`repro.core.framework` -- the CCF orchestrator (Fig. 3): workload
  -> (skew pre-processing) -> strategy -> execution plan -> coflow.
* :mod:`repro.core.resilience` -- supervised-execution primitives:
  retry/backoff, wall-clock budgets, stall detection, crash reports and
  the structured error taxonomy shared by the simulator watchdog, the
  sweep engine and the chaos campaign runner.
"""

from repro.core.exact import ExactResult, ccf_exact
from repro.core.framework import CCF, PlanComparison
from repro.core.heuristic import ccf_heuristic, ccf_heuristic_reference
from repro.core.incremental import IncrementalPlanner
from repro.core.localsearch import RefinementResult, refine_assignment
from repro.core.model import PlanMetrics, ShuffleModel
from repro.core.multi import ConcurrentPlan, merge_models, plan_concurrent
from repro.core.noise import NoisyEstimates
from repro.core.online import OnlineCCF
from repro.core.plan import ExecutionPlan
from repro.core.replan import lineage_matrix, remap_chunks, replan_assignment
from repro.core.predictor import PredictedCCTs, predict_ccts
from repro.core.relax import LPRoundingResult, ccf_lp_rounding
from repro.core.resilience import (
    Backoff,
    BudgetExceeded,
    CacheCorruption,
    CellTimeout,
    Deadline,
    ResilienceError,
    StallDetector,
    StallError,
    WorkerCrash,
    retry_call,
)
from repro.core.skew import PartialDuplication, SkewHandlingResult
from repro.core.strategies import (
    STRATEGIES,
    hash_assignment,
    mini_assignment,
)
from repro.core.topology_aware import ccf_heuristic_topology, evaluate_on_topology

__all__ = [
    "Backoff",
    "BudgetExceeded",
    "CCF",
    "CacheCorruption",
    "CellTimeout",
    "Deadline",
    "ResilienceError",
    "StallDetector",
    "StallError",
    "WorkerCrash",
    "retry_call",
    "ConcurrentPlan",
    "ExactResult",
    "ExecutionPlan",
    "IncrementalPlanner",
    "LPRoundingResult",
    "NoisyEstimates",
    "OnlineCCF",
    "PartialDuplication",
    "PlanComparison",
    "PlanMetrics",
    "STRATEGIES",
    "ShuffleModel",
    "SkewHandlingResult",
    "ccf_exact",
    "ccf_heuristic",
    "ccf_heuristic_reference",
    "ccf_heuristic_topology",
    "ccf_lp_rounding",
    "evaluate_on_topology",
    "hash_assignment",
    "lineage_matrix",
    "merge_models",
    "mini_assignment",
    "plan_concurrent",
    "remap_chunks",
    "replan_assignment",
    "PredictedCCTs",
    "predict_ccts",
    "RefinementResult",
    "refine_assignment",
]
