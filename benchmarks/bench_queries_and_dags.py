"""Bench: analytical queries and DAG jobs under CCF.

Regenerates the query-suite table (filters/joins/aggregation/distinct
under three strategies) and the DAG comparison, timing the query
executor and the DAG simulation.
"""

import pytest

from repro.analytics.compile import QueryExecutor
from repro.analytics.dag import DAGExecutor, JobDAG
from repro.analytics.queries import build_tpch_catalog, orders_per_customer
from repro.experiments.querybench import run_query_suite
from repro.join.operators import DistributedAggregation, DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


@pytest.fixture(scope="module")
def table(save_table):
    return save_table(run_query_suite(), "query_suite")


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(
        TPCHConfig(n_nodes=8, scale_factor=0.02, skew=0.2, seed=1)
    )


def test_bench_query_execution(benchmark, table, catalog):
    ex = QueryExecutor(catalog, skew_factor=50.0)

    def run():
        return ex.execute(orders_per_customer(), strategy="ccf")

    result = benchmark(run)
    assert result.rows > 0

    # Query-suite invariants from the saved table.
    for mini, ccf in zip(
        table.column("mini_comm_s"), table.column("ccf_comm_s")
    ):
        assert ccf <= mini + 1e-9


def test_bench_dag_execution(benchmark):
    config = TPCHConfig(n_nodes=6, scale_factor=0.01, skew=0.2, seed=4)
    customer, orders = generate_tpch_relations(config)
    part = HashPartitioner(p=15 * config.n_nodes)
    dag = (
        JobDAG("bench")
        .add("join", DistributedJoin(customer, orders, partitioner=part,
                                     skew_factor=50.0))
        .add("agg", DistributedAggregation(orders, partitioner=part,
                                           pre_aggregate=True))
    )
    executor = DAGExecutor()

    result = benchmark(executor.run, dag, strategy="ccf")
    assert set(result.stages) == {"join", "agg"}
    # Independent roots overlap in time.
    s = result.stages
    assert s["agg"].start_time == 0.0 and s["join"].start_time == 0.0
