"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at paper scale
(SF 600, p = 15 n) and times the kernel that produces it.  The tables are
printed to stdout (visible with ``-s``) and saved under
``benchmarks/results/`` so a plain ``pytest benchmarks/ --benchmark-only``
leaves the full set of reproduced series on disk.

Environment knob: set ``CCF_BENCH_SCALE`` (default 600) to a smaller TPC-H
scale factor for quicker runs; shapes are scale-invariant.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.tables import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"

#: TPC-H scale factor used by the figure benches (paper: 600).
BENCH_SCALE = float(os.environ.get("CCF_BENCH_SCALE", "600"))

#: Node count for the fixed-size sweeps (paper: 500).
BENCH_NODES = int(os.environ.get("CCF_BENCH_NODES", "500"))


@pytest.fixture(scope="session")
def save_table():
    """Persist a ResultTable under benchmarks/results/ and echo it."""

    def _save(table: ResultTable, name: str) -> ResultTable:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table.render() + "\n")
        print()
        print(table.render())
        return table

    return _save
