"""Bench: Figure 6 -- Hash/Mini/CCF over the Zipf factor (paper scale).

Full sweep zipf 0..1 at 500 nodes / SF 600 / skew 20%, timing the CCF
planning kernel at the paper's default zipf = 0.8 point.
"""

import pytest

from benchmarks.conftest import BENCH_NODES, BENCH_SCALE
from repro.core.framework import CCF
from repro.experiments.figures import FIG6_ZIPF, SweepConfig, run_fig6_zipf
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    cfg = SweepConfig(scale_factor=BENCH_SCALE, n_nodes=BENCH_NODES)
    t = run_fig6_zipf(cfg, zipfs=FIG6_ZIPF)
    mini = t.column("mini_cct_s")
    hash_ = t.column("hash_cct_s")
    ccf = t.column("ccf_cct_s")
    vs_mini = [m / c for m, c in zip(mini, ccf)]
    vs_hash = [h / c for h, c in zip(hash_, ccf)]
    t.add_note(
        f"speedup over Mini: {min(vs_mini):.1f}-{max(vs_mini):.0f}x "
        "(paper: 6.7-395x); "
        f"over Hash: {min(vs_hash):.1f}-{max(vs_hash):.0f}x (paper: 1.9-98.7x)"
    )
    return save_table(t, "fig6_zipf")


def test_bench_fig6_ccf_planning_default_zipf(benchmark, table):
    wl = AnalyticJoinWorkload(
        n_nodes=BENCH_NODES, scale_factor=BENCH_SCALE, zipf_s=0.8
    )
    plan = benchmark(CCF().plan, wl, "ccf")
    assert plan.cct > 0

    # Paper shapes: Hash roughly flat, CCF grows with zipf, Mini worst.
    ccf = table.column("ccf_cct_s")
    assert ccf == sorted(ccf)
    for mini, ccf_t in zip(table.column("mini_cct_s"), ccf):
        assert ccf_t < mini
