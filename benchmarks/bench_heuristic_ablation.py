"""Bench: Algorithm 1 design-choice ablation + implementation throughput.

Regenerates the sort/locality ablation table and quantifies the win of
the vectorized O(n*p) implementation over a direct transcription of the
paper's pseudocode -- the engineering that makes CCF usable at the paper's
scale (DESIGN.md §4).
"""

import pytest

from repro.core.heuristic import ccf_heuristic, ccf_heuristic_reference
from repro.experiments.ablation import run_heuristic_ablation
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    return save_table(run_heuristic_ablation(), "heuristic_ablation")


@pytest.fixture(scope="module")
def medium_model():
    wl = AnalyticJoinWorkload(n_nodes=12, partitions=60, scale_factor=0.05)
    return wl.shuffle_model(skew_handling=True)


def test_bench_heuristic_vectorized(benchmark, table, medium_model):
    dest = benchmark(ccf_heuristic, medium_model)
    assert dest.shape == (60,)


def test_bench_heuristic_reference(benchmark, medium_model):
    dest = benchmark(ccf_heuristic_reference, medium_model)
    assert dest.shape == (60,)


def test_bench_heuristic_paper_scale_throughput(benchmark):
    # n=1000, p=15000: the largest configuration of Fig. 5.
    wl = AnalyticJoinWorkload(n_nodes=1000, scale_factor=6.0)
    model = wl.shuffle_model(skew_handling=True)
    dest = benchmark.pedantic(ccf_heuristic, args=(model,), rounds=1, iterations=1)
    assert dest.shape == (15000,)
