"""Bench: Figure 7 -- Hash/Mini/CCF over the skewness (paper scale).

Full sweep skew 0..50% at 500 nodes / SF 600 / zipf 0.8, timing the skew
pre-processing + planning kernel at the paper's default 20% point.
"""

import pytest

from benchmarks.conftest import BENCH_NODES, BENCH_SCALE
from repro.core.framework import CCF
from repro.experiments.figures import FIG7_SKEW, SweepConfig, run_fig7_skew
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    cfg = SweepConfig(scale_factor=BENCH_SCALE, n_nodes=BENCH_NODES)
    t = run_fig7_skew(cfg, skews=FIG7_SKEW)
    mini = t.column("mini_cct_s")
    hash_ = t.column("hash_cct_s")
    ccf = t.column("ccf_cct_s")
    vs_mini = [m / c for m, c in zip(mini, ccf)]
    vs_hash = [h / c for h, c in zip(hash_, ccf)]
    gap0 = hash_[0] - ccf[0]
    t.add_note(
        f"speedup over Mini: {min(vs_mini):.1f}-{max(vs_mini):.1f}x "
        "(paper: ~12.8x constant); "
        f"over Hash: {min(vs_hash):.1f}-{max(vs_hash):.1f}x (paper: 1.1-12.8x); "
        f"at skew=0 CCF is {gap0:.0f}s faster than Hash (paper: ~50s)"
    )
    return save_table(t, "fig7_skew")


def test_bench_fig7_skew_handling_and_planning(benchmark, table):
    wl = AnalyticJoinWorkload(
        n_nodes=BENCH_NODES, scale_factor=BENCH_SCALE, skew=0.2
    )

    def plan_with_skew_handling():
        return CCF().plan(wl, "ccf")

    plan = benchmark(plan_with_skew_handling)
    assert plan.model.local_bytes_pre > 0  # partial duplication engaged

    # Paper shapes: Hash rises with skew; Mini and CCF fall.
    hash_ = table.column("hash_cct_s")
    assert hash_ == sorted(hash_)
    for col in ("mini_cct_s", "ccf_cct_s"):
        vals = table.column(col)
        assert vals == sorted(vals, reverse=True)
