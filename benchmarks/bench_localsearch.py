"""Bench: local-search refinement cost and benefit.

Regenerates a table of Algorithm 1 vs Algorithm 1 + local search over the
synthetic workload family, and times the refinement pass.  The paper has
no counterpart -- this quantifies the repair of the greedy's adversarial
cases (DESIGN.md §38).
"""

import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.localsearch import refine_assignment
from repro.experiments.tables import ResultTable
from repro.workloads.synthetic import (
    bimodal_workload,
    clustered_workload,
    lognormal_workload,
)

WORKLOADS = {
    "lognormal": lambda: lognormal_workload(30, 300, seed=5),
    "clustered": lambda: clustered_workload(30, 300, seed=5),
    "bimodal": lambda: bimodal_workload(30, 300, seed=5),
}


@pytest.fixture(scope="module")
def table(save_table):
    t = ResultTable(
        title="Local search on top of Algorithm 1 (synthetic workloads)",
        columns=["workload", "greedy_T_mb", "refined_T_mb", "moves",
                 "improvement_%"],
    )
    for name, make in WORKLOADS.items():
        model = make()
        start = ccf_heuristic(model)
        res = refine_assignment(model, start)
        t.add_row(
            name,
            res.initial_t / 1e6,
            res.final_t / 1e6,
            res.moves,
            100 * res.improvement,
        )
    t.add_note("single-move hill climbing; provably never hurts")
    return save_table(t, "localsearch")


def test_bench_localsearch_refinement(benchmark, table):
    model = lognormal_workload(30, 300, seed=5)
    start = ccf_heuristic(model)

    res = benchmark(refine_assignment, model, start)
    assert res.final_t <= res.initial_t + 1e-9

    for init, final in zip(
        table.column("greedy_T_mb"), table.column("refined_T_mb")
    ):
        assert final <= init + 1e-9
