"""Bench: the motivating example (paper Fig. 1 + Fig. 2).

Regenerates the published toy numbers (traffic 8/7/6; CCTs 6/4/3) and
times the full derivation (strategy runs, SP1 enumeration, simulator
validation).
"""

import pytest

from repro.experiments.motivating import MotivatingExample, run_motivating


@pytest.fixture(scope="module")
def table(save_table):
    return save_table(run_motivating(), "motivating")


def test_bench_motivating_build(benchmark, table):
    ex = benchmark(MotivatingExample.build)
    # The published series, re-asserted on every bench run.
    assert ex.traffic(ex.sp0_hash) == 8.0
    assert ex.traffic(ex.sp1_suboptimal) == 7.0
    assert ex.traffic(ex.sp2_traffic_optimal) == 6.0
    assert ex.optimal_cct(ex.sp2_traffic_optimal) == 4.0
    assert ex.optimal_cct(ex.sp1_suboptimal) == 3.0
    assert ex.simulated_cct(ex.sp2_traffic_optimal, "sequential") == pytest.approx(6.0)
