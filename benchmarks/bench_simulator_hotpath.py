"""Bench: simulator hot path -- vectorized epoch loop vs reference.

Times the incremental (default) epoch loop against the original
per-flow/per-mask reference path on a small coflow mix and re-asserts
the bit-identity contract on every run.  The full matrix (canonical
50-port x 200-coflow mix, four schedulers x four scenarios, component
microbenchmarks) is produced by ``ccf bench``, which writes the
committed ``BENCH_simulator.json``; this bench keeps the contract under
``pytest benchmarks/`` and gives pytest-benchmark timings for the two
paths side by side.

Environment knob: ``CCF_BENCH_HOTPATH_SCHED`` (default ``sebf``) picks
the scheduler under test.
"""

import os

import pytest

from repro.experiments.hotpath import (
    QUICK_MIX,
    CaseSpec,
    _build,
    _fingerprint,
    run_micro,
)

SCHED = os.environ.get("CCF_BENCH_HOTPATH_SCHED", "sebf")


def _spec(scenario: str) -> CaseSpec:
    return CaseSpec(SCHED, scenario, **QUICK_MIX)


def _run(scenario: str, incremental: bool):
    sim, coflows, kwargs = _build(_spec(scenario), incremental=incremental)
    return sim.run(coflows, **kwargs)


@pytest.mark.parametrize("scenario", ["plain", "noise"])
def test_bench_hotpath_incremental(benchmark, scenario):
    result = benchmark.pedantic(
        _run, args=(scenario, True), iterations=1, rounds=3
    )
    assert result.n_epochs > 0
    assert not result.failed_coflows


@pytest.mark.parametrize("scenario", ["plain", "noise"])
def test_bench_hotpath_reference(benchmark, scenario):
    result = benchmark.pedantic(
        _run, args=(scenario, False), iterations=1, rounds=3
    )
    assert result.n_epochs > 0


@pytest.mark.parametrize("scenario", ["plain", "chaos", "noise", "on_abort"])
def test_hotpath_bit_identity(scenario):
    """Both paths must agree on every float of the result."""
    ref = _fingerprint(_run(scenario, False))
    inc = _fingerprint(_run(scenario, True))
    assert ref == inc


def test_micro_components_report():
    """Component microbenches run and the vectorized side never loses."""
    micro = run_micro()
    for name, row in micro.items():
        assert row["speedup"] >= 1.0, (name, row)
