"""Bench: Figure 5 -- Hash/Mini/CCF over the number of nodes (paper scale).

Regenerates both panels (network traffic in GB, communication time in s)
for the full sweep 100..1000 nodes at SF 600, and times the CCF planning
kernel (Algorithm 1 end-to-end, including skew pre-processing) at the
500-node point.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.framework import CCF
from repro.experiments.figures import FIG5_NODES, SweepConfig, run_fig5_nodes
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    cfg = SweepConfig(scale_factor=BENCH_SCALE)
    t = run_fig5_nodes(cfg, nodes=FIG5_NODES)
    mini = t.column("mini_cct_s")
    hash_ = t.column("hash_cct_s")
    ccf = t.column("ccf_cct_s")
    vs_mini = [m / c for m, c in zip(mini, ccf)]
    vs_hash = [h / c for h, c in zip(hash_, ccf)]
    t.add_note(
        f"speedup over Mini: {min(vs_mini):.1f}-{max(vs_mini):.1f}x "
        "(paper: 8.1-15.2x); "
        f"over Hash: {min(vs_hash):.1f}-{max(vs_hash):.1f}x (paper: 2.1-3.7x)"
    )
    return save_table(t, "fig5_nodes")


def test_bench_fig5_ccf_planning_500_nodes(benchmark, table):
    wl = AnalyticJoinWorkload(n_nodes=500, scale_factor=BENCH_SCALE)
    ccf = CCF()
    plan = benchmark(ccf.plan, wl, "ccf")
    assert plan.cct > 0

    # Shape assertions on the full sweep (paper Fig. 5(b)):
    for mini, hash_, ccf_t in zip(
        table.column("mini_cct_s"),
        table.column("hash_cct_s"),
        table.column("ccf_cct_s"),
    ):
        assert ccf_t < hash_ < mini
