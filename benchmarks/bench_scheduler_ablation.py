"""Bench: coflow-scheduler ablation (fair/FIFO/SCF/NCF/SEBF/D-CLAS/sequential).

Regenerates the discipline-comparison table on a contended coflow stream
and times the event-driven simulator under Varys' SEBF.
"""

import pytest

from repro.core.framework import CCF
from repro.experiments.ablation import run_scheduler_ablation
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    return save_table(run_scheduler_ablation(), "scheduler_ablation")


@pytest.fixture(scope="module")
def coflow_stream():
    wl = AnalyticJoinWorkload(n_nodes=20, scale_factor=0.5, partitions=80)
    plan = CCF().plan(wl, "ccf")
    coflows = [plan.to_coflow(arrival_time=2.0 * j) for j in range(6)]
    return Fabric(n_ports=20, rate=plan.model.rate), coflows


def test_bench_simulator_sebf(benchmark, table, coflow_stream):
    fabric, coflows = coflow_stream

    def run():
        return CoflowSimulator(fabric, make_scheduler("sebf")).run(coflows)

    res = benchmark(run)
    assert len(res.ccts) == len(coflows)

    # Coflow-aware scheduling must not lose to plain fair sharing.
    for row in table.rows:
        named = dict(zip(table.columns, row))
        assert named["sebf"] <= named["fair"] + 1e-9


def test_bench_simulator_fair(benchmark, coflow_stream):
    fabric, coflows = coflow_stream

    def run():
        return CoflowSimulator(fabric, make_scheduler("fair")).run(coflows)

    res = benchmark(run)
    assert res.total_bytes > 0
