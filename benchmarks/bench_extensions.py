"""Bench: extension experiments (trace / online / topology).

These go beyond the paper's figures: the scheduler catalogue on a
Facebook-style trace (Varys/Aalo's home workload), online co-optimization
against in-flight shuffles, and the rack-oversubscription sweep of the
topology-aware planner.
"""

import pytest

from repro.core.online import OnlineCCF
from repro.core.topology_aware import ccf_heuristic_topology
from repro.experiments.extensions import (
    _burst_models,
    run_online_vs_oblivious,
    run_topology_sweep,
    run_trace_schedulers,
)
from repro.network.analysis import analyze
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.network.topology import TwoLevelTopology
from repro.workloads.analytic import AnalyticJoinWorkload
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix


@pytest.fixture(scope="module")
def trace_table(save_table):
    return save_table(run_trace_schedulers(), "trace_schedulers")


@pytest.fixture(scope="module")
def online_table(save_table):
    return save_table(run_online_vs_oblivious(), "online_vs_oblivious")


@pytest.fixture(scope="module")
def topology_table(save_table):
    return save_table(run_topology_sweep(), "topology_sweep")


def test_bench_trace_sebf(benchmark, trace_table):
    cfg = CoflowMixConfig(n_ports=40, n_coflows=120, arrival_rate=2.0)
    coflows = generate_coflow_mix(cfg)
    fabric = Fabric(n_ports=40)

    def run():
        res = CoflowSimulator(fabric, make_scheduler("sebf")).run(coflows)
        return analyze(res, coflows, fabric)

    report = benchmark(run)
    assert report.average_slowdown >= 1.0

    named = {r[0]: dict(zip(trace_table.columns, r)) for r in trace_table.rows}
    assert named["sebf"]["avg_cct_s"] <= named["fair"]["avg_cct_s"] + 1e-9


def test_bench_online_planning(benchmark, online_table):
    models = _burst_models(16, 6, seed=3)

    def plan_stream():
        online = OnlineCCF(n_nodes=16)
        return [
            online.submit(m, time=0.5 * j) for j, m in enumerate(models)
        ]

    plans = benchmark(plan_stream)
    assert len(plans) == 6

    named = {r[0]: dict(zip(online_table.columns, r)) for r in online_table.rows}
    assert named["online"]["avg_cct_s"] < named["oblivious"]["avg_cct_s"]


def test_bench_topology_aware_heuristic(benchmark, topology_table):
    wl = AnalyticJoinWorkload(n_nodes=96, scale_factor=6.0, partitions=384)
    model = wl.shuffle_model(skew_handling=True)
    topo = TwoLevelTopology(
        n_hosts=96, hosts_per_rack=12, host_rate=model.rate, oversubscription=4.0
    )
    dest = benchmark(ccf_heuristic_topology, model, topo)
    assert dest.shape == (384,)

    flat = topology_table.column("flat_cct_s")
    aware = topology_table.column("aware_cct_s")
    assert aware[-1] <= flat[-1]
