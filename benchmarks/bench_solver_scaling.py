"""Bench: exact MILP vs Algorithm 1 (paper §III-B solver-overhead anecdote).

The paper reports Gurobi needing > 30 min at n = 500, p = 7500.  This
bench regenerates the scaling ladder with HiGHS, times both solvers at a
common point, and demonstrates the heuristic handling the paper's
problem size (n = 500, p = 7500) in seconds.
"""

import time

import pytest

from repro.core.exact import ccf_exact
from repro.core.heuristic import ccf_heuristic
from repro.experiments.solver import run_solver_scaling
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture(scope="module")
def table(save_table):
    return save_table(run_solver_scaling(), "solver_scaling")


def test_bench_exact_milp_small_instance(benchmark, table):
    wl = AnalyticJoinWorkload(n_nodes=8, partitions=120, scale_factor=0.01)
    model = wl.shuffle_model(skew_handling=True)
    result = benchmark(ccf_exact, model)
    assert result.bottleneck_bytes >= 0

    # The ladder must show the heuristic staying near-optimal.
    for gap in table.column("gap_%"):
        assert gap < 50.0


def test_bench_heuristic_at_paper_problem_size(benchmark, table):
    # n=500, p=7500: the exact instance the paper says takes Gurobi >30 min.
    wl = AnalyticJoinWorkload(n_nodes=500, scale_factor=6.0)
    model = wl.shuffle_model(skew_handling=True)
    start = time.perf_counter()
    dest = benchmark(ccf_heuristic, model)
    elapsed = time.perf_counter() - start
    assert dest.shape == (7500,)
    assert elapsed < 600  # seconds, not half-hours
