"""Bench: track join vs Mini vs CCF (per-key vs partition granularity).

Track join is the paper's flagship citation for application-level traffic
minimization (footnote 6 notes CCF "can be also extended to that level").
This bench regenerates a comparison table -- traffic and bandwidth-optimal
CCT of track join, Mini, partition-level CCF and key-refined CCF on a
heavy-key workload -- and times the track-join decision phase.
"""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.core.heuristic import ccf_heuristic
from repro.experiments.tables import ResultTable
from repro.join.keylevel import refine_model
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.trackjoin import TrackJoin


def heavy_key_workload(n_nodes=6, n_keys=40, seed=2):
    rng = np.random.default_rng(seed)
    w = np.arange(1, n_nodes + 1, dtype=float) ** -0.9
    w /= w.sum()

    def rel(tuples_per_key):
        keys, nodes = [], []
        for k in range(n_keys):
            keys.append(np.full(tuples_per_key, k))
            nodes.append(rng.choice(n_nodes, size=tuples_per_key, p=w))
        return DistributedRelation.from_placement(
            np.concatenate(keys), np.concatenate(nodes), n_nodes,
            payload_bytes=100.0,
        )

    return rel(30), rel(150)


@pytest.fixture(scope="module")
def table(save_table):
    left, right = heavy_key_workload()
    n = left.n_nodes
    part = HashPartitioner(p=2 * n)
    t = ResultTable(
        title="Track join vs Mini vs CCF (bytes and bandwidth-optimal CCT)",
        columns=["strategy", "traffic_mb", "cct_s"],
    )

    tj = TrackJoin(left, right, rate=128e6).schedule()
    t.add_row("track-join (per key)", tj.traffic / 1e6, tj.cct)

    join = DistributedJoin(left, right, partitioner=part, skew_factor=1e9)
    for s in ("mini", "ccf"):
        plan = CCF(skew_handling=False).plan(join, s)
        t.add_row(f"{s} (per partition)", plan.traffic / 1e6, plan.cct)

    ref = refine_model([left, right], part, split_fraction=1.0, rate=128e6)
    dest = ccf_heuristic(ref.model)
    m = ref.model.evaluate(dest)
    t.add_row("ccf (per key, refined)", m.traffic / 1e6, m.cct)
    t.add_note(
        "track join moves the fewest bytes; CCF finishes the shuffle "
        "fastest, and per-key refinement widens its margin"
    )
    return save_table(t, "trackjoin_comparison")


def test_bench_trackjoin_decisions(benchmark, table):
    left, right = heavy_key_workload()

    def decide():
        return TrackJoin(left, right, rate=128e6).decide()

    decisions = benchmark(decide)
    assert decisions

    # Table invariants: track join has the least traffic, CCF variants the
    # best CCT.
    traffic = dict(zip(table.column("strategy"), table.column("traffic_mb")))
    cct = dict(zip(table.column("strategy"), table.column("cct_s")))
    assert traffic["track-join (per key)"] == min(traffic.values())
    assert cct["ccf (per key, refined)"] <= cct["mini (per partition)"]
    assert cct["ccf (per key, refined)"] <= cct["track-join (per key)"] + 1e-9
