"""The markdown link checker passes over the repo's own docs."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_links", REPO / "tools" / "check_links.py"
)
check_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_links)


def test_no_broken_links_in_repo_docs():
    targets = [
        str(REPO / "README.md"),
        str(REPO / "DESIGN.md"),
        str(REPO / "EXPERIMENTS.md"),
        str(REPO / "docs"),
    ]
    assert check_links.main(targets) == 0


def test_checker_flags_broken_link(tmp_path):
    md = tmp_path / "bad.md"
    md.write_text("see [missing](does-not-exist.md) and [ok](#anchor)")
    assert check_links.main([str(md)]) == 1


def test_checker_accepts_external_and_anchored_links(tmp_path):
    (tmp_path / "other.md").write_text("# other")
    md = tmp_path / "good.md"
    md.write_text(
        "[web](https://example.com) [mail](mailto:x@y.z) "
        "[anchor](#here) [file](other.md#section)"
    )
    assert check_links.main([str(md)]) == 0
