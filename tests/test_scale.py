"""Scale stress tests: the simulator and planner at realistic sizes.

These are deliberately generous but bounded: they catch accidental
quadratic blowups (epoch explosions, per-epoch Python loops over flows)
that unit-sized tests never see.
"""

import time

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.network.fabric import Fabric
from repro.network.io import load_coflows, save_coflows
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.analytic import AnalyticJoinWorkload
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix


class TestSimulatorScale:
    @pytest.mark.parametrize("scheduler", ["fair", "sebf", "dclas"])
    def test_five_hundred_coflows(self, scheduler):
        cfg = CoflowMixConfig(
            n_ports=50, n_coflows=500, arrival_rate=5.0, seed=0
        )
        coflows = generate_coflow_mix(cfg)
        sim = CoflowSimulator(Fabric(n_ports=50), make_scheduler(scheduler))
        start = time.perf_counter()
        res = sim.run(coflows)
        elapsed = time.perf_counter() - start
        assert len(res.ccts) == 500
        assert elapsed < 120, f"{scheduler} took {elapsed:.1f}s for 500 coflows"

    def test_bytes_conserved_at_scale(self):
        cfg = CoflowMixConfig(n_ports=30, n_coflows=200, seed=1)
        coflows = generate_coflow_mix(cfg)
        sim = CoflowSimulator(Fabric(n_ports=30), make_scheduler("sebf"))
        res = sim.run(coflows)
        assert res.total_bytes == pytest.approx(
            sum(c.total_volume for c in coflows)
        )


class TestPlannerScale:
    def test_paper_largest_configuration_under_budget(self):
        # n=1000, p=15000 (Fig. 5's right edge) must plan in seconds.
        wl = AnalyticJoinWorkload(n_nodes=1000, scale_factor=6.0)
        start = time.perf_counter()
        plan = CCF().plan(wl, "ccf")
        elapsed = time.perf_counter() - start
        assert plan.dest.shape == (15000,)
        assert elapsed < 60

    def test_large_coflow_roundtrip_io(self, tmp_path):
        rng = np.random.default_rng(3)
        from repro.network.flow import Flow, Coflow

        flows = [
            Flow(int(s), int((s + 1 + d) % 200), float(v))
            for s, d, v in zip(
                rng.integers(0, 200, 5000),
                rng.integers(0, 199, 5000),
                rng.integers(1, 100, 5000),
            )
        ]
        cf = Coflow(flows, coflow_id=0)
        path = tmp_path / "big.json"
        save_coflows([cf], path)
        back = load_coflows(path)[0]
        assert back.total_volume == pytest.approx(cf.total_volume)
